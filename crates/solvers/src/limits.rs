//! Search resource limits shared by every solver.
//!
//! The unified solving API of `nbl-sat-core` hands each backend a resource
//! [`Budget`](https://en.wikipedia.org/wiki/Anytime_algorithm); for the
//! classical solvers in this crate the only applicable resource is wall-clock
//! time, expressed here as an absolute deadline so that nested search loops
//! can test it cheaply. Every solver checks the deadline inside its hot loop
//! (per DPLL node, per CDCL conflict/decision, per local-search flip, per
//! enumerated assignment) and aborts with [`SolveResult::Unknown`] once it
//! passes — turning an exponential search into an anytime procedure instead
//! of an unbounded one.
//!
//! [`SolveResult::Unknown`]: crate::SolveResult::Unknown

use std::time::{Duration, Instant};

/// Resource limits for a single [`Solver::solve_limited`] call.
///
/// The default (and [`SearchLimits::unlimited`]) imposes no limit, which makes
/// [`Solver::solve`] equivalent to the pre-limit behaviour.
///
/// [`Solver::solve`]: crate::Solver::solve
/// [`Solver::solve_limited`]: crate::Solver::solve_limited
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchLimits {
    deadline: Option<Instant>,
}

impl SearchLimits {
    /// No limits: the search runs to completion (or to the solver's own
    /// internal restart/flip caps).
    pub fn unlimited() -> Self {
        SearchLimits::default()
    }

    /// Limits the search to the given absolute deadline.
    pub fn with_deadline(deadline: Instant) -> Self {
        SearchLimits {
            deadline: Some(deadline),
        }
    }

    /// Limits the search to `budget` of wall-clock time from now.
    pub fn deadline_in(budget: Duration) -> Self {
        SearchLimits {
            deadline: Instant::now().checked_add(budget),
        }
    }

    /// The absolute deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Returns `true` once the deadline has passed. Solvers call this inside
    /// their search loops and abort with `Unknown` when it fires.
    pub fn expired(&self) -> bool {
        match self.deadline {
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let limits = SearchLimits::unlimited();
        assert_eq!(limits.deadline(), None);
        assert!(!limits.expired());
        assert_eq!(limits, SearchLimits::default());
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let limits = SearchLimits::deadline_in(Duration::ZERO);
        assert!(limits.expired());
        assert!(limits.deadline().is_some());
    }

    #[test]
    fn generous_budget_does_not_expire() {
        let limits = SearchLimits::deadline_in(Duration::from_secs(3600));
        assert!(!limits.expired());
        let explicit = SearchLimits::with_deadline(limits.deadline().unwrap());
        assert_eq!(explicit, limits);
    }
}
