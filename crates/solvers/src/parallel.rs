//! A thread-racing solver portfolio.
//!
//! The paper's core pitch is massive parallelism: every candidate assignment
//! is present "at once" in the NBL hyperspace, so the check is one concurrent
//! operation rather than a sequential scan. [`ParallelPortfolio`] is the
//! classical-solver expression of the same idea at the ensemble level — all
//! members attack the instance *simultaneously* on their own OS threads, and
//! the first definitive answer cancels the rest.

use crate::limits::SearchLimits;
use crate::portfolio::{accumulate, default_members, default_members_with, member_seed};
use crate::share::{ShareHandle, SharedClausePool, SharingConfig};
use crate::solver::{SolveResult, Solver, SolverStats};
use cnf::{CnfFormula, EvalMode};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

/// A parallel portfolio: race every member solver on its own thread and
/// return the first definitive (SAT or UNSAT) answer.
///
/// Where [`crate::Portfolio`] tries its members one after another, this
/// portfolio spawns each member on a scoped [`std::thread`] and hands all of
/// them the same [`SearchLimits`] deadline plus a shared cancellation token
/// ([`SearchLimits::with_cancel`]). The first member to answer SAT or UNSAT
/// raises the token; every losing member observes it at its next poll (one
/// search node / conflict / flip / enumerated assignment) and returns
/// `Unknown`, so the losers are joined promptly instead of running to their
/// own caps.
///
/// The default member list is the same complete trio as the sequential
/// portfolio — [`crate::TwoSatSolver`], a [`crate::WalkSat`] burst,
/// [`crate::CdclSolver`] — so the racing portfolio is complete as long as
/// the instance is in scope for at least one complete member.
///
/// # Cooperation
///
/// By default the members don't just race, they *cooperate*: every solve
/// builds a [`SharedClausePool`] and hands each member a [`ShareHandle`].
/// CDCL members export short learned clauses on learn and import foreign
/// ones at restart boundaries; the local searches consume imports as soft
/// scoring constraints. [`ParallelPortfolio::with_sharing`] tunes the pool
/// ([`SharingConfig`]); [`SharingConfig::racing_only`] disables it entirely.
/// The per-member export/import traffic is accumulated into
/// [`SolverStats::clauses_exported`] / [`SolverStats::clauses_imported`].
///
/// # Determinism
///
/// Member searches are individually deterministic for a fixed portfolio seed
/// ([`ParallelPortfolio::with_seed`] reseeds every stochastic member per
/// solve, exactly like the sequential portfolio). The *verdict* is
/// deterministic, because all members are sound and every shared clause is
/// implied by the input formula (only frame-0 CDCL derivations are exported,
/// and local searches treat imports as soft constraints that never decide a
/// verdict): no race and no import can turn SAT into UNSAT. Which member
/// wins the race — and hence which model and [`SolverStats::winner`] are
/// reported — depends on OS scheduling, and under sharing the members'
/// search *trajectories* (conflict/flip counts, export/import totals) are
/// race-dependent too; only the verdict is contractual.
///
/// ```
/// use cnf::cnf_formula;
/// use sat_solvers::{ParallelPortfolio, Solver};
///
/// let mut portfolio = ParallelPortfolio::new();
/// assert!(portfolio.solve(&cnf_formula![[1, 2], [-1, -2]]).is_sat());
/// assert!(portfolio.solve(&cnf_formula![[1, 2, 3], [-1], [-2], [-3]]).is_unsat());
/// assert!(portfolio.winner().is_some());
/// ```
pub struct ParallelPortfolio {
    members: Vec<Box<dyn Solver + Send>>,
    stats: SolverStats,
    seed: u64,
    sharing: SharingConfig,
}

impl fmt::Debug for ParallelPortfolio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParallelPortfolio")
            .field("members", &self.member_names())
            .field("stats", &self.stats)
            .field("seed", &self.seed)
            .field("sharing", &self.sharing)
            .finish()
    }
}

impl Default for ParallelPortfolio {
    fn default() -> Self {
        ParallelPortfolio::new()
    }
}

/// What a member thread reports back to the collector.
struct MemberReport {
    name: &'static str,
    result: SolveResult,
    stats: SolverStats,
}

impl ParallelPortfolio {
    /// Creates the default three-member racing portfolio (2-SAT ∥ WalkSAT ∥
    /// CDCL — the same trio as the sequential [`crate::Portfolio`], so the
    /// two are directly comparable).
    pub fn new() -> Self {
        ParallelPortfolio::with_members(default_members())
    }

    /// Creates the default racing portfolio with an explicit evaluation core
    /// for the members that have scalar/packed paths.
    pub fn new_with_eval_mode(eval_mode: EvalMode) -> Self {
        ParallelPortfolio::with_members(default_members_with(eval_mode))
    }

    /// Creates a racing portfolio from an explicit member list.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn with_members(members: Vec<Box<dyn Solver + Send>>) -> Self {
        assert!(!members.is_empty(), "a portfolio needs at least one member");
        ParallelPortfolio {
            members,
            stats: SolverStats::default(),
            seed: 0,
            sharing: SharingConfig::default(),
        }
    }

    /// Sets the seed from which the per-member seeds of the stochastic
    /// members are derived on every solve.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the clause-sharing configuration. Sharing is on by default;
    /// [`SharingConfig::racing_only`] restores the pure racing portfolio.
    pub fn with_sharing(mut self, sharing: SharingConfig) -> Self {
        self.sharing = sharing;
        self
    }

    /// The active clause-sharing configuration.
    pub fn sharing(&self) -> &SharingConfig {
        &self.sharing
    }

    /// The name of the member that won the last race, if any. Also surfaced
    /// as [`SolverStats::winner`].
    pub fn winner(&self) -> Option<&'static str> {
        self.stats.winner
    }

    /// Names of the member solvers, in spawn order.
    pub fn member_names(&self) -> Vec<&'static str> {
        self.members.iter().map(|m| m.name()).collect()
    }
}

impl Solver for ParallelPortfolio {
    fn solve_limited(&mut self, formula: &CnfFormula, limits: &SearchLimits) -> SolveResult {
        self.stats = SolverStats::default();
        if limits.expired() {
            return SolveResult::Unknown;
        }
        let seed = self.seed;
        for (index, member) in self.members.iter_mut().enumerate() {
            member.reseed(member_seed(seed, index));
        }

        // Cooperative mode: a fresh shared clause pool per solve, one handle
        // per member. A single member has nobody to cooperate with, so it
        // races (the pool would only cost overhead).
        if self.sharing.enabled && self.members.len() > 1 {
            let pool = Arc::new(SharedClausePool::new(self.sharing));
            for (index, member) in self.members.iter_mut().enumerate() {
                member.attach_share(ShareHandle::new(Arc::clone(&pool), index));
            }
        }

        // The race flag is raised by the collector on the first definitive
        // answer. It is *chained* onto the caller's own limits, so members
        // observe the caller's deadline and cancellation tokens directly in
        // their search loops — no forwarding needed.
        let race = Arc::new(AtomicBool::new(false));
        let member_limits = limits.clone().with_cancel(Arc::clone(&race));

        let member_count = self.members.len();
        let (tx, rx) = mpsc::channel::<MemberReport>();
        let mut winner: Option<MemberReport> = None;

        thread::scope(|scope| {
            for member in self.members.iter_mut() {
                let tx = tx.clone();
                let member_limits = member_limits.clone();
                scope.spawn(move || {
                    let name = member.name();
                    // A panicking member must not poison the whole race: the
                    // panic is caught at this thread boundary and reported as
                    // an Unknown, so the surviving members still decide the
                    // instance. (The member's internal state may be
                    // inconsistent after the unwind, so its stats are not
                    // trusted; every solve reseeds and resets state anyway.)
                    let report = match catch_unwind(AssertUnwindSafe(|| {
                        member.solve_limited(formula, &member_limits)
                    })) {
                        Ok(result) => MemberReport {
                            name,
                            result,
                            stats: member.stats(),
                        },
                        Err(_panic) => MemberReport {
                            name,
                            result: SolveResult::Unknown,
                            stats: SolverStats::default(),
                        },
                    };
                    // The collector may already have hung up; a dead channel
                    // just means the report is dropped with the race.
                    let _ = tx.send(report);
                });
            }
            drop(tx);

            // Collect every member's report. Losers come back quickly once
            // the race flag is up (bounded by their search-loop poll
            // interval), so this loop also joins the losers promptly. The
            // members' limits chain the caller's deadline and cancellation
            // tokens, so there is nothing to forward — block until a report
            // lands.
            let mut received = 0usize;
            while received < member_count {
                let report = match rx.recv() {
                    Ok(report) => report,
                    Err(mpsc::RecvError) => break,
                };
                received += 1;
                accumulate(&mut self.stats, report.stats);
                if winner.is_none() && !matches!(report.result, SolveResult::Unknown) {
                    race.store(true, Ordering::Relaxed);
                    winner = Some(report);
                }
            }
            // `scope` joins all member threads here; every member has already
            // returned (its report was received or the channel disconnected).
        });

        // The pool dies with the solve: handles must not leak into the next
        // request (each solve builds a fresh pool with fresh cursors).
        for member in self.members.iter_mut() {
            member.detach_share();
        }

        match winner {
            Some(report) => {
                self.stats.winner = Some(report.name);
                report.result
            }
            None => SolveResult::Unknown,
        }
    }

    fn stats(&self) -> SolverStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "parallel-portfolio"
    }

    fn reseed(&mut self, seed: u64) {
        self.seed = seed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BruteForceSolver, Gsat, Portfolio, Schoening};
    use cnf::cnf_formula;
    use cnf::generators::{self, RandomKSatConfig};
    use std::time::Duration;

    #[test]
    fn races_to_definitive_answers_on_paper_instances() {
        let mut portfolio = ParallelPortfolio::new();
        assert!(portfolio.solve(&generators::example6_sat()).is_sat());
        assert!(portfolio.winner().is_some());
        assert!(portfolio.solve(&generators::example7_unsat()).is_unsat());
        assert!(portfolio.winner().is_some());
    }

    #[test]
    fn complete_backstop_refutes_hard_instances() {
        let mut portfolio = ParallelPortfolio::new();
        let unsat = generators::pigeonhole(4, 3);
        assert!(portfolio.solve(&unsat).is_unsat());
        // Only the complete members can refute; WalkSAT cannot win this race.
        assert_ne!(portfolio.winner(), Some("walksat"));
    }

    #[test]
    fn agrees_with_brute_force_on_random_instances() {
        for seed in 0..15u64 {
            let formula =
                generators::random_ksat(&RandomKSatConfig::new(9, 36, 3).with_seed(seed)).unwrap();
            let mut portfolio = ParallelPortfolio::new().with_seed(seed);
            let mut oracle = BruteForceSolver::new();
            let result = portfolio.solve(&formula);
            assert_eq!(
                result.is_sat(),
                oracle.solve(&formula).is_sat(),
                "seed {seed}"
            );
            if let Some(model) = result.model() {
                assert!(formula.evaluate(model), "seed {seed}");
            }
            assert!(portfolio.winner().is_some(), "seed {seed}");
        }
    }

    #[test]
    fn verdict_agrees_with_sequential_portfolio() {
        for seed in 0..8u64 {
            let formula =
                generators::random_ksat(&RandomKSatConfig::new(8, 34, 3).with_seed(100 + seed))
                    .unwrap();
            let mut parallel = ParallelPortfolio::new().with_seed(seed);
            let mut sequential = Portfolio::new().with_seed(seed);
            assert_eq!(
                parallel.solve(&formula).is_sat(),
                sequential.solve(&formula).is_sat(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn incomplete_members_only_leave_unknown() {
        let mut portfolio = ParallelPortfolio::with_members(vec![
            Box::new(Schoening::new()),
            Box::new(Gsat::new()),
        ]);
        assert_eq!(portfolio.member_names(), vec!["schoening", "gsat"]);
        assert_eq!(
            portfolio.solve(&generators::section4_unsat_instance()),
            SolveResult::Unknown
        );
        assert_eq!(portfolio.winner(), None);
        assert!(portfolio.solve(&cnf_formula![[1, 2], [2, 3]]).is_sat());
        assert!(portfolio.winner().is_some());
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_portfolio_panics() {
        let _ = ParallelPortfolio::with_members(Vec::new());
    }

    #[test]
    fn expired_deadline_interrupts_with_unknown() {
        let mut portfolio = ParallelPortfolio::new();
        let limits = SearchLimits::deadline_in(Duration::ZERO);
        assert_eq!(
            portfolio.solve_limited(&generators::pigeonhole(5, 4), &limits),
            SolveResult::Unknown
        );
        assert_eq!(portfolio.winner(), None);
    }

    #[test]
    fn external_cancellation_stops_the_whole_race() {
        // A pre-raised caller token must stop the portfolio without any
        // member finishing its search.
        let flag = Arc::new(AtomicBool::new(true));
        let limits = SearchLimits::unlimited().with_cancel(flag);
        let mut portfolio = ParallelPortfolio::new();
        assert_eq!(
            portfolio.solve_limited(&generators::pigeonhole(6, 5), &limits),
            SolveResult::Unknown
        );
    }

    #[test]
    fn empty_clause_is_unsat_through_the_race() {
        let mut portfolio = ParallelPortfolio::new();
        assert!(portfolio.solve(&cnf_formula![[]]).is_unsat());
    }

    /// A member that panics as soon as it is asked to solve anything.
    struct PanickingSolver;

    impl Solver for PanickingSolver {
        fn solve_limited(&mut self, _formula: &CnfFormula, _limits: &SearchLimits) -> SolveResult {
            panic!("deliberate mock panic");
        }

        fn stats(&self) -> SolverStats {
            SolverStats::default()
        }

        fn name(&self) -> &'static str {
            "panicker"
        }
    }

    #[test]
    fn panicking_member_does_not_poison_the_race() {
        // Regression: a member panic used to propagate through the scoped
        // join and take the whole portfolio down. It must now count as an
        // Unknown report while the healthy members decide the instance.
        let mut portfolio = ParallelPortfolio::with_members(vec![
            Box::new(PanickingSolver),
            Box::new(crate::CdclSolver::new()),
        ]);
        assert!(portfolio.solve(&generators::example6_sat()).is_sat());
        assert_eq!(portfolio.winner(), Some("cdcl"));
        assert!(portfolio.solve(&generators::example7_unsat()).is_unsat());
    }

    #[test]
    fn all_members_panicking_is_unknown_not_a_crash() {
        let mut portfolio = ParallelPortfolio::with_members(vec![
            Box::new(PanickingSolver),
            Box::new(PanickingSolver),
        ]);
        assert_eq!(
            portfolio.solve(&generators::example6_sat()),
            SolveResult::Unknown
        );
        assert_eq!(portfolio.winner(), None);
    }

    #[test]
    fn verdict_is_deterministic_for_a_fixed_seed() {
        let formula =
            generators::random_ksat(&RandomKSatConfig::new(10, 42, 3).with_seed(5)).unwrap();
        let mut a = ParallelPortfolio::new().with_seed(9);
        let mut b = ParallelPortfolio::new().with_seed(9);
        assert_eq!(a.solve(&formula).is_sat(), b.solve(&formula).is_sat());
    }

    #[test]
    fn cooperating_cdcl_members_export_clauses() {
        use crate::CdclSolver;
        // Two CDCL members with aggressive restarts on a conflict-rich
        // instance: both publish learned clauses into the shared pool.
        let mut portfolio = ParallelPortfolio::with_members(vec![
            Box::new(CdclSolver::new().with_restart_base(1)),
            Box::new(CdclSolver::new().with_restart_base(1)),
        ]);
        assert!(portfolio.sharing().enabled);
        assert!(portfolio.solve(&generators::pigeonhole(5, 4)).is_unsat());
        assert!(portfolio.stats().clauses_exported > 0);
    }

    #[test]
    fn racing_only_disables_the_pool() {
        use crate::share::SharingConfig;
        use crate::CdclSolver;
        let mut portfolio = ParallelPortfolio::with_members(vec![
            Box::new(CdclSolver::new().with_restart_base(1)),
            Box::new(CdclSolver::new().with_restart_base(1)),
        ])
        .with_sharing(SharingConfig::racing_only());
        assert!(portfolio.solve(&generators::pigeonhole(5, 4)).is_unsat());
        assert_eq!(portfolio.stats().clauses_exported, 0);
        assert_eq!(portfolio.stats().clauses_imported, 0);
    }

    #[test]
    fn losing_members_stats_reach_the_outcome() {
        // Regression guard: the collector must merge *every* member's stats,
        // not just the winner's. GSAT cannot refute a pigeonhole instance, so
        // CDCL wins — yet GSAT's tried assignments and CDCL's conflicts and
        // exports must all land in the portfolio totals.
        let mut portfolio = ParallelPortfolio::with_members(vec![
            Box::new(Gsat::new()),
            Box::new(crate::CdclSolver::new().with_restart_base(1)),
        ]);
        assert!(portfolio.solve(&generators::pigeonhole(4, 3)).is_unsat());
        assert_eq!(portfolio.winner(), Some("cdcl"));
        let stats = portfolio.stats();
        assert!(stats.assignments_tried >= 1, "loser (GSAT) stats missing");
        assert!(stats.conflicts > 0, "winner (CDCL) stats missing");
        assert!(stats.clauses_exported > 0, "sharing counters missing");
    }

    #[test]
    fn shared_and_racing_verdicts_agree() {
        use crate::share::SharingConfig;
        for seed in 0..10u64 {
            let formula =
                generators::random_ksat(&RandomKSatConfig::new(9, 36, 3).with_seed(300 + seed))
                    .unwrap();
            let mut shared = ParallelPortfolio::new().with_seed(seed);
            let mut racing = ParallelPortfolio::new()
                .with_seed(seed)
                .with_sharing(SharingConfig::racing_only());
            assert_eq!(
                shared.solve(&formula).is_sat(),
                racing.solve(&formula).is_sat(),
                "seed {seed}"
            );
        }
    }
}
