//! The common solver interface.

use crate::limits::SearchLimits;
use crate::share::ShareHandle;
use cnf::{Assignment, CnfFormula};
use std::fmt;

/// Result of a SAT solver run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// The instance is satisfiable; the contained assignment is a model.
    Satisfiable(Assignment),
    /// The instance is unsatisfiable.
    Unsatisfiable,
    /// The solver gave up (only incomplete solvers such as WalkSAT return this).
    Unknown,
}

impl SolveResult {
    /// Returns `true` for [`SolveResult::Satisfiable`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Satisfiable(_))
    }

    /// Returns `true` for [`SolveResult::Unsatisfiable`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolveResult::Unsatisfiable)
    }

    /// Returns the model if the result is satisfiable.
    pub fn model(&self) -> Option<&Assignment> {
        match self {
            SolveResult::Satisfiable(a) => Some(a),
            _ => None,
        }
    }
}

impl fmt::Display for SolveResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveResult::Satisfiable(a) => write!(f, "SAT {a}"),
            SolveResult::Unsatisfiable => write!(f, "UNSAT"),
            SolveResult::Unknown => write!(f, "UNKNOWN"),
        }
    }
}

/// Search statistics shared by all solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverStats {
    /// Number of branching decisions made.
    pub decisions: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of literals assigned by unit propagation.
    pub propagations: u64,
    /// Number of restarts performed (CDCL only).
    pub restarts: u64,
    /// Number of learned clauses (CDCL only).
    pub learned_clauses: u64,
    /// Number of complete assignments tried (brute force / local search).
    pub assignments_tried: u64,
    /// Number of local-search flips performed (WalkSAT only).
    pub flips: u64,
    /// Learned clauses this solver published into a shared clause pool
    /// (cooperative portfolio members only).
    pub clauses_exported: u64,
    /// Clauses this solver consumed from a shared clause pool (cooperative
    /// portfolio members only).
    pub clauses_imported: u64,
    /// Name of the member that produced the definitive answer (meta-solvers
    /// such as [`crate::Portfolio`] only; `None` for direct solvers).
    pub winner: Option<&'static str>,
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decisions={} conflicts={} propagations={} restarts={} learned={} tried={} flips={}",
            self.decisions,
            self.conflicts,
            self.propagations,
            self.restarts,
            self.learned_clauses,
            self.assignments_tried,
            self.flips
        )?;
        if self.clauses_exported > 0 || self.clauses_imported > 0 {
            write!(
                f,
                " exported={} imported={}",
                self.clauses_exported, self.clauses_imported
            )?;
        }
        if let Some(winner) = self.winner {
            write!(f, " winner={winner}")?;
        }
        Ok(())
    }
}

/// A SAT solver.
///
/// Implementations must leave the formula untouched and report their own
/// search statistics after each [`Solver::solve`] call.
pub trait Solver {
    /// Solves the given formula under the given resource limits.
    ///
    /// Implementations check the limits inside their search loops and return
    /// [`SolveResult::Unknown`] once a limit fires, so an expired deadline
    /// interrupts the search instead of letting it run unbounded.
    fn solve_limited(&mut self, formula: &CnfFormula, limits: &SearchLimits) -> SolveResult;

    /// Solves the given formula without resource limits.
    fn solve(&mut self, formula: &CnfFormula) -> SolveResult {
        self.solve_limited(formula, &SearchLimits::unlimited())
    }

    /// Reseeds the solver's pseudo-random state for the next solve.
    ///
    /// Stochastic solvers (WalkSAT, GSAT, Schöning) override this so that
    /// meta-solvers — the portfolios, the per-request seeding of the unified
    /// API's backend registry — can make a whole solver ensemble
    /// deterministic for a fixed request seed. Deterministic solvers keep the
    /// default no-op.
    fn reseed(&mut self, seed: u64) {
        let _ = seed;
    }

    /// Attaches a shared-clause-pool handle for the next solve.
    ///
    /// Cooperative meta-solvers ([`crate::ParallelPortfolio`] with sharing
    /// enabled) call this on every member before a solve; members that can
    /// exploit the pool (CDCL exports and imports, the local searches import
    /// as soft constraints) override it, everyone else keeps the default
    /// no-op. The handle stays attached until [`Solver::detach_share`].
    fn attach_share(&mut self, handle: ShareHandle) {
        let _ = handle;
    }

    /// Drops any attached shared-clause-pool handle (default no-op).
    fn detach_share(&mut self) {}

    /// Statistics of the most recent [`Solver::solve`] call.
    fn stats(&self) -> SolverStats;

    /// Short human-readable solver name (for reports and benches).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_accessors() {
        let sat = SolveResult::Satisfiable(Assignment::all_true(2));
        assert!(sat.is_sat());
        assert!(!sat.is_unsat());
        assert!(sat.model().is_some());
        assert!(sat.to_string().starts_with("SAT"));

        assert!(SolveResult::Unsatisfiable.is_unsat());
        assert_eq!(SolveResult::Unsatisfiable.model(), None);
        assert_eq!(SolveResult::Unknown.to_string(), "UNKNOWN");
    }

    #[test]
    fn stats_display() {
        let stats = SolverStats {
            decisions: 3,
            ..SolverStats::default()
        };
        assert!(stats.to_string().contains("decisions=3"));
    }
}
