//! Flip scoring for local search: scalar oracles and the packed core.
//!
//! The scalar functions [`break_count`] and [`flip_gain`] are the reference
//! semantics — one variable at a time, scanning every clause that mentions
//! it. [`FlipScorer`] is the bit-parallel rewrite used by the packed solver
//! paths: it scores a whole word of candidate flips per clause pass
//! (WalkSAT's break counts) or every variable of the formula in a single
//! clause sweep (GSAT's gains), and the differential test suites pin it
//! bit-equal to the scalar oracles.
//!
//! Both paths share one subtlety: a clause containing *both* phases of a
//! variable `v` (a tautology on `v`) is counted as "broken by flipping `v`"
//! whenever `v` is its only satisfying variable, even though the flip keeps
//! the clause satisfied through the other phase. The packed scorer
//! deliberately replicates this clause-level accounting — it mirrors the
//! scalar oracle, not an idealized post-flip recount — so the two paths stay
//! bit-identical on arbitrary (even non-normalized) formulas.

use cnf::bits::WORD_BITS;
use cnf::{Assignment, CnfFormula, PackedFormula, Variable};

/// Number of clauses that would become unsatisfied by flipping `var`
/// (WalkSAT's break count). Total over short assignments: uncovered
/// variables read `false`.
///
/// A clause counts as breaking iff its satisfying literals all belong to
/// `var` — see the module docs for the both-phases edge case.
pub fn break_count(formula: &CnfFormula, assignment: &Assignment, var: Variable) -> usize {
    let mut breaks = 0;
    for clause in formula.iter() {
        if !clause.mentions(var) {
            continue;
        }
        // Clause currently satisfied only by `var`'s literal -> breaks.
        let mut satisfied_by_var = false;
        let mut satisfied_by_other = false;
        for &lit in clause.iter() {
            if assignment.satisfies(lit) {
                if lit.variable() == var {
                    satisfied_by_var = true;
                } else {
                    satisfied_by_other = true;
                }
            }
        }
        if satisfied_by_var && !satisfied_by_other {
            breaks += 1;
        }
    }
    breaks
}

/// Net change in the number of satisfied clauses if `var` were flipped
/// (GSAT's gain). Total over short assignments: uncovered variables read
/// `false`.
pub fn flip_gain(formula: &CnfFormula, assignment: &Assignment, var: Variable) -> i64 {
    let mut gain = 0i64;
    for clause in formula.iter() {
        if !clause.mentions(var) {
            continue;
        }
        let mut satisfied_by_var = false;
        let mut satisfied_by_other = false;
        let mut falsified_var_literal = false;
        for &lit in clause.iter() {
            if assignment.satisfies(lit) {
                if lit.variable() == var {
                    satisfied_by_var = true;
                } else {
                    satisfied_by_other = true;
                }
            } else if lit.variable() == var {
                falsified_var_literal = true;
            }
        }
        if satisfied_by_var && !satisfied_by_other {
            gain -= 1; // clause becomes unsatisfied
        } else if !satisfied_by_var && !satisfied_by_other && falsified_var_literal {
            gain += 1; // clause becomes satisfied
        }
    }
    gain
}

/// Bit-parallel flip scoring over a compiled [`PackedFormula`].
///
/// Owns per-variable occurrence lists, epoch-stamped scratch tables and
/// reusable output buffers, so repeated calls inside a solver's flip loop
/// allocate nothing.
///
/// ```
/// use cnf::{cnf_formula, Assignment, Variable};
/// use sat_solvers::score::{break_count, FlipScorer};
/// let f = cnf_formula![[1], [1, 2]];
/// let a = Assignment::from_bools(vec![true, false]);
/// let mut scorer = FlipScorer::new(&f);
/// let candidates = [Variable::new(0), Variable::new(1)];
/// assert_eq!(scorer.break_counts(&a, &candidates), &[2, 0]);
/// assert_eq!(break_count(&f, &a, candidates[0]), 2);
/// ```
#[derive(Debug)]
pub struct FlipScorer {
    packed: PackedFormula,
    /// Clause indices mentioning each variable (each clause listed once).
    occ: Vec<Vec<u32>>,
    /// Stamp epoch shared by the scratch tables below.
    epoch: u64,
    /// Last epoch each variable was marked as a candidate.
    var_epoch: Vec<u64>,
    /// Candidate-lane word of each marked variable: bit `l` set iff the
    /// variable is candidate lane `l` of the current call.
    var_mask: Vec<u64>,
    /// Last epoch each clause was visited (dedups the occurrence union).
    clause_epoch: Vec<u64>,
    breaks: Vec<u32>,
    gains: Vec<i64>,
}

impl FlipScorer {
    /// Compiles the formula and builds the occurrence lists.
    pub fn new(formula: &CnfFormula) -> Self {
        let packed = PackedFormula::new(formula);
        let num_vars = packed.num_vars();
        let mut occ = vec![Vec::new(); num_vars];
        for c in 0..packed.num_clauses() {
            let lits = packed.clause_literals(c);
            for (i, &(var, _)) in lits.iter().enumerate() {
                if lits[..i].iter().any(|&(v, _)| v == var) {
                    continue; // clause already listed for this variable
                }
                occ[var as usize].push(c as u32);
            }
        }
        FlipScorer {
            occ,
            epoch: 0,
            var_epoch: vec![0; num_vars],
            var_mask: vec![0; num_vars],
            clause_epoch: vec![0; packed.num_clauses()],
            breaks: Vec::new(),
            gains: Vec::new(),
            packed,
        }
    }

    /// The compiled formula backing this scorer.
    pub fn packed(&self) -> &PackedFormula {
        &self.packed
    }

    /// Break counts of up to 64 candidate flips in one clause sweep: entry
    /// `l` equals [`break_count`] of `candidates[l]` (duplicates allowed and
    /// scored equally).
    ///
    /// Each clause mentioning a candidate is analyzed once; its break
    /// contribution lands on all candidate lanes of its unique satisfying
    /// variable via one word-sized lane mask.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 candidates are given or a candidate is not a
    /// variable of the formula.
    pub fn break_counts(&mut self, assignment: &Assignment, candidates: &[Variable]) -> &[u32] {
        assert!(
            candidates.len() <= WORD_BITS,
            "at most {WORD_BITS} candidate flips per call"
        );
        self.epoch += 1;
        for (lane, &var) in candidates.iter().enumerate() {
            let v = var.index();
            assert!(v < self.occ.len(), "candidate {var} outside the formula");
            if self.var_epoch[v] != self.epoch {
                self.var_epoch[v] = self.epoch;
                self.var_mask[v] = 0;
            }
            self.var_mask[v] |= 1u64 << lane;
        }
        self.breaks.clear();
        self.breaks.resize(candidates.len(), 0);
        for &var in candidates {
            for &c in &self.occ[var.index()] {
                let c = c as usize;
                if self.clause_epoch[c] == self.epoch {
                    continue;
                }
                self.clause_epoch[c] = self.epoch;
                if let Some(only_sat) = self.unique_satisfying_var(c, assignment) {
                    let v = only_sat as usize;
                    if self.var_epoch[v] == self.epoch {
                        // One word op fans the break out to every candidate
                        // lane of the satisfying variable.
                        let mut mask = self.var_mask[v];
                        while mask != 0 {
                            let lane = mask.trailing_zeros() as usize;
                            mask &= mask - 1;
                            self.breaks[lane] += 1;
                        }
                    }
                }
            }
        }
        &self.breaks
    }

    /// Gains of flipping each variable of the formula, in variable order:
    /// entry `v` equals [`flip_gain`] of variable `v`. One sweep over the
    /// clauses replaces GSAT's per-variable clause scans.
    pub fn gains(&mut self, assignment: &Assignment) -> &[i64] {
        self.gains.clear();
        self.gains.resize(self.packed.num_vars(), 0);
        for c in 0..self.packed.num_clauses() {
            let lits = self.packed.clause_literals(c);
            let mut first_sat: Option<u32> = None;
            let mut multiple = false;
            for &(var, phase) in lits {
                if Self::lit_satisfied(assignment, var, phase) {
                    match first_sat {
                        None => first_sat = Some(var),
                        Some(u) if u != var => {
                            multiple = true;
                            break;
                        }
                        Some(_) => {}
                    }
                }
            }
            match (first_sat, multiple) {
                (None, _) => {
                    // Unsatisfied clause: flipping any mentioned variable
                    // satisfies it.
                    for (i, &(var, _)) in lits.iter().enumerate() {
                        if lits[..i].iter().any(|&(v, _)| v == var) {
                            continue;
                        }
                        self.gains[var as usize] += 1;
                    }
                }
                (Some(u), false) => {
                    // Satisfied only through `u`: flipping it breaks the
                    // clause (clause-level accounting, see module docs).
                    self.gains[u as usize] -= 1;
                }
                (Some(_), true) => {}
            }
        }
        &self.gains
    }

    /// Returns the unique variable whose literals satisfy clause `c`, if the
    /// clause is satisfied and all its satisfying literals share one
    /// variable.
    fn unique_satisfying_var(&self, c: usize, assignment: &Assignment) -> Option<u32> {
        let mut first_sat: Option<u32> = None;
        for &(var, phase) in self.packed.clause_literals(c) {
            if Self::lit_satisfied(assignment, var, phase) {
                match first_sat {
                    None => first_sat = Some(var),
                    Some(u) if u != var => return None,
                    Some(_) => {}
                }
            }
        }
        first_sat
    }

    fn lit_satisfied(assignment: &Assignment, var: u32, phase: bool) -> bool {
        assignment.get(Variable::new(var as usize)).unwrap_or(false) == phase
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::cnf_formula;
    use cnf::generators::{self, RandomKSatConfig};

    #[test]
    fn packed_break_counts_match_scalar() {
        let f = generators::random_ksat(&RandomKSatConfig::new(10, 40, 3).with_seed(1)).unwrap();
        let mut scorer = FlipScorer::new(&f);
        let vars: Vec<Variable> = f.variables().collect();
        for idx in 0..32u64 {
            let a = Assignment::from_index(10, idx * 31 % 1024);
            let packed = scorer.break_counts(&a, &vars).to_vec();
            for (l, &v) in vars.iter().enumerate() {
                assert_eq!(packed[l] as usize, break_count(&f, &a, v));
            }
        }
    }

    #[test]
    fn packed_gains_match_scalar() {
        let f = generators::random_ksat(&RandomKSatConfig::new(9, 30, 3).with_seed(2)).unwrap();
        let mut scorer = FlipScorer::new(&f);
        for idx in 0..64u64 {
            let a = Assignment::from_index(9, idx * 7 % 512);
            let gains = scorer.gains(&a).to_vec();
            for v in f.variables() {
                assert_eq!(gains[v.index()], flip_gain(&f, &a, v));
            }
        }
    }

    #[test]
    fn duplicate_candidates_score_equally() {
        let f = cnf_formula![[1], [1, 2], [-2, 3]];
        let a = Assignment::from_bools(vec![true, false, true]);
        let mut scorer = FlipScorer::new(&f);
        let v0 = Variable::new(0);
        let counts = scorer.break_counts(&a, &[v0, Variable::new(2), v0]);
        assert_eq!(counts[0], counts[2]);
        assert_eq!(counts[0] as usize, break_count(&f, &a, v0));
    }

    #[test]
    fn both_phases_clause_matches_scalar_accounting() {
        // (x1 + ¬x1 + x2) is satisfied through x1 only when x2 is false; the
        // scalar oracle counts flipping x1 as a break, and the packed scorer
        // must replicate that clause-level accounting.
        let f = cnf_formula![[1, -1, 2]];
        let a = Assignment::from_bools(vec![true, false]);
        let v0 = Variable::new(0);
        assert_eq!(break_count(&f, &a, v0), 1);
        let mut scorer = FlipScorer::new(&f);
        assert_eq!(scorer.break_counts(&a, &[v0]), &[1]);
        assert_eq!(scorer.gains(&a)[0], flip_gain(&f, &a, v0));
        assert_eq!(scorer.gains(&a)[0], -1);
    }

    #[test]
    fn short_assignments_read_false() {
        let f = cnf_formula![[1, 3], [-3]];
        let short = Assignment::from_bools(vec![true]);
        let mut scorer = FlipScorer::new(&f);
        for v in f.variables() {
            assert_eq!(
                scorer.break_counts(&short, &[v])[0] as usize,
                break_count(&f, &short, v)
            );
            assert_eq!(scorer.gains(&short)[v.index()], flip_gain(&f, &short, v));
        }
    }
}
