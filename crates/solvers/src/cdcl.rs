//! Conflict-driven clause learning (CDCL) solver.
//!
//! A modern complete SAT solver in the lineage of GRASP / Chaff / MiniSat
//! (the paper's references \[3\]–\[7\]): two-watched-literal propagation, VSIDS
//! branching, first-UIP clause learning with non-chronological backjumping,
//! phase saving and Luby restarts.

use crate::limits::SearchLimits;
use crate::share::ShareHandle;
use crate::solver::{SolveResult, Solver, SolverStats};
use cnf::{Assignment, CnfFormula, Literal, Variable};

/// Value of a variable in the solver's trail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarValue {
    Unassigned,
    True,
    False,
}

impl VarValue {
    fn from_bool(b: bool) -> Self {
        if b {
            VarValue::True
        } else {
            VarValue::False
        }
    }
}

/// A clause in the solver's database.
#[derive(Debug, Clone)]
struct DbClause {
    literals: Vec<Literal>,
    learned: bool,
    /// The deepest push frame this clause depends on: the frame an original
    /// clause was pushed in, or — for a learned clause — the maximum frame of
    /// every clause resolved while deriving it. [`CdclSolver::pop`] keeps
    /// exactly the clauses whose `push_level` survives, so learned clauses
    /// derived from lower frames stay sound across pops.
    push_level: usize,
    /// `true` for clauses that arrived through a shared clause pool. Imports
    /// are tagged with the push depth at import time, so a pop drops every
    /// import taken inside the popped frame.
    imported: bool,
}

/// The result of one [`CdclSolver::solve_under_assumptions`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IncrementalResult {
    /// The pushed clauses are satisfiable with every assumption holding; the
    /// model covers all variables the solver has seen.
    Satisfiable(Assignment),
    /// Unsatisfiable under the assumptions. The payload is the
    /// *failed-assumption core*: a subset of the call's assumption literals
    /// that is already inconsistent with the pushed clauses. An **empty** core
    /// means the clauses are unsatisfiable regardless of any assumptions.
    Unsatisfiable(Vec<Literal>),
    /// The search limits expired before a verdict was reached.
    Unknown,
}

impl IncrementalResult {
    /// `true` for [`IncrementalResult::Satisfiable`].
    pub fn is_sat(&self) -> bool {
        matches!(self, IncrementalResult::Satisfiable(_))
    }

    /// `true` for [`IncrementalResult::Unsatisfiable`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, IncrementalResult::Unsatisfiable(_))
    }

    /// The model, when satisfiable.
    pub fn model(&self) -> Option<&Assignment> {
        match self {
            IncrementalResult::Satisfiable(model) => Some(model),
            _ => None,
        }
    }

    /// The failed-assumption core, when unsatisfiable.
    pub fn failed_assumptions(&self) -> Option<&[Literal]> {
        match self {
            IncrementalResult::Unsatisfiable(core) => Some(core),
            _ => None,
        }
    }
}

/// Sentinel for a variable currently absent from the VSIDS order heap.
const NOT_IN_HEAP: usize = usize::MAX;

/// Conflict-driven clause-learning SAT solver.
///
/// ```
/// use cnf::generators::pigeonhole;
/// use sat_solvers::{CdclSolver, Solver};
/// let mut solver = CdclSolver::new();
/// assert!(solver.solve(&pigeonhole(4, 3)).is_unsat());
/// assert!(solver.stats().learned_clauses > 0);
/// ```
#[derive(Debug, Clone)]
pub struct CdclSolver {
    stats: SolverStats,
    // Per-variable state.
    values: Vec<VarValue>,
    levels: Vec<usize>,
    reasons: Vec<Option<usize>>, // clause index that implied the variable
    activity: Vec<f64>,
    saved_phase: Vec<bool>,
    // VSIDS order heap: a binary max-heap over variable activities so each
    // branching decision costs O(log n) instead of a linear scan. Assigned
    // variables are deleted lazily on pop; backjumping re-inserts what it
    // unassigns.
    heap: Vec<usize>,
    heap_pos: Vec<usize>, // position of each variable in `heap`, or NOT_IN_HEAP
    // Clause database and watches.
    clauses: Vec<DbClause>,
    watches: Vec<Vec<usize>>, // indexed by literal code
    units: Vec<usize>,        // indices of single-literal clauses
    // Trail.
    trail: Vec<Literal>,
    trail_limits: Vec<usize>, // trail length at each decision level
    propagation_head: usize,
    // Incremental state.
    push_depth: usize,
    /// Deepest root-level derivation frame per variable: the maximum
    /// `push_level` over the clause chain that forced the variable (0 for
    /// decisions). Only consulted for root-level literals dropped during
    /// conflict analysis, where the chain is decision-free.
    var_push: Vec<usize>,
    /// The push frame that contributed an empty clause, if any (the whole
    /// database is unsatisfiable until that frame is popped).
    empty_clause_level: Option<usize>,
    /// `true` while `values` holds a complete model of the current clause
    /// database (the previous call answered SAT and no clauses were pushed or
    /// popped since). Lets a later call whose assumptions the model already
    /// satisfies answer without searching.
    model_cached: bool,
    /// The cooperative-portfolio share handle, when attached: learned
    /// clauses are exported on learn, foreign clauses imported at restart
    /// boundaries. Survives [`Self::init`] — attachment outlives one solve.
    share: Option<ShareHandle>,
    // Heuristic parameters.
    activity_increment: f64,
    activity_decay: f64,
    restart_base: u64,
    max_learned: usize,
}

impl Default for CdclSolver {
    fn default() -> Self {
        CdclSolver::new()
    }
}

impl CdclSolver {
    /// Creates a CDCL solver with default parameters.
    pub fn new() -> Self {
        CdclSolver {
            stats: SolverStats::default(),
            values: Vec::new(),
            levels: Vec::new(),
            reasons: Vec::new(),
            activity: Vec::new(),
            saved_phase: Vec::new(),
            heap: Vec::new(),
            heap_pos: Vec::new(),
            clauses: Vec::new(),
            watches: Vec::new(),
            units: Vec::new(),
            trail: Vec::new(),
            trail_limits: Vec::new(),
            propagation_head: 0,
            push_depth: 0,
            var_push: Vec::new(),
            empty_clause_level: None,
            model_cached: false,
            share: None,
            activity_increment: 1.0,
            activity_decay: 0.95,
            restart_base: 100,
            max_learned: 10_000,
        }
    }

    /// Sets the Luby restart base interval (in conflicts).
    pub fn with_restart_base(mut self, base: u64) -> Self {
        self.restart_base = base.max(1);
        self
    }

    fn init(&mut self, formula: &CnfFormula) {
        let n = formula.num_vars();
        self.values = vec![VarValue::Unassigned; n];
        self.levels = vec![0; n];
        self.reasons = vec![None; n];
        self.activity = vec![0.0; n];
        self.saved_phase = vec![false; n];
        self.heap.clear();
        self.heap_pos = vec![NOT_IN_HEAP; n];
        self.rebuild_heap();
        self.clauses.clear();
        self.watches = vec![Vec::new(); 2 * n];
        self.units.clear();
        self.trail.clear();
        self.trail_limits.clear();
        self.propagation_head = 0;
        self.push_depth = 0;
        self.var_push = vec![0; n];
        self.empty_clause_level = None;
        self.model_cached = false;
        self.activity_increment = 1.0;
        self.stats = SolverStats::default();
    }

    /// Grows every per-variable array to cover at least `n` variables.
    fn ensure_vars(&mut self, n: usize) {
        if n <= self.values.len() {
            return;
        }
        let old = self.values.len();
        self.values.resize(n, VarValue::Unassigned);
        self.levels.resize(n, 0);
        self.reasons.resize(n, None);
        self.activity.resize(n, 0.0);
        self.saved_phase.resize(n, false);
        self.var_push.resize(n, 0);
        self.watches.resize(2 * n, Vec::new());
        self.heap_pos.resize(n, NOT_IN_HEAP);
        for var in old..n {
            self.heap_insert(var);
        }
    }

    /// Clears the trail and every per-variable assignment, keeping the clause
    /// database, activities and saved phases — the state that makes repeated
    /// incremental calls cheaper than solving from scratch.
    fn reset_search_state(&mut self) {
        for value in &mut self.values {
            *value = VarValue::Unassigned;
        }
        for reason in &mut self.reasons {
            *reason = None;
        }
        for dep in &mut self.var_push {
            *dep = 0;
        }
        self.trail.clear();
        self.trail_limits.clear();
        self.propagation_head = 0;
        self.rebuild_heap();
    }

    /// Refills the order heap with every variable (all unassigned after a
    /// search-state reset).
    fn rebuild_heap(&mut self) {
        self.heap.clear();
        for pos in &mut self.heap_pos {
            *pos = NOT_IN_HEAP;
        }
        for var in 0..self.values.len() {
            self.heap_insert(var);
        }
    }

    /// Rebuilds the watch lists and the unit-clause index from the current
    /// clause database.
    fn rebuild_watches(&mut self) {
        for watch in &mut self.watches {
            watch.clear();
        }
        self.units.clear();
        for (i, clause) in self.clauses.iter().enumerate() {
            self.watches[clause.literals[0].code()].push(i);
            if clause.literals.len() > 1 {
                self.watches[clause.literals[1].code()].push(i);
            } else {
                self.units.push(i);
            }
        }
    }

    fn literal_value(&self, lit: Literal) -> VarValue {
        match self.values[lit.variable().index()] {
            VarValue::Unassigned => VarValue::Unassigned,
            VarValue::True => {
                if lit.is_positive() {
                    VarValue::True
                } else {
                    VarValue::False
                }
            }
            VarValue::False => {
                if lit.is_positive() {
                    VarValue::False
                } else {
                    VarValue::True
                }
            }
        }
    }

    fn decision_level(&self) -> usize {
        self.trail_limits.len()
    }

    fn enqueue(&mut self, lit: Literal, reason: Option<usize>) {
        let var = lit.variable().index();
        debug_assert_eq!(self.values[var], VarValue::Unassigned);
        self.values[var] = VarValue::from_bool(lit.is_positive());
        self.levels[var] = self.decision_level();
        self.reasons[var] = reason;
        self.saved_phase[var] = lit.is_positive();
        // Track the deepest push frame this assignment transitively depends
        // on, so [`Self::analyze`] can tag learned clauses that silently
        // resolve against root-level literals. Only needed under push frames.
        let dep = match reason {
            Some(clause) if self.push_depth > 0 => {
                let mut dep = self.clauses[clause].push_level;
                for &q in &self.clauses[clause].literals {
                    if q != lit {
                        dep = dep.max(self.var_push[q.variable().index()]);
                    }
                }
                dep
            }
            _ => 0,
        };
        self.var_push[var] = dep;
        self.trail.push(lit);
    }

    /// Adds a clause to the database and registers watches.
    /// Returns `None` if the clause is empty (immediate conflict at level 0).
    fn add_clause(
        &mut self,
        literals: Vec<Literal>,
        learned: bool,
        push_level: usize,
    ) -> Option<usize> {
        if literals.is_empty() {
            return None;
        }
        let index = self.clauses.len();
        // Watch the first two literals (callers arrange for sensible ordering).
        self.watches[literals[0].code()].push(index);
        if literals.len() > 1 {
            self.watches[literals[1].code()].push(index);
        } else {
            self.units.push(index);
        }
        self.clauses.push(DbClause {
            literals,
            learned,
            push_level,
            imported: false,
        });
        Some(index)
    }

    /// Propagates all pending assignments; returns a conflicting clause index
    /// if a conflict is found.
    fn propagate(&mut self) -> Option<usize> {
        while self.propagation_head < self.trail.len() {
            let lit = self.trail[self.propagation_head];
            self.propagation_head += 1;
            let false_lit = !lit; // literals watching `false_lit` must be updated
            let mut watch_list = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            while i < watch_list.len() {
                let clause_index = watch_list[i];
                // Single-literal clauses watch their only literal; a wake-up on
                // its negation is a direct conflict or (re-)assertion.
                if self.clauses[clause_index].literals.len() == 1 {
                    let only = self.clauses[clause_index].literals[0];
                    match self.literal_value(only) {
                        VarValue::False => {
                            self.watches[false_lit.code()] = watch_list;
                            return Some(clause_index);
                        }
                        VarValue::Unassigned => {
                            self.stats.propagations += 1;
                            self.enqueue(only, Some(clause_index));
                        }
                        VarValue::True => {}
                    }
                    i += 1;
                    continue;
                }
                // Ensure the falsified literal sits in position 1.
                {
                    let clause = &mut self.clauses[clause_index];
                    if clause.literals[0] == false_lit {
                        clause.literals.swap(0, 1);
                    }
                }

                let first = self.clauses[clause_index].literals[0];
                if self.literal_value(first) == VarValue::True {
                    // Clause already satisfied; keep watching.
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut new_watch: Option<usize> = None;
                for k in 2..self.clauses[clause_index].literals.len() {
                    let cand = self.clauses[clause_index].literals[k];
                    if self.literal_value(cand) != VarValue::False {
                        new_watch = Some(k);
                        break;
                    }
                }
                match new_watch {
                    Some(k) => {
                        // Move the new watch into position 1 and transfer the watch.
                        self.clauses[clause_index].literals.swap(1, k);
                        let moved = self.clauses[clause_index].literals[1];
                        self.watches[moved.code()].push(clause_index);
                        watch_list.swap_remove(i);
                        // do not increment i: swapped element takes this slot
                    }
                    None => {
                        // Clause is unit or conflicting under the current assignment.
                        match self.literal_value(first) {
                            VarValue::False => {
                                self.watches[false_lit.code()] = watch_list;
                                return Some(clause_index);
                            }
                            VarValue::Unassigned => {
                                self.stats.propagations += 1;
                                self.enqueue(first, Some(clause_index));
                                i += 1;
                            }
                            VarValue::True => {
                                i += 1;
                            }
                        }
                    }
                }
            }
            self.watches[false_lit.code()] = watch_list;
        }
        None
    }

    fn bump_activity(&mut self, var: usize) {
        self.activity[var] += self.activity_increment;
        if self.activity[var] > 1e100 {
            // Rescaling multiplies every activity by the same factor, so the
            // heap order is untouched.
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.activity_increment *= 1e-100;
        }
        // A bump only ever raises an activity, so restoring the heap
        // invariant is a single sift towards the root.
        if self.heap_pos[var] != NOT_IN_HEAP {
            self.heap_sift_up(self.heap_pos[var]);
        }
    }

    fn heap_sift_up(&mut self, mut i: usize) {
        let var = self.heap[i];
        let activity = self.activity[var];
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.activity[self.heap[parent]] >= activity {
                break;
            }
            self.heap[i] = self.heap[parent];
            self.heap_pos[self.heap[i]] = i;
            i = parent;
        }
        self.heap[i] = var;
        self.heap_pos[var] = i;
    }

    fn heap_sift_down(&mut self, mut i: usize) {
        let var = self.heap[i];
        let activity = self.activity[var];
        loop {
            let left = 2 * i + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let child = if right < self.heap.len()
                && self.activity[self.heap[right]] > self.activity[self.heap[left]]
            {
                right
            } else {
                left
            };
            if activity >= self.activity[self.heap[child]] {
                break;
            }
            self.heap[i] = self.heap[child];
            self.heap_pos[self.heap[i]] = i;
            i = child;
        }
        self.heap[i] = var;
        self.heap_pos[var] = i;
    }

    fn heap_insert(&mut self, var: usize) {
        if self.heap_pos[var] != NOT_IN_HEAP {
            return;
        }
        self.heap_pos[var] = self.heap.len();
        self.heap.push(var);
        self.heap_sift_up(self.heap.len() - 1);
    }

    fn heap_pop(&mut self) -> Option<usize> {
        let top = *self.heap.first()?;
        self.heap_pos[top] = NOT_IN_HEAP;
        let last = self.heap.pop().expect("heap non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last] = 0;
            self.heap_sift_down(0);
        }
        Some(top)
    }

    fn decay_activities(&mut self) {
        self.activity_increment /= self.activity_decay;
    }

    /// First-UIP conflict analysis. Returns the learned clause (with the
    /// asserting literal in position 0), the backjump level, and the deepest
    /// push frame the derivation depends on.
    fn analyze(&mut self, conflict: usize) -> (Vec<Literal>, usize, usize) {
        let current_level = self.decision_level();
        let mut learned: Vec<Literal> = Vec::new();
        let mut seen = vec![false; self.values.len()];
        let mut counter = 0usize;
        let mut trail_index = self.trail.len();
        let mut resolve_literal: Option<Literal> = None;
        let mut reason_clause = conflict;
        let mut max_push = self.clauses[conflict].push_level;

        loop {
            max_push = max_push.max(self.clauses[reason_clause].push_level);
            let reason_literals = self.clauses[reason_clause].literals.clone();
            for lit in reason_literals {
                if Some(lit) == resolve_literal {
                    continue;
                }
                let var = lit.variable().index();
                if seen[var] {
                    continue;
                }
                if self.levels[var] == 0 {
                    // Dropping a root-level-falsified literal resolves against
                    // the clause chain that fixed it; the learned clause
                    // inherits that chain's push dependency.
                    max_push = max_push.max(self.var_push[var]);
                    continue;
                }
                seen[var] = true;
                self.bump_activity(var);
                if self.levels[var] == current_level {
                    counter += 1;
                } else {
                    learned.push(lit);
                }
            }
            // Find the next literal on the trail (at the current level) to resolve on.
            loop {
                trail_index -= 1;
                let lit = self.trail[trail_index];
                if seen[lit.variable().index()] {
                    resolve_literal = Some(lit);
                    break;
                }
            }
            let lit = resolve_literal.expect("found a literal to resolve on");
            counter -= 1;
            seen[lit.variable().index()] = false;
            if counter == 0 {
                // lit is the first UIP; the learned clause asserts its negation.
                learned.insert(0, !lit);
                break;
            }
            reason_clause = self.reasons[lit.variable().index()]
                .expect("non-decision literal must have a reason");
            // When resolving on `lit`, skip it while scanning its reason clause.
            resolve_literal = Some(lit);
        }

        // Backjump level: the highest level among the non-asserting literals.
        let backjump = learned[1..]
            .iter()
            .map(|l| self.levels[l.variable().index()])
            .max()
            .unwrap_or(0);
        // Put a literal from the backjump level into watch position 1 so that
        // the learned clause wakes up correctly after backjumping.
        if learned.len() > 1 {
            let pos = learned[1..]
                .iter()
                .position(|l| self.levels[l.variable().index()] == backjump)
                .map(|p| p + 1)
                .unwrap_or(1);
            learned.swap(1, pos);
        }
        (learned, backjump, max_push)
    }

    fn backjump(&mut self, level: usize) {
        while self.decision_level() > level {
            let limit = self.trail_limits.pop().expect("level > 0");
            while self.trail.len() > limit {
                let lit = self.trail.pop().expect("trail non-empty");
                let var = lit.variable().index();
                self.values[var] = VarValue::Unassigned;
                self.reasons[var] = None;
                self.heap_insert(var);
            }
        }
        self.propagation_head = self.trail.len().min(self.propagation_head);
        self.propagation_head = self.trail.len();
    }

    fn pick_branch_variable(&mut self) -> Option<usize> {
        // Lazy deletion: variables assigned by propagation (or as
        // assumptions) linger in the heap and are skipped here; backjumping
        // re-inserts whatever it unassigns.
        while let Some(var) = self.heap_pop() {
            if self.values[var] == VarValue::Unassigned {
                return Some(var);
            }
        }
        None
    }

    fn reduce_learned_clauses(&mut self) {
        // Simple clause-database management: when too many learned clauses
        // accumulate, drop the longer half that is not currently a reason.
        let learned_indices: Vec<usize> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learned)
            .map(|(i, _)| i)
            .collect();
        if learned_indices.len() <= self.max_learned {
            return;
        }
        let reasons: std::collections::HashSet<usize> =
            self.reasons.iter().flatten().copied().collect();
        let mut by_len: Vec<usize> = learned_indices
            .into_iter()
            .filter(|i| !reasons.contains(i))
            .collect();
        by_len.sort_by_key(|&i| std::cmp::Reverse(self.clauses[i].literals.len()));
        let to_remove: std::collections::HashSet<usize> =
            by_len.into_iter().take(self.max_learned / 2).collect();
        if to_remove.is_empty() {
            return;
        }
        // Rebuild the clause database and watches without the removed clauses.
        let mut remap = vec![usize::MAX; self.clauses.len()];
        let mut new_clauses = Vec::with_capacity(self.clauses.len() - to_remove.len());
        for (i, clause) in self.clauses.drain(..).enumerate() {
            if to_remove.contains(&i) {
                continue;
            }
            remap[i] = new_clauses.len();
            new_clauses.push(clause);
        }
        self.clauses = new_clauses;
        self.rebuild_watches();
        for r in &mut self.reasons {
            if let Some(old) = *r {
                *r = if remap[old] == usize::MAX {
                    None
                } else {
                    Some(remap[old])
                };
            }
        }
    }

    fn extract_model(&self) -> Assignment {
        Assignment::from_bools(
            self.values
                .iter()
                .map(|v| matches!(v, VarValue::True))
                .collect(),
        )
    }

    /// Loads a formula's clauses into the database, tagged with `push_level`.
    /// Tautologies are skipped; an empty clause marks the frame as
    /// unconditionally unsatisfiable instead of entering the database.
    fn load_frame(&mut self, formula: &CnfFormula, push_level: usize) {
        for clause in formula.iter() {
            let mut lits: Vec<Literal> = clause.literals().to_vec();
            lits.sort();
            lits.dedup();
            if lits.iter().any(|&l| lits.binary_search(&!l).is_ok()) {
                continue;
            }
            if lits.is_empty() {
                if self.empty_clause_level.is_none() {
                    self.empty_clause_level = Some(push_level);
                }
                continue;
            }
            self.add_clause(lits, false, push_level);
        }
    }

    /// Final-conflict analysis for a falsified assumption `p`: walks the
    /// implication graph backwards from `p` and collects the assumption
    /// decisions it transitively rests on. The returned literals are a subset
    /// of the current call's assumptions that is already inconsistent with
    /// the clause database.
    fn analyze_final(&self, p: Literal) -> Vec<Literal> {
        let mut core = vec![p];
        if self.decision_level() == 0 {
            return core;
        }
        let mut seen = vec![false; self.values.len()];
        seen[p.variable().index()] = true;
        for i in (self.trail_limits[0]..self.trail.len()).rev() {
            let lit = self.trail[i];
            let var = lit.variable().index();
            if !seen[var] {
                continue;
            }
            match self.reasons[var] {
                // Every decision above level 0 at this point is an assumption.
                None => core.push(lit),
                Some(clause) => {
                    for &q in &self.clauses[clause].literals {
                        if self.levels[q.variable().index()] > 0 {
                            seen[q.variable().index()] = true;
                        }
                    }
                }
            }
        }
        core
    }

    /// The CDCL main loop over the current clause database, with
    /// `assumptions` enqueued as the first decisions (in order).
    /// Literal block distance of a clause: the number of distinct decision
    /// levels among its literals. Must run before the post-conflict backjump,
    /// while the levels of the learned literals are still current.
    fn clause_lbd(&self, literals: &[Literal]) -> u32 {
        let mut levels: Vec<usize> = literals
            .iter()
            .map(|l| self.levels[l.variable().index()])
            .collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    /// Drains every unseen foreign clause from the attached share pool into
    /// the clause database. Must be called at decision level 0 (a restart
    /// boundary). Returns `true` when an import is falsified outright by the
    /// level-0 trail, which proves the database unsatisfiable.
    fn import_shared_clauses(&mut self) -> bool {
        let Some(mut share) = self.share.take() else {
            return false;
        };
        debug_assert_eq!(self.decision_level(), 0);
        let mut incoming: Vec<Vec<Literal>> = Vec::new();
        share.import(|lits| incoming.push(lits.to_vec()));
        self.share = Some(share);
        let mut conflict = false;
        for literals in incoming {
            self.stats.clauses_imported += 1;
            if self.integrate_import(literals) {
                conflict = true;
            }
        }
        conflict
    }

    /// Adds one imported clause to the database, re-establishing the watch
    /// invariant against the current level-0 trail. Returns `true` when the
    /// clause is falsified at level 0 (the database is unsatisfiable — every
    /// import is implied by the shared base formula).
    fn integrate_import(&mut self, mut literals: Vec<Literal>) -> bool {
        literals.sort_unstable();
        literals.dedup();
        if literals.is_empty() {
            return true;
        }
        if literals
            .iter()
            .any(|&l| literals.binary_search(&!l).is_ok())
        {
            // Tautology: true under every assignment, nothing to learn.
            return false;
        }
        let max_var = literals
            .iter()
            .map(|l| l.variable().index() + 1)
            .max()
            .unwrap_or(0);
        self.ensure_vars(max_var);
        if literals
            .iter()
            .any(|&l| self.literal_value(l) == VarValue::True)
        {
            // Already satisfied at level 0 for the rest of this frame — the
            // clause cannot prune anything, skip it.
            return false;
        }
        // Move non-false literals to the front so the watched positions 0/1
        // hold literals that are unassigned under the level-0 trail.
        literals.sort_by_key(|&l| self.literal_value(l) == VarValue::False);
        let non_false = literals
            .iter()
            .take_while(|&&l| self.literal_value(l) != VarValue::False)
            .count();
        if non_false == 0 {
            // Falsified by the level-0 trail: since the import is implied by
            // the base formula, the database itself is unsatisfiable.
            if self.empty_clause_level.is_none() {
                self.empty_clause_level = Some(self.push_depth);
            }
            return true;
        }
        let unit = (non_false == 1).then(|| literals[0]);
        let idx = self
            .add_clause(literals, true, self.push_depth)
            .expect("non-empty");
        self.clauses[idx].imported = true;
        if let Some(lit) = unit {
            // Exactly one watchable literal: the clause propagates it at
            // level 0 right away (the false watch at position 1 never wakes
            // again, but the clause stays satisfied for the whole frame).
            self.enqueue(lit, Some(idx));
        }
        false
    }

    /// Number of clauses in the database that arrived through the shared
    /// clause pool (exposed for the clause-sharing invariant suites).
    pub fn imported_clause_count(&self) -> usize {
        self.clauses.iter().filter(|c| c.imported).count()
    }

    /// The literals of every clause currently in the database that arrived
    /// through the shared clause pool (exposed for the clause-sharing
    /// invariant suites, which check each one is implied by the input).
    pub fn imported_clauses(&self) -> Vec<Vec<Literal>> {
        self.clauses
            .iter()
            .filter(|c| c.imported)
            .map(|c| c.literals.clone())
            .collect()
    }

    fn search(&mut self, assumptions: &[Literal], limits: &SearchLimits) -> IncrementalResult {
        if self.empty_clause_level.is_some() {
            return IncrementalResult::Unsatisfiable(Vec::new());
        }
        // (Re-)assert stored unit clauses at level 0. Single-literal clauses
        // only watch their own literal, so they never self-propagate at the
        // start of a call.
        for i in 0..self.units.len() {
            let idx = self.units[i];
            let only = self.clauses[idx].literals[0];
            match self.literal_value(only) {
                VarValue::False => return IncrementalResult::Unsatisfiable(Vec::new()),
                VarValue::True => {}
                VarValue::Unassigned => self.enqueue(only, Some(idx)),
            }
        }
        if self.propagate().is_some() {
            return IncrementalResult::Unsatisfiable(Vec::new());
        }

        let mut conflicts_since_restart = 0u64;
        let mut restart_count = 0u64;
        loop {
            // One deadline check per conflict/decision iteration: each
            // iteration performs a full propagation pass, so the check is
            // amortized noise yet bounds the reaction latency to one
            // propagation.
            if limits.expired() {
                return IncrementalResult::Unknown;
            }
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    return IncrementalResult::Unsatisfiable(Vec::new());
                }
                let (learned, backjump_level, depends_on) = self.analyze(conflict);
                // Export before backjumping: the LBD needs the decision levels
                // of the learned literals, which go stale once we backjump.
                // Only frame-0 derivations leave the solver — those are the
                // clauses implied by the base formula alone, so a foreign
                // member may adopt them regardless of its own frame stack.
                if depends_on == 0 && self.share.is_some() {
                    let lbd = self.clause_lbd(&learned);
                    let accepted = self
                        .share
                        .as_ref()
                        .is_some_and(|share| share.export(&learned, lbd));
                    if accepted {
                        self.stats.clauses_exported += 1;
                    }
                }
                self.decay_activities();
                self.backjump(backjump_level);
                let asserting = learned[0];
                let unit = learned.len() == 1;
                let idx = self
                    .add_clause(learned, true, depends_on)
                    .expect("non-empty");
                self.stats.learned_clauses += 1;
                if unit {
                    // Unit learned clause: assert at level 0.
                    match self.literal_value(asserting) {
                        VarValue::Unassigned => self.enqueue(asserting, Some(idx)),
                        VarValue::False => return IncrementalResult::Unsatisfiable(Vec::new()),
                        VarValue::True => {}
                    }
                } else {
                    self.enqueue(asserting, Some(idx));
                }
                self.reduce_learned_clauses();
            } else {
                // Restart check.
                let limit = self.restart_base * luby(restart_count);
                if conflicts_since_restart >= limit {
                    restart_count += 1;
                    conflicts_since_restart = 0;
                    self.stats.restarts += 1;
                    self.backjump(0);
                    // Restart boundary: the trail is back at level 0, which is
                    // the only point where a foreign clause can be integrated
                    // with the two-watched-literal invariant intact.
                    if self.import_shared_clauses() {
                        return IncrementalResult::Unsatisfiable(Vec::new());
                    }
                    continue;
                }
                // Establish the assumptions as the first decisions, in order.
                // A restart backjumps to level 0, so this loop re-establishes
                // them afterwards; already-satisfied assumptions get a dummy
                // decision level so level indices stay aligned.
                let mut next_assumption = None;
                while self.decision_level() < assumptions.len() {
                    let p = assumptions[self.decision_level()];
                    match self.literal_value(p) {
                        VarValue::True => self.trail_limits.push(self.trail.len()),
                        VarValue::False => {
                            return IncrementalResult::Unsatisfiable(self.analyze_final(p))
                        }
                        VarValue::Unassigned => {
                            next_assumption = Some(p);
                            break;
                        }
                    }
                }
                if let Some(p) = next_assumption {
                    self.stats.decisions += 1;
                    self.trail_limits.push(self.trail.len());
                    self.enqueue(p, None);
                    continue;
                }
                // Branch.
                match self.pick_branch_variable() {
                    None => return IncrementalResult::Satisfiable(self.extract_model()),
                    Some(var) => {
                        self.stats.decisions += 1;
                        self.trail_limits.push(self.trail.len());
                        let phase = self.saved_phase[var];
                        self.enqueue(Literal::with_phase(Variable::new(var), phase), None);
                    }
                }
            }
        }
    }

    /// Pushes a frame of clauses onto the solver. Returns the new push depth.
    ///
    /// The frame's clauses stay active until a matching [`Self::pop`]; learned
    /// clauses derived from them are tagged so the pop removes exactly the
    /// learned clauses whose derivation touched the frame.
    pub fn push(&mut self, formula: &CnfFormula) -> usize {
        self.push_depth += 1;
        self.model_cached = false;
        self.ensure_vars(formula.num_vars());
        self.load_frame(formula, self.push_depth);
        self.push_depth
    }

    /// Pops the most recent frame, dropping its clauses and every learned
    /// clause that depends on it. Returns `false` when no frame is open.
    pub fn pop(&mut self) -> bool {
        if self.push_depth == 0 {
            return false;
        }
        self.push_depth -= 1;
        self.model_cached = false;
        // The trail may rest on clauses about to be dropped: discard it
        // entirely (activities and phases survive, which is where the
        // incremental speedup lives anyway).
        self.reset_search_state();
        let depth = self.push_depth;
        self.clauses.retain(|c| c.push_level <= depth);
        self.rebuild_watches();
        if self.empty_clause_level.is_some_and(|l| l > depth) {
            self.empty_clause_level = None;
        }
        true
    }

    /// The number of currently open push frames.
    pub fn push_depth(&self) -> usize {
        self.push_depth
    }

    /// The number of variables the solver currently tracks.
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Solves the pushed clauses under `assumptions`, IPASIR-style.
    ///
    /// Assumption literals are enqueued as the first decisions; when the
    /// database is unsatisfiable under them, the result carries a
    /// failed-assumption core (see [`IncrementalResult::Unsatisfiable`]).
    /// Learned clauses, variable activities and saved phases persist across
    /// calls, which is what makes a sweep of near-identical queries cheaper
    /// than re-solving each from scratch.
    ///
    /// ```
    /// use cnf::{cnf_formula, Literal};
    /// use sat_solvers::{CdclSolver, IncrementalResult, SearchLimits};
    /// let mut solver = CdclSolver::new();
    /// solver.push(&cnf_formula![[1, 2], [-1, 2]]);
    /// let limits = SearchLimits::unlimited();
    /// let lit = |i| Literal::from_dimacs(i).unwrap();
    /// assert!(solver.solve_under_assumptions(&[lit(-2)], &limits).is_unsat());
    /// assert!(solver.solve_under_assumptions(&[lit(2)], &limits).is_sat());
    /// ```
    pub fn solve_under_assumptions(
        &mut self,
        assumptions: &[Literal],
        limits: &SearchLimits,
    ) -> IncrementalResult {
        self.stats = SolverStats::default();
        // Model reuse: the previous call's complete model is still a model of
        // the unchanged clause database, so if it happens to satisfy every
        // new assumption the answer needs no search at all. Sweep workloads
        // hit this constantly — one test pattern detects many faults.
        if self.model_cached
            && assumptions.iter().all(|&l| {
                l.variable().index() < self.values.len() && self.literal_value(l) == VarValue::True
            })
        {
            return IncrementalResult::Satisfiable(self.extract_model());
        }
        self.model_cached = false;
        self.reset_search_state();
        let max_var = assumptions
            .iter()
            .map(|l| l.variable().index() + 1)
            .max()
            .unwrap_or(0);
        self.ensure_vars(max_var);
        let result = self.search(assumptions, limits);
        self.model_cached = result.is_sat();
        result
    }
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...), 0-indexed.
fn luby(i: u64) -> u64 {
    fn luby_one_indexed(i: u64) -> u64 {
        let mut k = 1u64;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            1u64 << (k - 1)
        } else {
            luby_one_indexed(i - ((1u64 << (k - 1)) - 1))
        }
    }
    luby_one_indexed(i + 1)
}

impl Solver for CdclSolver {
    fn solve_limited(&mut self, formula: &CnfFormula, limits: &SearchLimits) -> SolveResult {
        self.init(formula);
        self.load_frame(formula, 0);
        match self.search(&[], limits) {
            IncrementalResult::Satisfiable(model) => {
                debug_assert!(formula.evaluate(&model));
                SolveResult::Satisfiable(model)
            }
            IncrementalResult::Unsatisfiable(_) => SolveResult::Unsatisfiable,
            IncrementalResult::Unknown => SolveResult::Unknown,
        }
    }

    fn attach_share(&mut self, handle: ShareHandle) {
        self.share = Some(handle);
    }

    fn detach_share(&mut self) {
        self.share = None;
    }

    fn stats(&self) -> SolverStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "cdcl"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceSolver;
    use cnf::cnf_formula;
    use cnf::generators::{self, RandomKSatConfig};

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..expected.len() as u64).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn solves_paper_instances() {
        let mut solver = CdclSolver::new();
        assert!(solver.solve(&generators::example6_sat()).is_sat());
        assert!(solver.solve(&generators::example7_unsat()).is_unsat());
        assert!(solver.solve(&generators::section4_sat_instance()).is_sat());
        assert!(solver
            .solve(&generators::section4_unsat_instance())
            .is_unsat());
    }

    #[test]
    fn model_validity_on_structured_instances() {
        let instances = [
            generators::parity_chain(6, true),
            generators::graph_coloring(&generators::cycle_graph(7), 3),
            generators::pigeonhole(3, 3),
            generators::buggy_adder_miter(2, 0),
        ];
        for f in instances {
            let mut solver = CdclSolver::new();
            let result = solver.solve(&f);
            let model = result.model().expect("instances are satisfiable");
            assert!(f.evaluate(model));
        }
    }

    #[test]
    fn unsat_structured_instances() {
        let instances = [
            generators::pigeonhole(4, 3),
            generators::graph_coloring(&generators::cycle_graph(5), 2),
            generators::adder_equivalence_miter(2),
        ];
        for f in instances {
            let mut solver = CdclSolver::new();
            assert!(solver.solve(&f).is_unsat());
        }
    }

    #[test]
    fn agrees_with_brute_force_on_random_3sat() {
        for seed in 0..60 {
            let cfg = RandomKSatConfig::new(10, 43, 3).with_seed(seed);
            let f = generators::random_ksat(&cfg).unwrap();
            let expected = BruteForceSolver::new().solve(&f).is_sat();
            let mut solver = CdclSolver::new();
            let got = solver.solve(&f);
            assert_eq!(got.is_sat(), expected, "seed {seed}");
            if let Some(m) = got.model() {
                assert!(f.evaluate(m), "seed {seed}");
            }
        }
    }

    #[test]
    fn agrees_with_brute_force_on_wide_clauses() {
        for seed in 0..20 {
            let cfg = RandomKSatConfig::new(9, 25, 4).with_seed(seed + 1000);
            let f = generators::random_ksat(&cfg).unwrap();
            let expected = BruteForceSolver::new().solve(&f).is_sat();
            let mut solver = CdclSolver::new().with_restart_base(10);
            assert_eq!(solver.solve(&f).is_sat(), expected, "seed {seed}");
        }
    }

    #[test]
    fn duplicate_and_tautological_clauses_are_handled() {
        let f = cnf_formula![[1, 1, 2], [1, -1], [-2, -2], [-1, 2]];
        let expected = BruteForceSolver::new().solve(&f).is_sat();
        assert_eq!(CdclSolver::new().solve(&f).is_sat(), expected);
    }

    #[test]
    fn contradictory_units_detected() {
        assert!(CdclSolver::new().solve(&cnf_formula![[3], [-3]]).is_unsat());
    }

    #[test]
    fn empty_formula_and_empty_clause() {
        assert!(CdclSolver::new().solve(&cnf::CnfFormula::new(4)).is_sat());
        let mut f = cnf::CnfFormula::new(1);
        f.push_clause(cnf::Clause::new());
        assert!(CdclSolver::new().solve(&f).is_unsat());
    }

    #[test]
    fn expired_deadline_interrupts_with_unknown() {
        let f = generators::pigeonhole(7, 6);
        let mut solver = CdclSolver::new();
        let limits = SearchLimits::deadline_in(std::time::Duration::ZERO);
        assert_eq!(solver.solve_limited(&f, &limits), SolveResult::Unknown);
        assert!(solver.solve(&generators::example6_sat()).is_sat());
    }

    #[test]
    fn restarts_happen_on_hard_unsat_instances() {
        let f = generators::pigeonhole(5, 4);
        let mut solver = CdclSolver::new().with_restart_base(5);
        assert!(solver.solve(&f).is_unsat());
        assert!(solver.stats().restarts > 0);
        assert!(solver.stats().learned_clauses > 0);
        assert_eq!(solver.name(), "cdcl");
    }

    fn lit(i: i64) -> Literal {
        Literal::from_dimacs(i).expect("nonzero dimacs literal")
    }

    /// Checks an incremental verdict against solving `formula` plus the
    /// assumptions as unit clauses from scratch, and — on UNSAT — that the
    /// returned core is a subset of the assumptions and itself inconsistent
    /// with the formula.
    fn check_incremental_against_oracle(
        solver: &mut CdclSolver,
        formula: &CnfFormula,
        assumptions: &[Literal],
    ) {
        let limits = SearchLimits::unlimited();
        let result = solver.solve_under_assumptions(assumptions, &limits);
        let mut augmented = formula.clone();
        augmented.ensure_vars(solver.num_vars());
        for &a in assumptions {
            augmented.push_clause(cnf::Clause::from_literals(vec![a]));
        }
        let oracle = CdclSolver::new().solve(&augmented);
        match &result {
            IncrementalResult::Satisfiable(model) => {
                assert!(oracle.is_sat(), "incremental SAT but oracle UNSAT");
                assert!(formula.evaluate(model));
                for &a in assumptions {
                    assert!(model.satisfies(a), "assumption {a} not honoured by model");
                }
            }
            IncrementalResult::Unsatisfiable(core) => {
                assert!(oracle.is_unsat(), "incremental UNSAT but oracle SAT");
                for c in core {
                    assert!(assumptions.contains(c), "core literal {c} not assumed");
                }
                let mut with_core = formula.clone();
                with_core.ensure_vars(solver.num_vars());
                for &c in core {
                    with_core.push_clause(cnf::Clause::from_literals(vec![c]));
                }
                assert!(
                    CdclSolver::new().solve(&with_core).is_unsat(),
                    "core {core:?} is not inconsistent with the formula"
                );
            }
            IncrementalResult::Unknown => panic!("unlimited search returned Unknown"),
        }
    }

    #[test]
    fn incremental_agrees_with_unit_clause_oracle() {
        for seed in 0..25 {
            let cfg = RandomKSatConfig::new(8, 30, 3).with_seed(seed + 7000);
            let f = generators::random_ksat(&cfg).unwrap();
            let mut solver = CdclSolver::new();
            solver.push(&f);
            // Several calls against the same persistent solver.
            for call in 0..4u64 {
                let a = ((seed + call) % 8) as i64 + 1;
                let b = ((seed + 3 * call + 2) % 8) as i64 + 1;
                let assumptions = [
                    lit(if call % 2 == 0 { a } else { -a }),
                    lit(if call % 3 == 0 { b } else { -b }),
                ];
                let assumptions: Vec<Literal> =
                    if assumptions[0].variable() == assumptions[1].variable() {
                        assumptions[..1].to_vec()
                    } else {
                        assumptions.to_vec()
                    };
                check_incremental_against_oracle(&mut solver, &f, &assumptions);
            }
        }
    }

    #[test]
    fn failed_assumption_core_on_chain() {
        // 1 → 2 → 3; assuming 1 and ¬3 is inconsistent.
        let f = cnf_formula![[-1, 2], [-2, 3]];
        let mut solver = CdclSolver::new();
        solver.push(&f);
        let limits = SearchLimits::unlimited();
        let result = solver.solve_under_assumptions(&[lit(1), lit(-3)], &limits);
        let core = result
            .failed_assumptions()
            .expect("UNSAT under assumptions");
        assert!(!core.is_empty());
        check_incremental_against_oracle(&mut solver, &f, &[lit(1), lit(-3)]);
        // Same solver answers SAT afterwards.
        assert!(solver.solve_under_assumptions(&[lit(1)], &limits).is_sat());
    }

    #[test]
    fn contradictory_assumptions_yield_core() {
        let f = cnf_formula![[1, 2]];
        let mut solver = CdclSolver::new();
        solver.push(&f);
        let limits = SearchLimits::unlimited();
        let result = solver.solve_under_assumptions(&[lit(3), lit(-3)], &limits);
        let core = result
            .failed_assumptions()
            .expect("contradictory assumptions");
        assert!(core.contains(&lit(3)) && core.contains(&lit(-3)));
    }

    #[test]
    fn formula_unsat_core_is_subset_of_assumptions() {
        let f = generators::pigeonhole(4, 3);
        let mut solver = CdclSolver::new();
        solver.push(&f);
        // With no assumptions the core must be empty (a subset of nothing)...
        let limits = SearchLimits::unlimited();
        match solver.solve_under_assumptions(&[], &limits) {
            IncrementalResult::Unsatisfiable(core) => assert!(core.is_empty()),
            other => panic!("expected UNSAT, got {other:?}"),
        }
        // ...and with an irrelevant assumption the core stays a valid subset
        // (it may name the assumption: formula ∧ core is still UNSAT).
        check_incremental_against_oracle(&mut solver, &f, &[lit(1)]);
    }

    #[test]
    fn pop_restores_satisfiability() {
        let base = cnf_formula![[1, 2], [-1, 2]];
        let contradiction = cnf_formula![[-2]];
        let mut solver = CdclSolver::new();
        let limits = SearchLimits::unlimited();
        solver.push(&base);
        assert_eq!(solver.push_depth(), 1);
        assert!(solver.solve_under_assumptions(&[], &limits).is_sat());
        solver.push(&contradiction);
        assert_eq!(solver.push_depth(), 2);
        match solver.solve_under_assumptions(&[], &limits) {
            IncrementalResult::Unsatisfiable(core) => assert!(core.is_empty()),
            other => panic!("expected UNSAT, got {other:?}"),
        }
        assert!(solver.pop());
        assert_eq!(solver.push_depth(), 1);
        // Any learned clause depending on the popped frame is gone: the base
        // frame is satisfiable again, with 2 forced true.
        let result = solver.solve_under_assumptions(&[], &limits);
        let model = result.model().expect("base frame is SAT");
        assert!(model.satisfies(lit(2)));
        assert!(solver.pop());
        assert!(!solver.pop());
    }

    #[test]
    fn learned_clauses_survive_unrelated_pops() {
        // Frame 1: a hard UNSAT core teaches the solver plenty. Frame 2 is
        // independent; popping it must not forget frame 1's lessons or break
        // later calls.
        let hard = generators::pigeonhole(4, 3);
        let mut solver = CdclSolver::new();
        let limits = SearchLimits::unlimited();
        solver.push(&hard);
        assert!(solver.solve_under_assumptions(&[], &limits).is_unsat());
        let learned_after_first = solver.clauses.iter().filter(|c| c.learned).count();
        assert!(learned_after_first > 0);
        let mut side = CnfFormula::new(solver.num_vars());
        side.push_clause(cnf::Clause::from_literals(vec![lit(1)]));
        solver.push(&side);
        solver.pop();
        // Learned clauses tagged with frame 1 survive the pop of frame 2.
        let learned_after_pop = solver.clauses.iter().filter(|c| c.learned).count();
        assert_eq!(learned_after_pop, learned_after_first);
        assert!(solver.solve_under_assumptions(&[], &limits).is_unsat());
    }

    #[test]
    fn empty_clause_in_frame_pops_cleanly() {
        let mut with_empty = CnfFormula::new(2);
        with_empty.push_clause(cnf::Clause::new());
        let mut solver = CdclSolver::new();
        let limits = SearchLimits::unlimited();
        solver.push(&cnf_formula![[1, 2]]);
        solver.push(&with_empty);
        match solver.solve_under_assumptions(&[lit(1)], &limits) {
            IncrementalResult::Unsatisfiable(core) => assert!(core.is_empty()),
            other => panic!("expected UNSAT, got {other:?}"),
        }
        solver.pop();
        assert!(solver.solve_under_assumptions(&[lit(1)], &limits).is_sat());
    }

    #[test]
    fn assumptions_widen_the_variable_range() {
        let mut solver = CdclSolver::new();
        let limits = SearchLimits::unlimited();
        solver.push(&cnf_formula![[1]]);
        // Variable 5 is unknown to the clause database; assuming it must
        // still be honoured in the model.
        let result = solver.solve_under_assumptions(&[lit(-5)], &limits);
        let model = result.model().expect("SAT");
        assert!(model.satisfies(lit(-5)));
        assert!(solver.num_vars() >= 5);
    }

    #[test]
    fn incremental_deadline_returns_unknown() {
        let mut solver = CdclSolver::new();
        solver.push(&generators::pigeonhole(7, 6));
        let limits = SearchLimits::deadline_in(std::time::Duration::ZERO);
        assert_eq!(
            solver.solve_under_assumptions(&[], &limits),
            IncrementalResult::Unknown
        );
        // The solver remains usable after an interrupted call.
        assert!(solver
            .solve_under_assumptions(&[], &SearchLimits::unlimited())
            .is_unsat());
    }

    #[test]
    fn exports_flow_between_cooperating_solvers() {
        use crate::share::{ShareHandle, SharedClausePool};
        use std::sync::Arc;

        let pool = Arc::new(SharedClausePool::default());
        let formula = generators::pigeonhole(5, 4);

        let mut exporter = CdclSolver::new().with_restart_base(1);
        exporter.attach_share(ShareHandle::new(Arc::clone(&pool), 0));
        assert!(exporter.solve(&formula).is_unsat());
        assert!(exporter.stats().clauses_exported > 0);
        // A member never re-imports its own exports.
        assert_eq!(exporter.stats().clauses_imported, 0);

        let mut importer = CdclSolver::new().with_restart_base(1);
        importer.attach_share(ShareHandle::new(Arc::clone(&pool), 1));
        assert!(importer.solve(&formula).is_unsat());
        assert!(importer.stats().clauses_imported > 0);
        assert!(importer.imported_clause_count() > 0);
        // Every clause in the pool came from frame-0 derivations on the same
        // formula, so each one is implied by it: any model of the formula
        // satisfies every imported clause. (UNSAT here, so spot-check on the
        // SAT sibling below instead.)
    }

    #[test]
    fn imported_clauses_satisfy_models() {
        use crate::share::{ShareHandle, SharedClausePool};
        use std::sync::Arc;

        let pool = Arc::new(SharedClausePool::default());
        for seed in 0..5 {
            let cfg = RandomKSatConfig::new(9, 30, 3).with_seed(seed + 4200);
            let formula = generators::random_ksat(&cfg).unwrap();
            let mut exporter = CdclSolver::new().with_restart_base(1);
            exporter.attach_share(ShareHandle::new(Arc::clone(&pool), 0));
            let baseline = exporter.solve(&formula);

            let mut importer = CdclSolver::new().with_restart_base(1);
            importer.attach_share(ShareHandle::new(Arc::clone(&pool), 1));
            let shared = importer.solve(&formula);
            assert_eq!(baseline.is_sat(), shared.is_sat(), "seed {seed}");
            if let SolveResult::Satisfiable(model) = &shared {
                for clause in importer.imported_clauses() {
                    assert!(
                        clause.iter().any(|&l| model.satisfies(l)),
                        "imported clause {clause:?} not satisfied by model (seed {seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn pop_drops_imports_taken_inside_the_frame() {
        use crate::share::{ShareHandle, SharedClausePool};
        use std::sync::Arc;

        let pool = Arc::new(SharedClausePool::default());
        // A foreign member seeds the pool before our solver ever searches.
        let foreign = ShareHandle::new(Arc::clone(&pool), 1);
        assert!(foreign.export(&[lit(1), lit(2)], 2));
        assert!(foreign.export(&[lit(-1), lit(3)], 2));

        let mut solver = CdclSolver::new().with_restart_base(1);
        solver.attach_share(ShareHandle::new(Arc::clone(&pool), 0));
        solver.push(&generators::pigeonhole(4, 3));
        let limits = SearchLimits::unlimited();
        assert!(solver.solve_under_assumptions(&[], &limits).is_unsat());
        assert!(solver.imported_clause_count() > 0);
        solver.pop();
        // Imports were tagged with the frame they arrived in; the pop drops
        // every one of them.
        assert_eq!(solver.imported_clause_count(), 0);
    }

    #[test]
    fn falsified_import_reports_unsat() {
        use crate::share::{ShareHandle, SharedClausePool};
        use std::sync::Arc;

        // The exporter contract guarantees pooled clauses are implied by the
        // shared formula; this test bypasses it to exercise the level-0
        // falsification path: a clause contradicting the root trail proves
        // the database unsatisfiable.
        let pool = Arc::new(SharedClausePool::default());
        let foreign = ShareHandle::new(Arc::clone(&pool), 1);
        assert!(foreign.export(&[lit(-1)], 1));

        // One conflict then a restart (base 1), at which point the import of
        // ¬x1 clashes with the level-0 unit x1.
        let mut solver = CdclSolver::new().with_restart_base(1);
        solver.attach_share(ShareHandle::new(Arc::clone(&pool), 0));
        let formula = cnf_formula![[1, 2], [1, -2], [-1, 2]];
        assert!(solver.solve(&formula).is_unsat());
        assert!(solver.stats().clauses_imported > 0);
    }

    #[test]
    fn detached_solver_matches_baseline() {
        use crate::share::{ShareHandle, SharedClausePool};
        use std::sync::Arc;

        let pool = Arc::new(SharedClausePool::default());
        let formula = generators::pigeonhole(4, 3);
        let mut solver = CdclSolver::new().with_restart_base(1);
        solver.attach_share(ShareHandle::new(Arc::clone(&pool), 0));
        solver.detach_share();
        assert!(solver.solve(&formula).is_unsat());
        assert_eq!(solver.stats().clauses_exported, 0);
        assert_eq!(solver.stats().clauses_imported, 0);

        let mut baseline = CdclSolver::new().with_restart_base(1);
        assert!(baseline.solve(&formula).is_unsat());
        assert_eq!(solver.stats().conflicts, baseline.stats().conflicts);
    }
}
