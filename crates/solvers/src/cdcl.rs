//! Conflict-driven clause learning (CDCL) solver.
//!
//! A modern complete SAT solver in the lineage of GRASP / Chaff / MiniSat
//! (the paper's references \[3\]–\[7\]): two-watched-literal propagation, VSIDS
//! branching, first-UIP clause learning with non-chronological backjumping,
//! phase saving and Luby restarts.

use crate::limits::SearchLimits;
use crate::solver::{SolveResult, Solver, SolverStats};
use cnf::{Assignment, CnfFormula, Literal, Variable};

/// Value of a variable in the solver's trail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarValue {
    Unassigned,
    True,
    False,
}

impl VarValue {
    fn from_bool(b: bool) -> Self {
        if b {
            VarValue::True
        } else {
            VarValue::False
        }
    }
}

/// A clause in the solver's database.
#[derive(Debug, Clone)]
struct DbClause {
    literals: Vec<Literal>,
    learned: bool,
}

/// Conflict-driven clause-learning SAT solver.
///
/// ```
/// use cnf::generators::pigeonhole;
/// use sat_solvers::{CdclSolver, Solver};
/// let mut solver = CdclSolver::new();
/// assert!(solver.solve(&pigeonhole(4, 3)).is_unsat());
/// assert!(solver.stats().learned_clauses > 0);
/// ```
#[derive(Debug, Clone)]
pub struct CdclSolver {
    stats: SolverStats,
    // Per-variable state.
    values: Vec<VarValue>,
    levels: Vec<usize>,
    reasons: Vec<Option<usize>>, // clause index that implied the variable
    activity: Vec<f64>,
    saved_phase: Vec<bool>,
    // Clause database and watches.
    clauses: Vec<DbClause>,
    watches: Vec<Vec<usize>>, // indexed by literal code
    // Trail.
    trail: Vec<Literal>,
    trail_limits: Vec<usize>, // trail length at each decision level
    propagation_head: usize,
    // Heuristic parameters.
    activity_increment: f64,
    activity_decay: f64,
    restart_base: u64,
    max_learned: usize,
}

impl Default for CdclSolver {
    fn default() -> Self {
        CdclSolver::new()
    }
}

impl CdclSolver {
    /// Creates a CDCL solver with default parameters.
    pub fn new() -> Self {
        CdclSolver {
            stats: SolverStats::default(),
            values: Vec::new(),
            levels: Vec::new(),
            reasons: Vec::new(),
            activity: Vec::new(),
            saved_phase: Vec::new(),
            clauses: Vec::new(),
            watches: Vec::new(),
            trail: Vec::new(),
            trail_limits: Vec::new(),
            propagation_head: 0,
            activity_increment: 1.0,
            activity_decay: 0.95,
            restart_base: 100,
            max_learned: 10_000,
        }
    }

    /// Sets the Luby restart base interval (in conflicts).
    pub fn with_restart_base(mut self, base: u64) -> Self {
        self.restart_base = base.max(1);
        self
    }

    fn init(&mut self, formula: &CnfFormula) {
        let n = formula.num_vars();
        self.values = vec![VarValue::Unassigned; n];
        self.levels = vec![0; n];
        self.reasons = vec![None; n];
        self.activity = vec![0.0; n];
        self.saved_phase = vec![false; n];
        self.clauses.clear();
        self.watches = vec![Vec::new(); 2 * n];
        self.trail.clear();
        self.trail_limits.clear();
        self.propagation_head = 0;
        self.activity_increment = 1.0;
        self.stats = SolverStats::default();
    }

    fn literal_value(&self, lit: Literal) -> VarValue {
        match self.values[lit.variable().index()] {
            VarValue::Unassigned => VarValue::Unassigned,
            VarValue::True => {
                if lit.is_positive() {
                    VarValue::True
                } else {
                    VarValue::False
                }
            }
            VarValue::False => {
                if lit.is_positive() {
                    VarValue::False
                } else {
                    VarValue::True
                }
            }
        }
    }

    fn decision_level(&self) -> usize {
        self.trail_limits.len()
    }

    fn enqueue(&mut self, lit: Literal, reason: Option<usize>) {
        let var = lit.variable().index();
        debug_assert_eq!(self.values[var], VarValue::Unassigned);
        self.values[var] = VarValue::from_bool(lit.is_positive());
        self.levels[var] = self.decision_level();
        self.reasons[var] = reason;
        self.saved_phase[var] = lit.is_positive();
        self.trail.push(lit);
    }

    /// Adds a clause to the database and registers watches.
    /// Returns `None` if the clause is empty (immediate conflict at level 0).
    fn add_clause(&mut self, literals: Vec<Literal>, learned: bool) -> Option<usize> {
        if literals.is_empty() {
            return None;
        }
        let index = self.clauses.len();
        // Watch the first two literals (callers arrange for sensible ordering).
        self.watches[literals[0].code()].push(index);
        if literals.len() > 1 {
            self.watches[literals[1].code()].push(index);
        }
        self.clauses.push(DbClause { literals, learned });
        Some(index)
    }

    /// Propagates all pending assignments; returns a conflicting clause index
    /// if a conflict is found.
    fn propagate(&mut self) -> Option<usize> {
        while self.propagation_head < self.trail.len() {
            let lit = self.trail[self.propagation_head];
            self.propagation_head += 1;
            let false_lit = !lit; // literals watching `false_lit` must be updated
            let mut watch_list = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            while i < watch_list.len() {
                let clause_index = watch_list[i];
                // Single-literal clauses watch their only literal; a wake-up on
                // its negation is a direct conflict or (re-)assertion.
                if self.clauses[clause_index].literals.len() == 1 {
                    let only = self.clauses[clause_index].literals[0];
                    match self.literal_value(only) {
                        VarValue::False => {
                            self.watches[false_lit.code()] = watch_list;
                            return Some(clause_index);
                        }
                        VarValue::Unassigned => {
                            self.stats.propagations += 1;
                            self.enqueue(only, Some(clause_index));
                        }
                        VarValue::True => {}
                    }
                    i += 1;
                    continue;
                }
                // Ensure the falsified literal sits in position 1.
                {
                    let clause = &mut self.clauses[clause_index];
                    if clause.literals[0] == false_lit {
                        clause.literals.swap(0, 1);
                    }
                }

                let first = self.clauses[clause_index].literals[0];
                if self.literal_value(first) == VarValue::True {
                    // Clause already satisfied; keep watching.
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut new_watch: Option<usize> = None;
                for k in 2..self.clauses[clause_index].literals.len() {
                    let cand = self.clauses[clause_index].literals[k];
                    if self.literal_value(cand) != VarValue::False {
                        new_watch = Some(k);
                        break;
                    }
                }
                match new_watch {
                    Some(k) => {
                        // Move the new watch into position 1 and transfer the watch.
                        self.clauses[clause_index].literals.swap(1, k);
                        let moved = self.clauses[clause_index].literals[1];
                        self.watches[moved.code()].push(clause_index);
                        watch_list.swap_remove(i);
                        // do not increment i: swapped element takes this slot
                    }
                    None => {
                        // Clause is unit or conflicting under the current assignment.
                        match self.literal_value(first) {
                            VarValue::False => {
                                self.watches[false_lit.code()] = watch_list;
                                return Some(clause_index);
                            }
                            VarValue::Unassigned => {
                                self.stats.propagations += 1;
                                self.enqueue(first, Some(clause_index));
                                i += 1;
                            }
                            VarValue::True => {
                                i += 1;
                            }
                        }
                    }
                }
            }
            self.watches[false_lit.code()] = watch_list;
        }
        None
    }

    fn bump_activity(&mut self, var: usize) {
        self.activity[var] += self.activity_increment;
        if self.activity[var] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.activity_increment *= 1e-100;
        }
    }

    fn decay_activities(&mut self) {
        self.activity_increment /= self.activity_decay;
    }

    /// First-UIP conflict analysis. Returns the learned clause (with the
    /// asserting literal in position 0) and the backjump level.
    fn analyze(&mut self, conflict: usize) -> (Vec<Literal>, usize) {
        let current_level = self.decision_level();
        let mut learned: Vec<Literal> = Vec::new();
        let mut seen = vec![false; self.values.len()];
        let mut counter = 0usize;
        let mut trail_index = self.trail.len();
        let mut resolve_literal: Option<Literal> = None;
        let mut reason_clause = conflict;

        loop {
            let reason_literals = self.clauses[reason_clause].literals.clone();
            for lit in reason_literals {
                if Some(lit) == resolve_literal {
                    continue;
                }
                let var = lit.variable().index();
                if seen[var] || self.levels[var] == 0 {
                    continue;
                }
                seen[var] = true;
                self.bump_activity(var);
                if self.levels[var] == current_level {
                    counter += 1;
                } else {
                    learned.push(lit);
                }
            }
            // Find the next literal on the trail (at the current level) to resolve on.
            loop {
                trail_index -= 1;
                let lit = self.trail[trail_index];
                if seen[lit.variable().index()] {
                    resolve_literal = Some(lit);
                    break;
                }
            }
            let lit = resolve_literal.expect("found a literal to resolve on");
            counter -= 1;
            seen[lit.variable().index()] = false;
            if counter == 0 {
                // lit is the first UIP; the learned clause asserts its negation.
                learned.insert(0, !lit);
                break;
            }
            reason_clause = self.reasons[lit.variable().index()]
                .expect("non-decision literal must have a reason");
            // When resolving on `lit`, skip it while scanning its reason clause.
            resolve_literal = Some(lit);
        }

        // Backjump level: the highest level among the non-asserting literals.
        let backjump = learned[1..]
            .iter()
            .map(|l| self.levels[l.variable().index()])
            .max()
            .unwrap_or(0);
        // Put a literal from the backjump level into watch position 1 so that
        // the learned clause wakes up correctly after backjumping.
        if learned.len() > 1 {
            let pos = learned[1..]
                .iter()
                .position(|l| self.levels[l.variable().index()] == backjump)
                .map(|p| p + 1)
                .unwrap_or(1);
            learned.swap(1, pos);
        }
        (learned, backjump)
    }

    fn backjump(&mut self, level: usize) {
        while self.decision_level() > level {
            let limit = self.trail_limits.pop().expect("level > 0");
            while self.trail.len() > limit {
                let lit = self.trail.pop().expect("trail non-empty");
                let var = lit.variable().index();
                self.values[var] = VarValue::Unassigned;
                self.reasons[var] = None;
            }
        }
        self.propagation_head = self.trail.len().min(self.propagation_head);
        self.propagation_head = self.trail.len();
    }

    fn pick_branch_variable(&self) -> Option<usize> {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v == VarValue::Unassigned)
            .max_by(|a, b| {
                self.activity[a.0]
                    .partial_cmp(&self.activity[b.0])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
    }

    fn reduce_learned_clauses(&mut self) {
        // Simple clause-database management: when too many learned clauses
        // accumulate, drop the longer half that is not currently a reason.
        let learned_indices: Vec<usize> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learned)
            .map(|(i, _)| i)
            .collect();
        if learned_indices.len() <= self.max_learned {
            return;
        }
        let reasons: std::collections::HashSet<usize> =
            self.reasons.iter().flatten().copied().collect();
        let mut by_len: Vec<usize> = learned_indices
            .into_iter()
            .filter(|i| !reasons.contains(i))
            .collect();
        by_len.sort_by_key(|&i| std::cmp::Reverse(self.clauses[i].literals.len()));
        let to_remove: std::collections::HashSet<usize> =
            by_len.into_iter().take(self.max_learned / 2).collect();
        if to_remove.is_empty() {
            return;
        }
        // Rebuild the clause database and watches without the removed clauses.
        let mut remap = vec![usize::MAX; self.clauses.len()];
        let mut new_clauses = Vec::with_capacity(self.clauses.len() - to_remove.len());
        for (i, clause) in self.clauses.drain(..).enumerate() {
            if to_remove.contains(&i) {
                continue;
            }
            remap[i] = new_clauses.len();
            new_clauses.push(clause);
        }
        self.clauses = new_clauses;
        for w in &mut self.watches {
            w.clear();
        }
        for (i, clause) in self.clauses.iter().enumerate() {
            self.watches[clause.literals[0].code()].push(i);
            if clause.literals.len() > 1 {
                self.watches[clause.literals[1].code()].push(i);
            }
        }
        for r in &mut self.reasons {
            if let Some(old) = *r {
                *r = if remap[old] == usize::MAX {
                    None
                } else {
                    Some(remap[old])
                };
            }
        }
    }

    fn extract_model(&self) -> Assignment {
        Assignment::from_bools(
            self.values
                .iter()
                .map(|v| matches!(v, VarValue::True))
                .collect(),
        )
    }
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...), 0-indexed.
fn luby(i: u64) -> u64 {
    fn luby_one_indexed(i: u64) -> u64 {
        let mut k = 1u64;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            1u64 << (k - 1)
        } else {
            luby_one_indexed(i - ((1u64 << (k - 1)) - 1))
        }
    }
    luby_one_indexed(i + 1)
}

impl Solver for CdclSolver {
    fn solve_limited(&mut self, formula: &CnfFormula, limits: &SearchLimits) -> SolveResult {
        self.init(formula);
        // Load original clauses; handle empty and unit clauses up front.
        for clause in formula.iter() {
            let mut lits: Vec<Literal> = clause.literals().to_vec();
            lits.sort();
            lits.dedup();
            // Skip tautologies.
            if lits.iter().any(|&l| lits.binary_search(&!l).is_ok()) {
                continue;
            }
            if lits.is_empty() {
                return SolveResult::Unsatisfiable;
            }
            if lits.len() == 1 {
                match self.literal_value(lits[0]) {
                    VarValue::False => return SolveResult::Unsatisfiable,
                    VarValue::True => continue,
                    VarValue::Unassigned => {
                        let idx = self.add_clause(lits.clone(), false).expect("non-empty");
                        self.enqueue(lits[0], Some(idx));
                        continue;
                    }
                }
            }
            self.add_clause(lits, false);
        }
        if self.propagate().is_some() {
            return SolveResult::Unsatisfiable;
        }

        let mut conflicts_since_restart = 0u64;
        let mut restart_count = 0u64;
        loop {
            // One deadline check per conflict/decision iteration: each
            // iteration performs a full propagation pass, so the check is
            // amortized noise yet bounds the reaction latency to one
            // propagation.
            if limits.expired() {
                return SolveResult::Unknown;
            }
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    return SolveResult::Unsatisfiable;
                }
                let (learned, backjump_level) = self.analyze(conflict);
                self.decay_activities();
                self.backjump(backjump_level);
                let asserting = learned[0];
                if learned.len() == 1 {
                    // Unit learned clause: assert at level 0.
                    let idx = self.add_clause(learned, true).expect("non-empty");
                    self.stats.learned_clauses += 1;
                    if self.literal_value(asserting) == VarValue::Unassigned {
                        self.enqueue(asserting, Some(idx));
                    } else if self.literal_value(asserting) == VarValue::False {
                        return SolveResult::Unsatisfiable;
                    }
                } else {
                    let idx = self.add_clause(learned, true).expect("non-empty");
                    self.stats.learned_clauses += 1;
                    self.enqueue(asserting, Some(idx));
                }
                self.reduce_learned_clauses();
            } else {
                // Restart check.
                let limit = self.restart_base * luby(restart_count);
                if conflicts_since_restart >= limit {
                    restart_count += 1;
                    conflicts_since_restart = 0;
                    self.stats.restarts += 1;
                    self.backjump(0);
                    continue;
                }
                // Branch.
                match self.pick_branch_variable() {
                    None => {
                        let model = self.extract_model();
                        debug_assert!(formula.evaluate(&model));
                        return SolveResult::Satisfiable(model);
                    }
                    Some(var) => {
                        self.stats.decisions += 1;
                        self.trail_limits.push(self.trail.len());
                        let phase = self.saved_phase[var];
                        self.enqueue(Literal::with_phase(Variable::new(var), phase), None);
                    }
                }
            }
        }
    }

    fn stats(&self) -> SolverStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "cdcl"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceSolver;
    use cnf::cnf_formula;
    use cnf::generators::{self, RandomKSatConfig};

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..expected.len() as u64).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn solves_paper_instances() {
        let mut solver = CdclSolver::new();
        assert!(solver.solve(&generators::example6_sat()).is_sat());
        assert!(solver.solve(&generators::example7_unsat()).is_unsat());
        assert!(solver.solve(&generators::section4_sat_instance()).is_sat());
        assert!(solver
            .solve(&generators::section4_unsat_instance())
            .is_unsat());
    }

    #[test]
    fn model_validity_on_structured_instances() {
        let instances = [
            generators::parity_chain(6, true),
            generators::graph_coloring(&generators::cycle_graph(7), 3),
            generators::pigeonhole(3, 3),
            generators::buggy_adder_miter(2, 0),
        ];
        for f in instances {
            let mut solver = CdclSolver::new();
            let result = solver.solve(&f);
            let model = result.model().expect("instances are satisfiable");
            assert!(f.evaluate(model));
        }
    }

    #[test]
    fn unsat_structured_instances() {
        let instances = [
            generators::pigeonhole(4, 3),
            generators::graph_coloring(&generators::cycle_graph(5), 2),
            generators::adder_equivalence_miter(2),
        ];
        for f in instances {
            let mut solver = CdclSolver::new();
            assert!(solver.solve(&f).is_unsat());
        }
    }

    #[test]
    fn agrees_with_brute_force_on_random_3sat() {
        for seed in 0..60 {
            let cfg = RandomKSatConfig::new(10, 43, 3).with_seed(seed);
            let f = generators::random_ksat(&cfg).unwrap();
            let expected = BruteForceSolver::new().solve(&f).is_sat();
            let mut solver = CdclSolver::new();
            let got = solver.solve(&f);
            assert_eq!(got.is_sat(), expected, "seed {seed}");
            if let Some(m) = got.model() {
                assert!(f.evaluate(m), "seed {seed}");
            }
        }
    }

    #[test]
    fn agrees_with_brute_force_on_wide_clauses() {
        for seed in 0..20 {
            let cfg = RandomKSatConfig::new(9, 25, 4).with_seed(seed + 1000);
            let f = generators::random_ksat(&cfg).unwrap();
            let expected = BruteForceSolver::new().solve(&f).is_sat();
            let mut solver = CdclSolver::new().with_restart_base(10);
            assert_eq!(solver.solve(&f).is_sat(), expected, "seed {seed}");
        }
    }

    #[test]
    fn duplicate_and_tautological_clauses_are_handled() {
        let f = cnf_formula![[1, 1, 2], [1, -1], [-2, -2], [-1, 2]];
        let expected = BruteForceSolver::new().solve(&f).is_sat();
        assert_eq!(CdclSolver::new().solve(&f).is_sat(), expected);
    }

    #[test]
    fn contradictory_units_detected() {
        assert!(CdclSolver::new().solve(&cnf_formula![[3], [-3]]).is_unsat());
    }

    #[test]
    fn empty_formula_and_empty_clause() {
        assert!(CdclSolver::new().solve(&cnf::CnfFormula::new(4)).is_sat());
        let mut f = cnf::CnfFormula::new(1);
        f.push_clause(cnf::Clause::new());
        assert!(CdclSolver::new().solve(&f).is_unsat());
    }

    #[test]
    fn expired_deadline_interrupts_with_unknown() {
        let f = generators::pigeonhole(7, 6);
        let mut solver = CdclSolver::new();
        let limits = SearchLimits::deadline_in(std::time::Duration::ZERO);
        assert_eq!(solver.solve_limited(&f, &limits), SolveResult::Unknown);
        assert!(solver.solve(&generators::example6_sat()).is_sat());
    }

    #[test]
    fn restarts_happen_on_hard_unsat_instances() {
        let f = generators::pigeonhole(5, 4);
        let mut solver = CdclSolver::new().with_restart_base(5);
        assert!(solver.solve(&f).is_unsat());
        assert!(solver.stats().restarts > 0);
        assert!(solver.stats().learned_clauses > 0);
        assert_eq!(solver.name(), "cdcl");
    }
}
