//! Exhaustive-enumeration solver (test oracle).

use crate::limits::SearchLimits;
use crate::solver::{SolveResult, Solver, SolverStats};
use cnf::bits::WORD_BITS;
use cnf::{Assignment, AssignmentBlock, CnfFormula, EvalMode, PackedFormula};

/// A brute-force solver that enumerates all `2^n` assignments.
///
/// It is exponential by construction and intended as a trusted oracle for
/// tests and for small NBL-SAT validation instances, mirroring how the paper
/// validates its engine on small formulas.
///
/// ```
/// use cnf::cnf_formula;
/// use sat_solvers::{BruteForceSolver, Solver};
///
/// let mut solver = BruteForceSolver::new();
/// assert!(solver.solve(&cnf_formula![[1, 2], [-1, -2]]).is_sat());
/// assert!(solver.solve(&cnf_formula![[1], [-1]]).is_unsat());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BruteForceSolver {
    stats: SolverStats,
    /// Refuse instances with more variables than this (guard against
    /// accidental exponential blow-up). Default: 24.
    max_vars: usize,
    eval_mode: EvalMode,
}

impl BruteForceSolver {
    /// Creates a brute-force solver with the default 24-variable limit.
    pub fn new() -> Self {
        BruteForceSolver {
            stats: SolverStats::default(),
            max_vars: 24,
            eval_mode: EvalMode::default(),
        }
    }

    /// Overrides the variable limit.
    pub fn with_max_vars(mut self, max_vars: usize) -> Self {
        self.max_vars = max_vars;
        self
    }

    /// Selects the evaluation core (packed enumerates 64 minterms per word
    /// op; scalar is the one-at-a-time reference). Results are identical.
    pub fn with_eval_mode(mut self, eval_mode: EvalMode) -> Self {
        self.eval_mode = eval_mode;
        self
    }

    /// Scalar enumeration: one minterm at a time, in index order.
    fn solve_scalar(&mut self, formula: &CnfFormula, limits: &SearchLimits) -> SolveResult {
        for assignment in Assignment::enumerate_all(formula.num_vars()) {
            if limits.expired() {
                return SolveResult::Unknown;
            }
            self.stats.assignments_tried += 1;
            if formula.evaluate(&assignment) {
                return SolveResult::Satisfiable(assignment);
            }
        }
        SolveResult::Unsatisfiable
    }

    /// Packed enumeration: 64 minterms per block, still reporting the first
    /// model in minterm order and the same `assignments_tried` totals.
    fn solve_packed(&mut self, formula: &CnfFormula, limits: &SearchLimits) -> SolveResult {
        let packed = PackedFormula::new(formula);
        let n = formula.num_vars();
        let total = 1u64 << n;
        let mut base = 0u64;
        while base < total {
            if limits.expired() {
                return SolveResult::Unknown;
            }
            let lanes = WORD_BITS.min((total - base) as usize);
            let block = AssignmentBlock::minterm_range(n, base, lanes);
            let sat = packed.eval_block(&block);
            if let Some(lane) = sat.lowest_set_bit() {
                self.stats.assignments_tried += lane as u64 + 1;
                let model = Assignment::from_index(n, base + lane as u64);
                debug_assert!(formula.evaluate(&model));
                return SolveResult::Satisfiable(model);
            }
            self.stats.assignments_tried += lanes as u64;
            base += lanes as u64;
        }
        SolveResult::Unsatisfiable
    }
}

impl Solver for BruteForceSolver {
    /// # Panics
    ///
    /// Panics if the formula has more variables than the configured limit.
    fn solve_limited(&mut self, formula: &CnfFormula, limits: &SearchLimits) -> SolveResult {
        assert!(
            formula.num_vars() <= self.max_vars,
            "brute force limited to {} variables (formula has {})",
            self.max_vars,
            formula.num_vars()
        );
        self.stats = SolverStats::default();
        match self.eval_mode {
            EvalMode::Scalar => self.solve_scalar(formula, limits),
            EvalMode::Packed => self.solve_packed(formula, limits),
        }
    }

    fn stats(&self) -> SolverStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "brute-force"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::cnf_formula;
    use cnf::generators;

    #[test]
    fn solves_paper_examples() {
        let mut solver = BruteForceSolver::new();
        assert!(solver.solve(&generators::example6_sat()).is_sat());
        assert!(solver.solve(&generators::example7_unsat()).is_unsat());
        assert!(solver.solve(&generators::section4_sat_instance()).is_sat());
        assert!(solver
            .solve(&generators::section4_unsat_instance())
            .is_unsat());
    }

    #[test]
    fn returned_model_is_valid() {
        let f = cnf_formula![[1, -2, 3], [-1, 2], [2, -3]];
        let mut solver = BruteForceSolver::new();
        let result = solver.solve(&f);
        let model = result.model().expect("satisfiable");
        assert!(f.evaluate(model));
        assert!(solver.stats().assignments_tried >= 1);
        assert_eq!(solver.name(), "brute-force");
    }

    #[test]
    fn empty_formula_is_sat() {
        let f = cnf::CnfFormula::new(3);
        assert!(BruteForceSolver::new().solve(&f).is_sat());
    }

    #[test]
    #[should_panic]
    fn too_many_variables_panics() {
        let f = cnf::CnfFormula::new(64);
        let _ = BruteForceSolver::new().solve(&f);
    }

    #[test]
    fn max_vars_override() {
        let f = cnf::CnfFormula::new(26);
        // 26 unconstrained variables is fine with a raised limit.
        assert!(BruteForceSolver::new().with_max_vars(26).solve(&f).is_sat());
    }

    #[test]
    fn packed_and_scalar_enumeration_agree() {
        use cnf::generators::RandomKSatConfig;
        let mut formulas = vec![
            generators::example6_sat(),
            generators::example7_unsat(),
            generators::section4_sat_instance(),
            generators::section4_unsat_instance(),
            cnf::CnfFormula::new(0),
            // 7 vars spans two blocks of 64 minterms.
            generators::random_ksat(&RandomKSatConfig::new(7, 30, 3).with_seed(4)).unwrap(),
        ];
        let mut with_empty = cnf::CnfFormula::new(2);
        with_empty.push_clause(cnf::Clause::new());
        formulas.push(with_empty);
        for f in formulas {
            let mut scalar = BruteForceSolver::new().with_eval_mode(EvalMode::Scalar);
            let mut packed = BruteForceSolver::new().with_eval_mode(EvalMode::Packed);
            assert_eq!(scalar.solve(&f), packed.solve(&f), "formula {f}");
            assert_eq!(scalar.stats(), packed.stats(), "formula {f}");
        }
    }
}
