//! Baseline SAT solvers.
//!
//! The NBL-SAT paper positions its noise-based engine against the classical
//! SAT-solving landscape: complete search procedures (GRASP, Chaff, BerkMin,
//! MiniSat — i.e. DPLL and CDCL) and incomplete stochastic local search
//! (WalkSAT, GSAT, survey propagation). This crate implements representative
//! members of each family so the workspace can
//!
//! * cross-validate the NBL engines against exact oracles,
//! * provide the CPU-side solver of the hybrid CPU + NBL-coprocessor flow
//!   (paper §V), and
//! * serve as comparison baselines in the benchmark harness.
//!
//! Complete solvers: [`BruteForceSolver`], [`DpllSolver`], [`CdclSolver`] and
//! the polynomial special-case [`TwoSatSolver`]. Incomplete local search:
//! [`WalkSat`], [`Gsat`], [`Schoening`]. [`Portfolio`] dispatches across a
//! member list sequentially and [`ParallelPortfolio`] races the same member
//! list across OS threads — both stay complete as long as one member is. For
//! unsatisfiable instances, [`MusExtractor`] shrinks the clause set to a
//! minimal unsatisfiable core (the companion output of the hardware SAT
//! engines the paper cites as reference \[27\]).
//!
//! Solvers implement the common [`Solver`] trait and report search statistics
//! through [`SolverStats`]. Every solver also honours [`SearchLimits`] via
//! [`Solver::solve_limited`]: an expired wall-clock deadline — or a raised
//! cancellation token ([`SearchLimits::with_cancel`]) — interrupts the search
//! loop and yields [`SolveResult::Unknown`] instead of blocking, which is how
//! the unified solving API in `nbl-sat-core` enforces its resource budgets on
//! the classical backends and how the parallel portfolio stops its losing
//! members.
//!
//! # Example
//!
//! ```
//! use cnf::cnf_formula;
//! use sat_solvers::{CdclSolver, Solver, SolveResult};
//!
//! let formula = cnf_formula![[1, 2], [-1, -2], [1, -2]];
//! let mut solver = CdclSolver::new();
//! match solver.solve(&formula) {
//!     SolveResult::Satisfiable(model) => assert!(formula.evaluate(&model)),
//!     SolveResult::Unsatisfiable => unreachable!("this instance is satisfiable"),
//!     SolveResult::Unknown => unreachable!("CDCL is complete"),
//! }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod brute;
pub mod cdcl;
pub mod dpll;
pub mod gsat;
pub mod limits;
pub mod mus;
pub mod parallel;
pub mod portfolio;
pub mod schoening;
pub mod score;
pub mod share;
pub mod solver;
pub mod two_sat;
pub mod walksat;

pub use brute::BruteForceSolver;
pub use cdcl::{CdclSolver, IncrementalResult};
pub use dpll::DpllSolver;
pub use gsat::{Gsat, GsatConfig};
pub use limits::SearchLimits;
pub use mus::{MusExtractor, MusOutcome, MusStats};
pub use parallel::ParallelPortfolio;
pub use portfolio::Portfolio;
pub use schoening::{Schoening, SchoeningConfig};
pub use score::FlipScorer;
pub use share::{PoolStats, ShareHandle, SharedClausePool, SharingConfig};
pub use solver::{SolveResult, Solver, SolverStats};
pub use two_sat::TwoSatSolver;
pub use walksat::{WalkSat, WalkSatConfig};
