//! Differential proptest suite: the packed evaluation cores against the
//! scalar oracles, on random formulas × random assignment batches — including
//! non-multiple-of-64 widths, empty clauses, tautological clauses, and
//! assignments shorter or longer than the formula.

use cnf::bits::WORD_BITS;
use cnf::{Assignment, AssignmentBlock, BitVector, CnfFormula, Literal, PackedFormula, Variable};
use proptest::prelude::*;

/// Strategy: a random CNF formula over `1..=max_vars` variables with
/// `0..=max_clauses` clauses of 0–4 literals each. Empty clauses and
/// repeated/tautological literal combinations arise naturally.
fn arb_formula(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = CnfFormula> {
    (1..=max_vars).prop_flat_map(move |n| {
        let clause = proptest::collection::vec(
            (0..n, proptest::bool::ANY).prop_map(|(v, phase)| (v, phase)),
            0..=4,
        );
        proptest::collection::vec(clause, 0..=max_clauses).prop_map(move |clauses| {
            let mut formula = CnfFormula::new(n);
            for lits in clauses {
                formula.add_clause(
                    lits.into_iter()
                        .map(|(v, phase)| Literal::with_phase(Variable::new(v), phase)),
                );
            }
            formula
        })
    })
}

/// Strategy: a batch of up to 64 assignments whose widths range from empty to
/// wider than the formula (shorter widths exercise the totality rule, wider
/// ones exercise mask clipping).
fn arb_batch(max_width: usize) -> impl Strategy<Value = Vec<Assignment>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::bool::ANY, 0..=max_width)
            .prop_map(Assignment::from_bools),
        1..=WORD_BITS,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Block evaluation agrees with scalar clause/formula evaluation on
    /// every lane, including the tail word of a partially filled block.
    #[test]
    fn block_eval_matches_scalar(
        (formula, batch) in arb_formula(70, 10)
            .prop_flat_map(|f| {
                let width = f.num_vars() + 3;
                (Just(f), arb_batch(width))
            })
    ) {
        let packed = PackedFormula::new(&formula);
        let block = AssignmentBlock::from_assignments(&batch);
        let sat = packed.eval_block(&block);
        for (lane, a) in batch.iter().enumerate() {
            prop_assert_eq!(sat.bit(lane), formula.evaluate(a));
            for (c, clause) in formula.iter().enumerate() {
                prop_assert_eq!(packed.clause_block(c, &block).bit(lane), clause.evaluate(a));
            }
        }
        // Lanes past the batch stay zero (tail convention).
        for lane in batch.len()..WORD_BITS {
            prop_assert!(!sat.bit(lane));
        }
    }

    /// The single-assignment bit-vector evaluator agrees with the scalar
    /// oracle clause by clause, for widths independent of the formula's.
    #[test]
    fn bitvector_eval_matches_scalar(
        (formula, batch) in arb_formula(70, 10)
            .prop_flat_map(|f| {
                let width = f.num_vars() + 3;
                (Just(f), arb_batch(width))
            })
    ) {
        let packed = PackedFormula::new(&formula);
        for a in &batch {
            let bits = BitVector::from(a);
            prop_assert_eq!(packed.satisfied(&bits), formula.evaluate(a));
            prop_assert_eq!(
                packed.count_satisfied(&bits),
                formula.count_satisfied_clauses(a)
            );
            prop_assert_eq!(
                packed.first_unsatisfied(&bits),
                formula.iter().position(|c| !c.evaluate(a))
            );
            for (c, clause) in formula.iter().enumerate() {
                prop_assert_eq!(packed.clause_satisfied(c, &bits), clause.evaluate(a));
            }
        }
    }

    /// Assignment ↔ BitVector conversions round-trip and preserve evaluation.
    #[test]
    fn bitvector_roundtrip_preserves_evaluation(
        values in proptest::collection::vec(proptest::bool::ANY, 0..=130)
    ) {
        let a = Assignment::from_bools(values);
        let bits = BitVector::from(&a);
        prop_assert_eq!(bits.len(), a.num_vars());
        prop_assert_eq!(&bits.to_assignment(), &a);
        let bytes = bits.to_bytes();
        prop_assert_eq!(BitVector::from_bytes(&bytes, bits.len()), bits);
    }

    /// Broadcast and explicit flips agree with manual scalar flipping.
    #[test]
    fn flip_block_lanes_match_manual_flips(
        (values, flip_indices) in proptest::collection::vec(proptest::bool::ANY, 1..=70)
            .prop_flat_map(|values| {
                let n = values.len();
                (Just(values), proptest::collection::vec(0..n, 1..=WORD_BITS))
            })
    ) {
        let base = Assignment::from_bools(values);
        let flips: Vec<Variable> = flip_indices.iter().map(|&i| Variable::new(i)).collect();
        let block = AssignmentBlock::with_flips(&base, &flips);
        for (lane, &var) in flips.iter().enumerate() {
            let mut expected = base.clone();
            expected.set(var, !expected.value(var));
            prop_assert_eq!(block.lane(lane), expected);
        }
    }
}
