//! Property tests for the canonical preprocessing layer: `normalize` is
//! deterministic and idempotent, `preprocess` is verdict-preserving with a
//! sound model lift, and isomorphic formulas (variable renaming plus clause
//! and literal permutations) share one canonical form and fingerprint.

use cnf::{
    canonicalize, fingerprint, normalize, preprocess, Assignment, Clause, CnfFormula,
    PreprocessOutcome, Variable,
};
use proptest::prelude::*;

/// Small random formulas: up to 6 variables, up to 10 clauses of width ≤ 4.
/// Duplicate literals, duplicate clauses and tautologies are all reachable.
fn arb_formula() -> impl Strategy<Value = CnfFormula> {
    proptest::collection::vec(
        proptest::collection::vec((1u64..=6, proptest::bool::ANY), 1..5),
        0..10,
    )
    .prop_map(|clauses| {
        let dimacs: Vec<Vec<i64>> = clauses
            .iter()
            .map(|clause| {
                clause
                    .iter()
                    .map(|&(var, neg)| if neg { -(var as i64) } else { var as i64 })
                    .collect()
            })
            .collect();
        CnfFormula::from_dimacs_clauses(&dimacs).expect("literals are non-zero and in range")
    })
}

/// Applies `perm` (old index → new index) to the variables of `formula`,
/// preserving polarities, and permutes clause order by rotating by `rot`.
fn permute(formula: &CnfFormula, perm: &[usize], rot: usize) -> CnfFormula {
    let mut clauses: Vec<Clause> = formula
        .iter()
        .map(|clause| {
            // Reverse the literal order too: literal order must not matter.
            clause
                .iter()
                .rev()
                .map(|lit| Variable::new(perm[lit.variable().index()]).literal(lit.phase()))
                .collect()
        })
        .collect();
    if !clauses.is_empty() {
        let shift = rot % clauses.len();
        clauses.rotate_left(shift);
    }
    CnfFormula::from_clauses(formula.num_vars(), clauses)
}

/// A permutation of `0..n` derived deterministically from `seed`.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    let mut state = seed | 1;
    for i in (1..n).rev() {
        // xorshift64* — deterministic, no external dependency.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        perm.swap(i, (state % (i as u64 + 1)) as usize);
    }
    perm
}

fn is_satisfiable(formula: &CnfFormula) -> bool {
    Assignment::enumerate_all(formula.num_vars()).any(|a| formula.evaluate(&a))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// normalize is idempotent and preserves the model set pointwise.
    #[test]
    fn normalize_is_idempotent_and_model_preserving(formula in arb_formula()) {
        let once = normalize(&formula);
        let twice = normalize(&once);
        prop_assert_eq!(&once, &twice);
        for assignment in Assignment::enumerate_all(formula.num_vars()) {
            prop_assert_eq!(formula.evaluate(&assignment), once.evaluate(&assignment));
        }
    }

    /// preprocess preserves the verdict, and every model of the residual
    /// lifts to a model of the original formula.
    #[test]
    fn preprocess_preserves_verdicts_and_lifts_models(formula in arb_formula()) {
        let sat = is_satisfiable(&formula);
        match preprocess(&formula).outcome {
            PreprocessOutcome::Satisfiable(model) => {
                prop_assert!(sat);
                prop_assert!(formula.evaluate(&model));
            }
            PreprocessOutcome::Unsatisfiable => prop_assert!(!sat),
            PreprocessOutcome::Reduced { formula: reduced, trace } => {
                prop_assert_eq!(sat, is_satisfiable(&reduced));
                for candidate in Assignment::enumerate_all(reduced.num_vars()) {
                    if reduced.evaluate(&candidate) {
                        prop_assert!(formula.evaluate(&trace.lift_model(&candidate)));
                    }
                }
            }
        }
    }

    /// Two formulas differing only by a variable renaming and clause/literal
    /// permutations share one canonical reduced formula and fingerprint.
    #[test]
    fn isomorphic_formulas_share_the_canonical_key(
        (formula, seed, rot) in (arb_formula(), 0u64..u64::MAX, 0usize..8)
    ) {
        let perm = permutation(formula.num_vars(), seed);
        let renamed = permute(&formula, &perm, rot);
        let a = preprocess(&formula);
        let b = preprocess(&renamed);
        match (a.outcome, b.outcome) {
            (
                PreprocessOutcome::Reduced { formula: fa, .. },
                PreprocessOutcome::Reduced { formula: fb, .. },
            ) => {
                prop_assert_eq!(&fa, &fb);
                prop_assert_eq!(fingerprint(&fa), fingerprint(&fb));
            }
            (PreprocessOutcome::Satisfiable(_), PreprocessOutcome::Satisfiable(_)) => {}
            (PreprocessOutcome::Unsatisfiable, PreprocessOutcome::Unsatisfiable) => {}
            other => prop_assert!(false, "outcomes diverged: {:?}", other),
        }
    }

    /// canonicalize alone (no reduction) is invariant under renaming.
    #[test]
    fn canonicalize_is_renaming_invariant(
        (formula, seed) in (arb_formula(), 0u64..u64::MAX)
    ) {
        let normal = normalize(&formula);
        let perm = permutation(normal.num_vars(), seed);
        let renamed = normalize(&permute(&normal, &perm, 0));
        let (ca, _) = canonicalize(&normal);
        let (cb, _) = canonicalize(&renamed);
        prop_assert_eq!(&ca, &cb);
        prop_assert_eq!(fingerprint(&ca), fingerprint(&cb));
    }
}
