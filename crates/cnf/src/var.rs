//! Variables and literals (Definition 1 of the paper).

use crate::error::{CnfError, Result};
use std::fmt;

/// A Boolean variable, identified by a 0-based index.
///
/// Displayed as `x1`, `x2`, ... (1-based) to match the paper's notation.
///
/// ```
/// use cnf::Variable;
/// let v = Variable::new(0);
/// assert_eq!(v.index(), 0);
/// assert_eq!(v.to_string(), "x1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Variable(u32);

impl Variable {
    /// Creates a variable from its 0-based index.
    pub fn new(index: usize) -> Self {
        Variable(index as u32)
    }

    /// Returns the 0-based index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the positive literal of this variable.
    pub fn positive(self) -> Literal {
        Literal::positive(self)
    }

    /// Returns the negative literal of this variable.
    pub fn negative(self) -> Literal {
        Literal::negative(self)
    }

    /// Returns the literal of this variable with the given phase
    /// (`true` → positive literal).
    pub fn literal(self, phase: bool) -> Literal {
        Literal::with_phase(self, phase)
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0 + 1)
    }
}

impl From<usize> for Variable {
    fn from(index: usize) -> Self {
        Variable::new(index)
    }
}

/// A literal: a variable or its negation (Definition 1 of the paper).
///
/// Internally encoded as `index << 1 | negated`, which gives literals a dense
/// 0-based code usable as an array index (see [`Literal::code`]).
///
/// ```
/// use cnf::{Literal, Variable};
/// let x3 = Variable::new(2);
/// let lit = Literal::negative(x3);
/// assert!(lit.is_negative());
/// assert_eq!(lit.variable(), x3);
/// assert_eq!(lit.to_string(), "¬x3");
/// assert_eq!((!lit).to_string(), "x3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Literal(u32);

impl Literal {
    /// Creates the positive literal of `var`.
    pub fn positive(var: Variable) -> Self {
        Literal(var.0 << 1)
    }

    /// Creates the negative literal of `var`.
    pub fn negative(var: Variable) -> Self {
        Literal((var.0 << 1) | 1)
    }

    /// Creates the literal of `var` with the given phase (`true` → positive).
    pub fn with_phase(var: Variable, phase: bool) -> Self {
        if phase {
            Self::positive(var)
        } else {
            Self::negative(var)
        }
    }

    /// Creates a literal from a DIMACS-style signed integer (1-based, non-zero).
    ///
    /// # Errors
    ///
    /// Returns [`CnfError::ZeroLiteral`] if `value == 0`.
    pub fn from_dimacs(value: i64) -> Result<Self> {
        if value == 0 {
            return Err(CnfError::ZeroLiteral);
        }
        let var = Variable::new((value.unsigned_abs() - 1) as usize);
        Ok(if value > 0 {
            Self::positive(var)
        } else {
            Self::negative(var)
        })
    }

    /// Returns the DIMACS-style signed integer for this literal.
    pub fn to_dimacs(self) -> i64 {
        let v = (self.variable().index() + 1) as i64;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }

    /// Returns the variable underlying this literal.
    pub fn variable(self) -> Variable {
        Variable(self.0 >> 1)
    }

    /// Returns `true` if this is a positive (non-negated) literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Returns `true` if this is a negative (negated) literal.
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns the phase of this literal: `true` for positive, `false` for negative.
    ///
    /// A literal is satisfied by an assignment that maps its variable to its phase.
    pub fn phase(self) -> bool {
        self.is_positive()
    }

    /// Returns a dense 0-based code (`2*var` for positive, `2*var + 1` for
    /// negative) that can be used as an array index.
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from a dense code produced by [`Literal::code`].
    pub fn from_code(code: usize) -> Self {
        Literal(code as u32)
    }

    /// Evaluates the literal under a truth value for its variable.
    pub fn evaluate(self, var_value: bool) -> bool {
        var_value == self.is_positive()
    }
}

impl std::ops::Not for Literal {
    type Output = Literal;

    fn not(self) -> Literal {
        Literal(self.0 ^ 1)
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "¬{}", self.variable())
        } else {
            write!(f, "{}", self.variable())
        }
    }
}

impl From<Variable> for Literal {
    fn from(var: Variable) -> Self {
        Literal::positive(var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_roundtrip_and_display() {
        let v = Variable::new(4);
        assert_eq!(v.index(), 4);
        assert_eq!(v.to_string(), "x5");
        assert_eq!(Variable::from(4usize), v);
    }

    #[test]
    fn literal_polarity_and_negation() {
        let v = Variable::new(2);
        let pos = Literal::positive(v);
        let neg = Literal::negative(v);
        assert!(pos.is_positive());
        assert!(neg.is_negative());
        assert_eq!(!pos, neg);
        assert_eq!(!neg, pos);
        assert_eq!(pos.variable(), v);
        assert_eq!(neg.variable(), v);
        assert_eq!(Literal::with_phase(v, true), pos);
        assert_eq!(Literal::with_phase(v, false), neg);
        assert_eq!(v.positive(), pos);
        assert_eq!(v.negative(), neg);
        assert_eq!(v.literal(false), neg);
    }

    #[test]
    fn literal_dimacs_roundtrip() {
        for value in [1i64, -1, 5, -5, 100, -100] {
            let lit = Literal::from_dimacs(value).unwrap();
            assert_eq!(lit.to_dimacs(), value);
        }
        assert_eq!(Literal::from_dimacs(0), Err(CnfError::ZeroLiteral));
    }

    #[test]
    fn literal_code_roundtrip() {
        for value in [1i64, -1, 7, -9] {
            let lit = Literal::from_dimacs(value).unwrap();
            assert_eq!(Literal::from_code(lit.code()), lit);
        }
    }

    #[test]
    fn literal_evaluation() {
        let v = Variable::new(0);
        assert!(Literal::positive(v).evaluate(true));
        assert!(!Literal::positive(v).evaluate(false));
        assert!(Literal::negative(v).evaluate(false));
        assert!(!Literal::negative(v).evaluate(true));
    }

    #[test]
    fn literal_display_matches_paper_notation() {
        let lit = Literal::from_dimacs(-3).unwrap();
        assert_eq!(lit.to_string(), "¬x3");
        assert_eq!((!lit).to_string(), "x3");
    }

    #[test]
    fn ordering_groups_literals_of_same_variable() {
        let a = Literal::from_dimacs(1).unwrap();
        let b = Literal::from_dimacs(-1).unwrap();
        let c = Literal::from_dimacs(2).unwrap();
        assert!(a < b);
        assert!(b < c);
    }
}
