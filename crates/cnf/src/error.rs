//! Error types for the CNF substrate.

use std::fmt;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CnfError>;

/// Errors produced while constructing, parsing or manipulating CNF formulas.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CnfError {
    /// A literal referenced a variable index outside the formula's range.
    VariableOutOfRange {
        /// The offending variable index (0-based).
        variable: usize,
        /// Number of variables declared by the formula.
        num_vars: usize,
    },
    /// A DIMACS literal of value zero was used where a literal was expected.
    ZeroLiteral,
    /// The DIMACS input could not be parsed.
    ParseDimacs {
        /// Line number (1-based) at which parsing failed.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The DIMACS header declared fewer clauses or variables than the body used.
    HeaderMismatch {
        /// What the header declared.
        declared: usize,
        /// What the body actually contained.
        found: usize,
        /// Which quantity mismatched ("variables" or "clauses").
        what: &'static str,
    },
    /// An assignment had the wrong number of variables for the formula.
    AssignmentSizeMismatch {
        /// Number of variables in the assignment.
        assignment_vars: usize,
        /// Number of variables in the formula.
        formula_vars: usize,
    },
    /// A generator was asked for an impossible configuration.
    InvalidGeneratorConfig(String),
    /// An empty clause was encountered where it is not allowed.
    EmptyClause,
}

impl fmt::Display for CnfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CnfError::VariableOutOfRange { variable, num_vars } => write!(
                f,
                "variable index {variable} out of range for formula with {num_vars} variables"
            ),
            CnfError::ZeroLiteral => write!(f, "literal value 0 is not a valid DIMACS literal"),
            CnfError::ParseDimacs { line, message } => {
                write!(f, "failed to parse DIMACS at line {line}: {message}")
            }
            CnfError::HeaderMismatch {
                declared,
                found,
                what,
            } => write!(
                f,
                "DIMACS header declared {declared} {what} but body contains {found}"
            ),
            CnfError::AssignmentSizeMismatch {
                assignment_vars,
                formula_vars,
            } => write!(
                f,
                "assignment covers {assignment_vars} variables but formula has {formula_vars}"
            ),
            CnfError::InvalidGeneratorConfig(msg) => {
                write!(f, "invalid generator configuration: {msg}")
            }
            CnfError::EmptyClause => write!(f, "empty clause is not allowed here"),
        }
    }
}

impl std::error::Error for CnfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = [
            CnfError::VariableOutOfRange {
                variable: 7,
                num_vars: 3,
            },
            CnfError::ZeroLiteral,
            CnfError::ParseDimacs {
                line: 3,
                message: "bad token".into(),
            },
            CnfError::HeaderMismatch {
                declared: 2,
                found: 3,
                what: "clauses",
            },
            CnfError::AssignmentSizeMismatch {
                assignment_vars: 2,
                formula_vars: 4,
            },
            CnfError::InvalidGeneratorConfig("k > n".into()),
            CnfError::EmptyClause,
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("DIMACS"));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CnfError>();
    }
}
