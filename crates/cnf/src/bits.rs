//! Bit-packed storage: 64 Boolean values per machine word.
//!
//! This module is the raw-speed substrate behind the packed evaluation cores
//! in [`crate::packed`]: a [`Word`] is a transparent wrapper over `u64`
//! carrying 64 Boolean lanes, a [`BitVector`] is a length-tagged sequence of
//! words, and a [`BitMatrix`] is a dense rectangular grid of bits stored
//! row-major in words.
//!
//! # Representation and the tail-word convention
//!
//! Bit `i` of a [`BitVector`] lives in word `i / 64` at bit position
//! `i % 64` (little-endian within the word: position 0 is the least
//! significant bit). The last word of a vector whose length is not a
//! multiple of 64 is the *tail word*; every bit of the tail word at or past
//! the vector's length is kept at **zero**. All operations preserve this
//! invariant — [`BitVector::complement`] in particular re-masks the tail —
//! so whole-word operations (popcounts, equality, reductions) never see
//! garbage lanes. Reads past the end are total: [`BitVector::word`] returns
//! [`Word::ZERO`] for any out-of-range word index, which encodes the
//! workspace-wide "missing variable reads false" convention of
//! [`crate::Assignment`] evaluation.

use crate::assignment::Assignment;
use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Not};

/// Number of bits per [`Word`].
pub const WORD_BITS: usize = 64;

/// One machine word of 64 Boolean lanes.
///
/// `#[repr(transparent)]` guarantees the wrapper has exactly the layout of a
/// `u64`, so slices of words can be handed to word-at-a-time kernels with no
/// conversion cost.
///
/// ```
/// use cnf::bits::Word;
/// let w = Word(0b1011);
/// assert_eq!(w.popcount(), 3);
/// assert_eq!((w & Word(0b0110)).0, 0b0010);
/// assert_eq!((!Word::ZERO), Word::ONES);
/// ```
#[repr(transparent)]
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Word(pub u64);

impl Word {
    /// The all-zeros word.
    pub const ZERO: Word = Word(0);
    /// The all-ones word.
    pub const ONES: Word = Word(u64::MAX);

    /// A word with ones in the low `bits` lanes and zeros above — the mask
    /// that enforces the tail-word convention for a vector of `bits % 64`
    /// spare bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 64`.
    pub fn tail_mask(bits: usize) -> Word {
        assert!(bits <= WORD_BITS, "a word has only {WORD_BITS} bits");
        if bits == WORD_BITS {
            Word::ONES
        } else {
            Word((1u64 << bits) - 1)
        }
    }

    /// Number of one bits (the word-level popcount).
    pub fn popcount(self) -> u32 {
        self.0.count_ones()
    }

    /// Returns `true` if no bit is set.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Index of the lowest set bit, or `None` for [`Word::ZERO`].
    pub fn lowest_set_bit(self) -> Option<u32> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros())
        }
    }

    /// Reads lane `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 64`.
    pub fn bit(self, bit: usize) -> bool {
        assert!(bit < WORD_BITS, "a word has only {WORD_BITS} bits");
        (self.0 >> bit) & 1 == 1
    }

    /// Returns a copy with lane `bit` set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 64`.
    pub fn with_bit(self, bit: usize, value: bool) -> Word {
        assert!(bit < WORD_BITS, "a word has only {WORD_BITS} bits");
        if value {
            Word(self.0 | (1u64 << bit))
        } else {
            Word(self.0 & !(1u64 << bit))
        }
    }

    /// Iterates over the indices of the set bits, lowest first.
    pub fn iter_set_bits(self) -> impl Iterator<Item = usize> {
        let mut rest = self.0;
        std::iter::from_fn(move || {
            if rest == 0 {
                None
            } else {
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(bit)
            }
        })
    }
}

impl fmt::Debug for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Word({:#018x})", self.0)
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Word({:#018x})", self.0)
    }
}

impl BitAnd for Word {
    type Output = Word;
    fn bitand(self, rhs: Word) -> Word {
        Word(self.0 & rhs.0)
    }
}

impl BitOr for Word {
    type Output = Word;
    fn bitor(self, rhs: Word) -> Word {
        Word(self.0 | rhs.0)
    }
}

impl BitXor for Word {
    type Output = Word;
    fn bitxor(self, rhs: Word) -> Word {
        Word(self.0 ^ rhs.0)
    }
}

impl Not for Word {
    type Output = Word;
    fn not(self) -> Word {
        Word(!self.0)
    }
}

impl BitAndAssign for Word {
    fn bitand_assign(&mut self, rhs: Word) {
        self.0 &= rhs.0;
    }
}

impl BitOrAssign for Word {
    fn bitor_assign(&mut self, rhs: Word) {
        self.0 |= rhs.0;
    }
}

impl BitXorAssign for Word {
    fn bitxor_assign(&mut self, rhs: Word) {
        self.0 ^= rhs.0;
    }
}

/// A bit vector: `len` Booleans packed 64 per [`Word`].
///
/// Maintains the tail-word invariant documented at the [module
/// level](self): bits at positions `>= len` are always zero.
///
/// ```
/// use cnf::bits::BitVector;
/// let v = BitVector::from_bools(&[true, false, true, true]);
/// assert_eq!(v.len(), 4);
/// assert_eq!(v.count_ones(), 3);
/// assert!(v.get(0) && !v.get(1));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct BitVector {
    words: Vec<Word>,
    len: usize,
}

fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}

impl BitVector {
    /// Creates an all-zeros vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVector {
            words: vec![Word::ZERO; words_for(len)],
            len,
        }
    }

    /// Creates a vector from a slice of Booleans (`bools[i]` becomes bit `i`).
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut v = BitVector::zeros(bools.len());
        for (i, &b) in bools.iter().enumerate() {
            if b {
                v.words[i / WORD_BITS] |= Word(1u64 << (i % WORD_BITS));
            }
        }
        v
    }

    /// Creates a vector of `len` bits from little-endian bytes: bit `i` is
    /// bit `i % 8` of `bytes[i / 8]`. Bits of `bytes` at or past `len` are
    /// ignored, keeping the conversion byte-aligned and total.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` holds fewer than `len` bits.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Self {
        assert!(
            bytes.len() * 8 >= len,
            "need {len} bits, got {}",
            bytes.len() * 8
        );
        let mut v = BitVector::zeros(len);
        for i in 0..len {
            if (bytes[i / 8] >> (i % 8)) & 1 == 1 {
                v.words[i / WORD_BITS] |= Word(1u64 << (i % WORD_BITS));
            }
        }
        v
    }

    /// Serializes to little-endian bytes (`ceil(len / 8)` of them); the
    /// inverse of [`BitVector::from_bytes`]. Spare bits of the last byte are
    /// zero.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut bytes = vec![0u8; self.len.div_ceil(8)];
        for i in 0..self.len {
            if self.get(i) {
                bytes[i / 8] |= 1 << (i % 8);
            }
        }
        bytes
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector has no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of backing words.
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// The backing words, tail word masked per the module invariant.
    pub fn words(&self) -> &[Word] {
        &self.words
    }

    /// Word `index`, or [`Word::ZERO`] when `index` is past the end — the
    /// total read that encodes "missing variable reads false".
    pub fn word(&self, index: usize) -> Word {
        self.words.get(index).copied().unwrap_or(Word::ZERO)
    }

    /// Reads bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.len, "bit {index} out of range ({})", self.len);
        self.words[index / WORD_BITS].bit(index % WORD_BITS)
    }

    /// Sets bit `index` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(index < self.len, "bit {index} out of range ({})", self.len);
        let word = &mut self.words[index / WORD_BITS];
        *word = word.with_bit(index % WORD_BITS, value);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.popcount() as usize).sum()
    }

    /// Lane-wise AND with an equal-length vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and(&self, other: &BitVector) -> BitVector {
        self.zip_words(other, |a, b| a & b)
    }

    /// Lane-wise OR with an equal-length vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn or(&self, other: &BitVector) -> BitVector {
        self.zip_words(other, |a, b| a | b)
    }

    /// Lane-wise XOR with an equal-length vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor(&self, other: &BitVector) -> BitVector {
        self.zip_words(other, |a, b| a ^ b)
    }

    /// Lane-wise NOT; the tail word is re-masked so the invariant holds.
    pub fn complement(&self) -> BitVector {
        let mut words: Vec<Word> = self.words.iter().map(|&w| !w).collect();
        Self::mask_tail(&mut words, self.len);
        BitVector {
            words,
            len: self.len,
        }
    }

    fn zip_words(&self, other: &BitVector, op: impl Fn(Word, Word) -> Word) -> BitVector {
        assert_eq!(
            self.len, other.len,
            "bit-vector length mismatch in word-wise op"
        );
        BitVector {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| op(a, b))
                .collect(),
            len: self.len,
        }
    }

    fn mask_tail(words: &mut [Word], len: usize) {
        let spare = len % WORD_BITS;
        if spare != 0 {
            if let Some(last) = words.last_mut() {
                *last &= Word::tail_mask(spare);
            }
        }
    }

    /// Iterates over the bits, lowest index first.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Collects the bits into a `Vec<bool>`.
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter().collect()
    }

    /// Converts to an [`Assignment`] over `len` variables.
    pub fn to_assignment(&self) -> Assignment {
        Assignment::from_bools(self.to_bools())
    }
}

impl From<&Assignment> for BitVector {
    fn from(assignment: &Assignment) -> Self {
        BitVector::from_bools(assignment.values())
    }
}

impl From<&BitVector> for Assignment {
    fn from(bits: &BitVector) -> Self {
        bits.to_assignment()
    }
}

impl fmt::Display for BitVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, b) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", if b { 1 } else { 0 })?;
        }
        write!(f, ">")
    }
}

/// A dense bit matrix, stored row-major with each row padded to whole words.
///
/// Every row is itself a bit vector obeying the tail-word convention, so
/// word-at-a-time kernels can run down a row ([`BitMatrix::row`]) without
/// masking. The packed evaluation cores use a matrix with one row per
/// variable and one column per candidate assignment.
///
/// ```
/// use cnf::bits::BitMatrix;
/// let mut m = BitMatrix::zeros(2, 70);
/// m.set(1, 69, true);
/// assert!(m.get(1, 69));
/// assert_eq!(m.row(1).len(), 2); // 70 columns span two words
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    words: Vec<Word>,
}

impl BitMatrix {
    /// Creates an all-zeros matrix of `rows` × `cols` bits.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = words_for(cols);
        BitMatrix {
            rows,
            cols,
            words_per_row,
            words: vec![Word::ZERO; rows * words_per_row],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of words backing each row.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The words of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[Word] {
        assert!(r < self.rows, "row {r} out of range ({})", self.rows);
        &self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Mutable access to the words of row `r`.
    ///
    /// Callers must preserve the tail-word invariant (bits at columns
    /// `>= cols` stay zero).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_mut(&mut self, r: usize) -> &mut [Word] {
        assert!(r < self.rows, "row {r} out of range ({})", self.rows);
        &mut self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Reads the bit at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(c < self.cols, "column {c} out of range ({})", self.cols);
        self.row(r)[c / WORD_BITS].bit(c % WORD_BITS)
    }

    /// Sets the bit at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        assert!(c < self.cols, "column {c} out of range ({})", self.cols);
        let word = &mut self.row_mut(r)[c / WORD_BITS];
        *word = word.with_bit(c % WORD_BITS, value);
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.popcount() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_ops_and_popcount() {
        let a = Word(0b1100);
        let b = Word(0b1010);
        assert_eq!((a & b).0, 0b1000);
        assert_eq!((a | b).0, 0b1110);
        assert_eq!((a ^ b).0, 0b0110);
        assert_eq!(!Word::ONES, Word::ZERO);
        assert_eq!(a.popcount(), 2);
        assert!(Word::ZERO.is_zero());
        assert_eq!(Word(0b1000).lowest_set_bit(), Some(3));
        assert_eq!(Word::ZERO.lowest_set_bit(), None);
        let mut c = a;
        c &= b;
        c |= Word(1);
        c ^= Word(1);
        assert_eq!(c.0, 0b1000);
        assert_eq!(
            Word(0b101).iter_set_bits().collect::<Vec<_>>(),
            vec![0usize, 2]
        );
        assert!(format!("{a:?}").contains("0x"));
    }

    #[test]
    fn word_tail_masks() {
        assert_eq!(Word::tail_mask(0), Word::ZERO);
        assert_eq!(Word::tail_mask(1), Word(1));
        assert_eq!(Word::tail_mask(63), Word(u64::MAX >> 1));
        assert_eq!(Word::tail_mask(64), Word::ONES);
    }

    #[test]
    #[should_panic]
    fn word_tail_mask_rejects_oversize() {
        let _ = Word::tail_mask(65);
    }

    #[test]
    fn word_bit_accessors() {
        let w = Word::ZERO.with_bit(5, true);
        assert!(w.bit(5));
        assert!(!w.bit(4));
        assert_eq!(w.with_bit(5, false), Word::ZERO);
    }

    #[test]
    fn bitvector_roundtrips_bools_and_bytes() {
        for len in [0usize, 1, 7, 8, 63, 64, 65, 130] {
            let bools: Vec<bool> = (0..len).map(|i| i % 3 == 0).collect();
            let v = BitVector::from_bools(&bools);
            assert_eq!(v.len(), len);
            assert_eq!(v.to_bools(), bools);
            assert_eq!(BitVector::from_bytes(&v.to_bytes(), len), v);
            assert_eq!(v.count_ones(), bools.iter().filter(|&&b| b).count());
        }
    }

    #[test]
    fn bitvector_tail_word_invariant_after_complement() {
        let v = BitVector::zeros(65);
        let c = v.complement();
        assert_eq!(c.count_ones(), 65);
        // The tail word (bit 64 lives in word 1) keeps bits 65..128 zero.
        assert_eq!(c.words()[1], Word(1));
        assert_eq!(c.complement(), v);
    }

    #[test]
    fn bitvector_word_reads_are_total() {
        let v = BitVector::from_bools(&[true]);
        assert_eq!(v.word(0), Word(1));
        assert_eq!(v.word(7), Word::ZERO);
    }

    #[test]
    fn bitvector_logic_ops() {
        let a = BitVector::from_bools(&[true, true, false, false]);
        let b = BitVector::from_bools(&[true, false, true, false]);
        assert_eq!(a.and(&b).to_bools(), vec![true, false, false, false]);
        assert_eq!(a.or(&b).to_bools(), vec![true, true, true, false]);
        assert_eq!(a.xor(&b).to_bools(), vec![false, true, true, false]);
        assert_eq!(a.complement().to_bools(), vec![false, false, true, true]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bitvector_length_mismatch_panics() {
        let _ = BitVector::zeros(3).and(&BitVector::zeros(4));
    }

    #[test]
    fn bitvector_assignment_conversions() {
        let a = Assignment::from_bools(vec![true, false, true]);
        let v = BitVector::from(&a);
        assert_eq!(v.len(), 3);
        assert_eq!(Assignment::from(&v), a);
        assert_eq!(v.to_assignment(), a);
        assert_eq!(v.to_string(), "<1,0,1>");
    }

    #[test]
    fn bitvector_set_get() {
        let mut v = BitVector::zeros(130);
        v.set(129, true);
        v.set(0, true);
        assert!(v.get(129) && v.get(0) && !v.get(64));
        v.set(129, false);
        assert_eq!(v.count_ones(), 1);
    }

    #[test]
    fn bitmatrix_rows_and_cells() {
        let mut m = BitMatrix::zeros(3, 70);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 70);
        assert_eq!(m.words_per_row(), 2);
        m.set(2, 69, true);
        m.set(0, 0, true);
        assert!(m.get(2, 69));
        assert!(!m.get(1, 69));
        assert_eq!(m.count_ones(), 2);
        assert_eq!(m.row(0)[0], Word(1));
        m.row_mut(0)[0] = Word::ZERO;
        assert_eq!(m.count_ones(), 1);
    }

    #[test]
    #[should_panic]
    fn bitmatrix_out_of_range_panics() {
        let m = BitMatrix::zeros(2, 2);
        let _ = m.get(0, 2);
    }
}
