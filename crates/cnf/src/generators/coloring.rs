//! Graph k-coloring encodings.

use crate::clause::Clause;
use crate::formula::CnfFormula;
use crate::var::{Literal, Variable};

/// A simple undirected graph given by a vertex count and an edge list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Graph {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Undirected edges as `(u, v)` pairs with `u, v < num_vertices`.
    pub edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Creates a graph from a vertex count and edge list.
    pub fn new(num_vertices: usize, edges: Vec<(usize, usize)>) -> Self {
        Graph {
            num_vertices,
            edges,
        }
    }
}

/// The cycle graph `C_n`.
pub fn cycle_graph(n: usize) -> Graph {
    let edges = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Graph::new(n, edges)
}

/// The complete graph `K_n`.
pub fn complete_graph(n: usize) -> Graph {
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    Graph::new(n, edges)
}

/// Encodes "graph `g` is `k`-colorable" as CNF.
///
/// Variable `c_{v,i}` (vertex `v` has color `i`) is index `v * k + i`.
/// Clauses: every vertex has at least one color, no vertex has two colors,
/// and adjacent vertices differ in every color.
///
/// ```
/// use cnf::generators::{cycle_graph, graph_coloring};
/// // An odd cycle is not 2-colorable but is 3-colorable.
/// let c5 = cycle_graph(5);
/// assert_eq!(graph_coloring(&c5, 2).count_satisfying_assignments(), 0);
/// assert!(graph_coloring(&c5, 3).count_satisfying_assignments() > 0);
/// ```
pub fn graph_coloring(graph: &Graph, k: usize) -> CnfFormula {
    let var = |v: usize, color: usize| Variable::new(v * k + color);
    let mut formula = CnfFormula::new(graph.num_vertices * k);

    for v in 0..graph.num_vertices {
        // at least one color
        let clause: Clause = (0..k).map(|c| Literal::positive(var(v, c))).collect();
        formula.push_clause(clause);
        // at most one color
        for c1 in 0..k {
            for c2 in (c1 + 1)..k {
                formula.add_clause([Literal::negative(var(v, c1)), Literal::negative(var(v, c2))]);
            }
        }
    }
    for &(u, v) in &graph.edges {
        for c in 0..k {
            formula.add_clause([Literal::negative(var(u, c)), Literal::negative(var(v, c))]);
        }
    }
    formula
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_needs_three_colors() {
        let k3 = complete_graph(3);
        assert_eq!(graph_coloring(&k3, 2).count_satisfying_assignments(), 0);
        assert!(graph_coloring(&k3, 3).count_satisfying_assignments() > 0);
    }

    #[test]
    fn even_cycle_is_two_colorable() {
        let c4 = cycle_graph(4);
        assert!(graph_coloring(&c4, 2).count_satisfying_assignments() > 0);
    }

    #[test]
    fn odd_cycle_is_not_two_colorable() {
        let c5 = cycle_graph(5);
        assert_eq!(graph_coloring(&c5, 2).count_satisfying_assignments(), 0);
    }

    #[test]
    fn k4_number_of_models_for_3_colors_is_zero() {
        let k4 = complete_graph(4);
        assert_eq!(graph_coloring(&k4, 3).count_satisfying_assignments(), 0);
    }

    #[test]
    fn variable_layout() {
        let c3 = cycle_graph(3);
        let f = graph_coloring(&c3, 2);
        assert_eq!(f.num_vars(), 6);
    }
}
