//! The exact instances used in the paper's worked examples and evaluation.

use crate::formula::CnfFormula;

/// The paper's running example from §III.A:
/// `S(x1,x2,x3) = (x1 + x̄2)·(x̄1 + x2 + x3)`, satisfiable by `<0,0,1>`.
pub fn running_example() -> CnfFormula {
    CnfFormula::from_dimacs_clauses(&[vec![1, -2], vec![-1, 2, 3]])
        .expect("static instance is well-formed")
}

/// Example 6: `S = (x1 + x2)·(x̄1 + x̄2)` — satisfiable, exactly two
/// satisfying minterms (`x1 x̄2` and `x̄1 x2`).
pub fn example6_sat() -> CnfFormula {
    CnfFormula::from_dimacs_clauses(&[vec![1, 2], vec![-1, -2]])
        .expect("static instance is well-formed")
}

/// Example 7: `S = (x1)·(x̄1)` — unsatisfiable.
pub fn example7_unsat() -> CnfFormula {
    CnfFormula::from_dimacs_clauses(&[vec![1], vec![-1]]).expect("static instance is well-formed")
}

/// The §IV (experimental results) unsatisfiable instance:
/// `S_UNSAT = (x1+x2)·(x1+x̄2)·(x̄1+x2)·(x̄1+x̄2)`.
pub fn section4_unsat_instance() -> CnfFormula {
    CnfFormula::from_dimacs_clauses(&[vec![1, 2], vec![1, -2], vec![-1, 2], vec![-1, -2]])
        .expect("static instance is well-formed")
}

/// The §IV (experimental results) satisfiable instance:
/// `S_SAT = (x1+x2)·(x1+x2)·(x1+x̄2)·(x̄1+x2)`.
///
/// The first clause is redundant; the paper keeps it so that `m = 4` matches
/// the unsatisfiable instance and the two `S_N` traces are comparable.
/// The unique satisfying minterm is `x1 x2`.
pub fn section4_sat_instance() -> CnfFormula {
    CnfFormula::from_dimacs_clauses(&[vec![1, 2], vec![1, 2], vec![1, -2], vec![-1, 2]])
        .expect("static instance is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Assignment;

    #[test]
    fn running_example_model() {
        let f = running_example();
        assert!(f.evaluate(&Assignment::from_bools(vec![false, false, true])));
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.num_clauses(), 2);
        assert_eq!(f.num_literals(), 5);
    }

    #[test]
    fn example6_has_two_models() {
        let f = example6_sat();
        assert_eq!(f.count_satisfying_assignments(), 2);
        assert!(f.evaluate(&Assignment::from_bools(vec![true, false])));
        assert!(f.evaluate(&Assignment::from_bools(vec![false, true])));
    }

    #[test]
    fn example7_is_unsat() {
        assert_eq!(example7_unsat().count_satisfying_assignments(), 0);
    }

    #[test]
    fn section4_instances_match_paper() {
        let unsat = section4_unsat_instance();
        let sat = section4_sat_instance();
        assert_eq!(unsat.num_clauses(), 4);
        assert_eq!(sat.num_clauses(), 4);
        assert_eq!(unsat.count_satisfying_assignments(), 0);
        assert_eq!(sat.count_satisfying_assignments(), 1);
        assert!(sat.evaluate(&Assignment::from_bools(vec![true, true])));
    }
}
