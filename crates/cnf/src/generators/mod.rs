//! Workload generators.
//!
//! The paper motivates SAT through logic synthesis, formal verification,
//! circuit testing and pattern recognition; the generators here produce
//! representative instances from those domains plus the synthetic families
//! the evaluation sweeps over:
//!
//! * [`random`] — uniform random k-SAT with a configurable clause/variable ratio
//! * [`pigeonhole()`] — provably unsatisfiable pigeonhole-principle instances
//! * [`coloring`] — graph k-coloring encodings
//! * [`parity`] — XOR/parity chains (hard for resolution, easy for structure)
//! * [`miter`] — combinational equivalence-checking miters
//! * [`paper`] — the exact worked examples and §IV instances from the paper

pub mod coloring;
pub mod miter;
pub mod paper;
pub mod parity;
pub mod pigeonhole;
pub mod random;

pub use coloring::{complete_graph, cycle_graph, graph_coloring, Graph};
pub use miter::{adder_equivalence_miter, buggy_adder_miter};
pub use paper::{
    example6_sat, example7_unsat, running_example, section4_sat_instance, section4_unsat_instance,
};
pub use parity::parity_chain;
pub use pigeonhole::pigeonhole;
pub use random::{random_ksat, RandomKSatConfig};
