//! Combinational equivalence-checking miters.
//!
//! Equivalence checking is one of the EDA applications the paper's
//! introduction motivates SAT with: two circuits are equivalent iff the miter
//! circuit (pairwise XOR of their outputs, ORed together) is unsatisfiable.
//! This module provides a tiny gate-level netlist with Tseitin encoding and
//! ready-made adder miters for workloads and tests.

use crate::formula::CnfFormula;
use crate::var::{Literal, Variable};

/// A combinational circuit under construction, encoded to CNF on the fly
/// via the Tseitin transformation.
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    formula: CnfFormula,
    num_inputs: usize,
}

impl Circuit {
    /// Creates a circuit with `num_inputs` primary inputs, which become the
    /// first `num_inputs` CNF variables.
    pub fn new(num_inputs: usize) -> Self {
        Circuit {
            formula: CnfFormula::new(num_inputs),
            num_inputs,
        }
    }

    /// Returns the literal of the `i`-th primary input.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_inputs`.
    pub fn input(&self, i: usize) -> Literal {
        assert!(i < self.num_inputs, "input index out of range");
        Literal::positive(Variable::new(i))
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    fn fresh(&mut self) -> Literal {
        Literal::positive(self.formula.new_variable())
    }

    /// Adds an AND gate and returns its output literal.
    pub fn and_gate(&mut self, a: Literal, b: Literal) -> Literal {
        let o = self.fresh();
        // o <-> a & b
        self.formula.add_clause([!a, !b, o]);
        self.formula.add_clause([a, !o]);
        self.formula.add_clause([b, !o]);
        o
    }

    /// Adds an OR gate and returns its output literal.
    pub fn or_gate(&mut self, a: Literal, b: Literal) -> Literal {
        let o = self.fresh();
        // o <-> a | b
        self.formula.add_clause([a, b, !o]);
        self.formula.add_clause([!a, o]);
        self.formula.add_clause([!b, o]);
        o
    }

    /// Adds an XOR gate and returns its output literal.
    pub fn xor_gate(&mut self, a: Literal, b: Literal) -> Literal {
        let o = self.fresh();
        // o <-> a ^ b
        self.formula.add_clause([!a, !b, !o]);
        self.formula.add_clause([a, b, !o]);
        self.formula.add_clause([a, !b, o]);
        self.formula.add_clause([!a, b, o]);
        o
    }

    /// Returns the negation of a signal (free: literals carry polarity).
    pub fn not_gate(&self, a: Literal) -> Literal {
        !a
    }

    /// Asserts that a signal is true (adds a unit clause).
    pub fn assert_true(&mut self, a: Literal) {
        self.formula.add_clause([a]);
    }

    /// Consumes the circuit and returns the accumulated CNF.
    pub fn into_formula(self) -> CnfFormula {
        self.formula
    }
}

/// Builds a `width`-bit ripple-carry adder inside `circuit` and returns the
/// sum bits followed by the final carry-out.
///
/// `a` and `b` must each contain `width` input literals (LSB first).
fn ripple_carry_adder(
    circuit: &mut Circuit,
    a: &[Literal],
    b: &[Literal],
    faulty_bit: Option<usize>,
) -> Vec<Literal> {
    assert_eq!(a.len(), b.len());
    let mut outputs = Vec::with_capacity(a.len() + 1);
    let mut carry: Option<Literal> = None;
    for i in 0..a.len() {
        let half = circuit.xor_gate(a[i], b[i]);
        let (sum, new_carry) = match carry {
            None => {
                let c = circuit.and_gate(a[i], b[i]);
                (half, c)
            }
            Some(cin) => {
                let sum = circuit.xor_gate(half, cin);
                let c1 = circuit.and_gate(a[i], b[i]);
                let c2 = circuit.and_gate(half, cin);
                let cout = circuit.or_gate(c1, c2);
                (sum, cout)
            }
        };
        // A "faulty" adder replaces one sum bit's XOR with OR, creating a
        // detectable functional difference.
        let sum = if faulty_bit == Some(i) {
            circuit.or_gate(a[i], b[i])
        } else {
            sum
        };
        outputs.push(sum);
        carry = Some(new_carry);
    }
    outputs.push(carry.expect("width >= 1"));
    outputs
}

fn adder_miter(width: usize, faulty_bit: Option<usize>) -> CnfFormula {
    assert!(width >= 1, "adder width must be at least 1");
    let mut circuit = Circuit::new(2 * width);
    let a: Vec<Literal> = (0..width).map(|i| circuit.input(i)).collect();
    let b: Vec<Literal> = (0..width).map(|i| circuit.input(width + i)).collect();

    let golden = ripple_carry_adder(&mut circuit, &a, &b, None);
    let candidate = ripple_carry_adder(&mut circuit, &a, &b, faulty_bit);

    // Miter: OR of pairwise XORs must be 1 for a counterexample to exist.
    let mut diff: Option<Literal> = None;
    for (g, c) in golden.iter().zip(candidate.iter()) {
        let x = circuit.xor_gate(*g, *c);
        diff = Some(match diff {
            None => x,
            Some(d) => circuit.or_gate(d, x),
        });
    }
    circuit.assert_true(diff.expect("at least one output pair"));
    circuit.into_formula()
}

/// Equivalence miter between two identical `width`-bit ripple-carry adders.
///
/// The result is **unsatisfiable**: no input distinguishes the two circuits.
///
/// ```
/// let f = cnf::generators::adder_equivalence_miter(2);
/// assert_eq!(f.count_satisfying_assignments(), 0);
/// ```
pub fn adder_equivalence_miter(width: usize) -> CnfFormula {
    adder_miter(width, None)
}

/// Equivalence miter between a correct `width`-bit adder and a copy whose
/// `faulty_bit`-th sum bit uses OR instead of XOR.
///
/// The result is **satisfiable**: any satisfying assignment is a
/// counterexample input exposing the bug.
///
/// # Panics
///
/// Panics if `faulty_bit >= width`.
pub fn buggy_adder_miter(width: usize, faulty_bit: usize) -> CnfFormula {
    assert!(
        faulty_bit < width,
        "faulty bit must be within the adder width"
    );
    adder_miter(width, Some(faulty_bit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Assignment;

    #[test]
    fn gate_encodings_are_correct() {
        // Exhaustively check each gate's truth table via model enumeration.
        for (gate, table) in [
            ("and", [false, false, false, true]),
            ("or", [false, true, true, true]),
            ("xor", [false, true, true, false]),
        ] {
            for (idx, expected) in table.iter().enumerate() {
                let mut c = Circuit::new(2);
                let a = c.input(0);
                let b = c.input(1);
                let o = match gate {
                    "and" => c.and_gate(a, b),
                    "or" => c.or_gate(a, b),
                    _ => c.xor_gate(a, b),
                };
                c.assert_true(if *expected { o } else { !o });
                let f = c.into_formula();
                let a_val = idx & 1 == 1;
                let b_val = idx & 2 == 2;
                // The gate output variable is functionally determined, so exactly
                // one model extends (a_val, b_val) when expected matches.
                let models = f
                    .satisfying_assignments()
                    .into_iter()
                    .filter(|m| {
                        m.value(Variable::new(0)) == a_val && m.value(Variable::new(1)) == b_val
                    })
                    .count();
                assert_eq!(models, 1, "gate {gate} input {idx}");
            }
        }
    }

    #[test]
    fn identical_adders_are_equivalent() {
        for width in 1..=2 {
            let f = adder_equivalence_miter(width);
            assert_eq!(f.count_satisfying_assignments(), 0, "width {width}");
        }
    }

    #[test]
    fn buggy_adder_is_detected() {
        let width = 2usize;
        let faulty = 1usize;
        let f = buggy_adder_miter(width, faulty);
        let models = f.satisfying_assignments();
        assert!(!models.is_empty());
        // Every counterexample input must make the golden and buggy adders
        // produce different outputs when simulated directly.
        for m in &models {
            let a_bits: Vec<bool> = (0..width).map(|i| m.value(Variable::new(i))).collect();
            let b_bits: Vec<bool> = (0..width)
                .map(|i| m.value(Variable::new(width + i)))
                .collect();
            let to_u64 = |bits: &[bool]| {
                bits.iter()
                    .enumerate()
                    .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
            };
            let sum = to_u64(&a_bits) + to_u64(&b_bits);
            let mut golden: Vec<bool> = (0..=width).map(|i| (sum >> i) & 1 == 1).collect();
            let mut buggy = golden.clone();
            buggy[faulty] = a_bits[faulty] | b_bits[faulty];
            golden[faulty] = (sum >> faulty) & 1 == 1;
            assert_ne!(
                golden, buggy,
                "counterexample {m} does not exercise the fault"
            );
        }
    }

    #[test]
    fn counterexample_assignment_is_a_model() {
        let f = buggy_adder_miter(1, 0);
        let models = f.satisfying_assignments();
        assert!(!models.is_empty());
        let m: &Assignment = &models[0];
        assert!(f.evaluate(m));
    }

    #[test]
    #[should_panic]
    fn faulty_bit_out_of_range_panics() {
        let _ = buggy_adder_miter(2, 5);
    }
}
