//! Parity (XOR) chain instances.

use crate::formula::CnfFormula;
use crate::var::{Literal, Variable};

/// Generates a parity-chain instance: `x1 ⊕ x2 ⊕ ... ⊕ xn = target`.
///
/// XOR constraints are expanded into CNF by introducing chain variables
/// `t_i = x1 ⊕ ... ⊕ x_i`: each step `t_i = t_{i-1} ⊕ x_i` contributes four
/// clauses, and a final unit clause fixes the overall parity.
///
/// The instance is always satisfiable (exactly `2^(n-1)` models), but parity
/// reasoning is a classic stress case for CNF solvers.
///
/// ```
/// let f = cnf::generators::parity_chain(4, true);
/// assert_eq!(f.count_satisfying_assignments(), 8);
/// ```
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn parity_chain(n: usize, target: bool) -> CnfFormula {
    assert!(n > 0, "parity chain needs at least one input variable");
    // variables 0..n are the inputs; n..(2n-1) are the chain variables t_2..t_n
    // t_1 is x1 itself.
    let mut formula = CnfFormula::new(n + n.saturating_sub(1));
    let input = Variable::new;
    let chain = |i: usize| Variable::new(n + i - 2); // t_i for i >= 2

    if n == 1 {
        formula.add_clause([Literal::with_phase(input(0), target)]);
        return formula;
    }

    for i in 2..=n {
        let prev: Variable = if i == 2 { input(0) } else { chain(i - 1) };
        let x = input(i - 1);
        let t = chain(i);
        // t = prev XOR x  ==  (¬prev ∨ ¬x ∨ ¬t)(prev ∨ x ∨ ¬t)(prev ∨ ¬x ∨ t)(¬prev ∨ x ∨ t)
        formula.add_clause([
            Literal::negative(prev),
            Literal::negative(x),
            Literal::negative(t),
        ]);
        formula.add_clause([
            Literal::positive(prev),
            Literal::positive(x),
            Literal::negative(t),
        ]);
        formula.add_clause([
            Literal::positive(prev),
            Literal::negative(x),
            Literal::positive(t),
        ]);
        formula.add_clause([
            Literal::negative(prev),
            Literal::positive(x),
            Literal::positive(t),
        ]);
    }
    formula.add_clause([Literal::with_phase(chain(n), target)]);
    formula
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Assignment;

    #[test]
    fn single_variable_chain() {
        let f = parity_chain(1, true);
        assert_eq!(f.num_vars(), 1);
        assert_eq!(f.count_satisfying_assignments(), 1);
        assert!(f.evaluate(&Assignment::from_bools(vec![true])));
    }

    #[test]
    fn model_count_is_2_pow_n_minus_1_times_chain() {
        // Over all (input + chain) variables the model count is 2^(n-1)
        // because chain variables are functionally determined.
        for n in 2..=4 {
            for target in [false, true] {
                let f = parity_chain(n, target);
                assert_eq!(
                    f.count_satisfying_assignments(),
                    1u64 << (n - 1),
                    "n={n} target={target}"
                );
            }
        }
    }

    #[test]
    fn models_respect_parity() {
        let n = 3;
        let f = parity_chain(n, true);
        for a in f.satisfying_assignments() {
            let parity = (0..n).fold(false, |acc, i| acc ^ a.value(Variable::new(i)));
            assert!(parity);
        }
    }

    #[test]
    #[should_panic]
    fn zero_inputs_panics() {
        let _ = parity_chain(0, false);
    }
}
