//! Uniform random k-SAT generation.

use crate::clause::Clause;
use crate::error::{CnfError, Result};
use crate::formula::CnfFormula;
use crate::var::{Literal, Variable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the uniform random k-SAT generator.
///
/// ```
/// use cnf::generators::RandomKSatConfig;
/// let cfg = RandomKSatConfig::new(20, 85, 3).with_seed(7);
/// let f = cnf::generators::random_ksat(&cfg)?;
/// assert_eq!(f.num_vars(), 20);
/// assert_eq!(f.num_clauses(), 85);
/// # Ok::<(), cnf::CnfError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RandomKSatConfig {
    /// Number of variables `n`.
    pub num_vars: usize,
    /// Number of clauses `m`.
    pub num_clauses: usize,
    /// Literals per clause `k`.
    pub k: usize,
    /// PRNG seed (generation is fully deterministic for a given seed).
    pub seed: u64,
    /// Forbid clauses containing a variable twice (the usual convention).
    pub distinct_vars_per_clause: bool,
}

impl RandomKSatConfig {
    /// Creates a configuration with the default seed 0 and distinct variables
    /// per clause.
    pub fn new(num_vars: usize, num_clauses: usize, k: usize) -> Self {
        RandomKSatConfig {
            num_vars,
            num_clauses,
            k,
            seed: 0,
            distinct_vars_per_clause: true,
        }
    }

    /// Creates a configuration from the clause/variable ratio `alpha = m/n`
    /// (the hardness knob for random 3-SAT; the phase transition sits near 4.26).
    pub fn from_ratio(num_vars: usize, alpha: f64, k: usize) -> Self {
        Self::new(num_vars, (alpha * num_vars as f64).round() as usize, k)
    }

    /// Sets the PRNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Allows a clause to mention the same variable more than once.
    pub fn allow_repeated_vars(mut self) -> Self {
        self.distinct_vars_per_clause = false;
        self
    }
}

/// Generates a uniform random k-SAT formula.
///
/// Each clause draws `k` distinct variables uniformly (unless repetition is
/// allowed) and negates each independently with probability 1/2.
///
/// # Errors
///
/// Returns [`CnfError::InvalidGeneratorConfig`] when `k == 0`, `num_vars == 0`
/// with clauses requested, or `k > num_vars` while distinct variables are
/// required.
pub fn random_ksat(config: &RandomKSatConfig) -> Result<CnfFormula> {
    if config.k == 0 {
        return Err(CnfError::InvalidGeneratorConfig(
            "clause width k must be at least 1".into(),
        ));
    }
    if config.num_vars == 0 && config.num_clauses > 0 {
        return Err(CnfError::InvalidGeneratorConfig(
            "cannot generate clauses over zero variables".into(),
        ));
    }
    if config.distinct_vars_per_clause && config.k > config.num_vars {
        return Err(CnfError::InvalidGeneratorConfig(format!(
            "clause width k={} exceeds variable count n={}",
            config.k, config.num_vars
        )));
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut formula = CnfFormula::new(config.num_vars);
    for _ in 0..config.num_clauses {
        let mut clause = Clause::new();
        if config.distinct_vars_per_clause {
            // Partial Fisher-Yates over variable indices.
            let mut chosen: Vec<usize> = Vec::with_capacity(config.k);
            while chosen.len() < config.k {
                let v = rng.gen_range(0..config.num_vars);
                if !chosen.contains(&v) {
                    chosen.push(v);
                }
            }
            for v in chosen {
                let phase: bool = rng.gen();
                clause.push(Literal::with_phase(Variable::new(v), phase));
            }
        } else {
            for _ in 0..config.k {
                let v = rng.gen_range(0..config.num_vars);
                let phase: bool = rng.gen();
                clause.push(Literal::with_phase(Variable::new(v), phase));
            }
        }
        formula.push_clause(clause);
    }
    Ok(formula)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::FormulaStats;

    #[test]
    fn generates_requested_shape() {
        let cfg = RandomKSatConfig::new(10, 42, 3).with_seed(1);
        let f = random_ksat(&cfg).unwrap();
        assert_eq!(f.num_vars(), 10);
        assert_eq!(f.num_clauses(), 42);
        assert!(FormulaStats::of(&f).is_uniform_ksat(3));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = RandomKSatConfig::new(8, 20, 3).with_seed(99);
        assert_eq!(random_ksat(&cfg).unwrap(), random_ksat(&cfg).unwrap());
        let other = RandomKSatConfig::new(8, 20, 3).with_seed(100);
        assert_ne!(random_ksat(&cfg).unwrap(), random_ksat(&other).unwrap());
    }

    #[test]
    fn distinct_variables_per_clause() {
        let cfg = RandomKSatConfig::new(5, 50, 3).with_seed(3);
        let f = random_ksat(&cfg).unwrap();
        for clause in f.iter() {
            let mut vars: Vec<usize> = clause.iter().map(|l| l.variable().index()).collect();
            vars.sort_unstable();
            vars.dedup();
            assert_eq!(vars.len(), clause.len());
        }
    }

    #[test]
    fn ratio_constructor() {
        let cfg = RandomKSatConfig::from_ratio(20, 4.25, 3);
        assert_eq!(cfg.num_clauses, 85);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(random_ksat(&RandomKSatConfig::new(3, 5, 0)).is_err());
        assert!(random_ksat(&RandomKSatConfig::new(0, 5, 2)).is_err());
        assert!(random_ksat(&RandomKSatConfig::new(2, 5, 3)).is_err());
        assert!(random_ksat(&RandomKSatConfig::new(2, 5, 3).allow_repeated_vars()).is_ok());
    }

    #[test]
    fn zero_clauses_is_fine() {
        let f = random_ksat(&RandomKSatConfig::new(4, 0, 3)).unwrap();
        assert!(f.is_empty());
    }
}
