//! Pigeonhole-principle instances.

use crate::clause::Clause;
use crate::formula::CnfFormula;
use crate::var::{Literal, Variable};

/// Generates the pigeonhole instance `PHP(pigeons, holes)`.
///
/// Variable `p_{i,j}` (pigeon `i` sits in hole `j`) is index `i * holes + j`.
/// Clauses state that every pigeon sits in some hole and no two pigeons share
/// a hole. With `pigeons > holes` the instance is unsatisfiable (and famously
/// hard for resolution-based solvers); with `pigeons <= holes` it is
/// satisfiable.
///
/// ```
/// let f = cnf::generators::pigeonhole(3, 2);
/// assert_eq!(f.num_vars(), 6);
/// assert_eq!(f.count_satisfying_assignments(), 0);
/// ```
pub fn pigeonhole(pigeons: usize, holes: usize) -> CnfFormula {
    let num_vars = pigeons * holes;
    let var = |pigeon: usize, hole: usize| Variable::new(pigeon * holes + hole);
    let mut formula = CnfFormula::new(num_vars);

    // Every pigeon is placed in at least one hole.
    for p in 0..pigeons {
        let clause: Clause = (0..holes).map(|h| Literal::positive(var(p, h))).collect();
        formula.push_clause(clause);
    }
    // No two pigeons share a hole.
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                formula.add_clause([Literal::negative(var(p1, h)), Literal::negative(var(p2, h))]);
            }
        }
    }
    formula
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn php_3_2_is_unsat() {
        let f = pigeonhole(3, 2);
        assert_eq!(f.num_vars(), 6);
        // 3 at-least-one clauses + 2 holes * C(3,2)=3 pairs = 3 + 6 = 9
        assert_eq!(f.num_clauses(), 9);
        assert_eq!(f.count_satisfying_assignments(), 0);
    }

    #[test]
    fn php_2_2_is_sat() {
        let f = pigeonhole(2, 2);
        assert!(f.count_satisfying_assignments() > 0);
    }

    #[test]
    fn php_2_3_is_sat() {
        let f = pigeonhole(2, 3);
        assert!(f.count_satisfying_assignments() > 0);
    }

    #[test]
    fn degenerate_sizes() {
        let f = pigeonhole(0, 3);
        assert!(f.is_empty() || f.count_satisfying_assignments() > 0);
        let f = pigeonhole(1, 0);
        // one pigeon, zero holes: the at-least-one clause is empty -> UNSAT
        assert!(f.has_empty_clause());
    }
}
