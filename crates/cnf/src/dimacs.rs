//! DIMACS CNF reading and writing.
//!
//! The DIMACS format is the de-facto interchange format for SAT instances:
//!
//! ```text
//! c a comment
//! p cnf <num_vars> <num_clauses>
//! 1 -2 0
//! -1 2 3 0
//! ```

use crate::clause::Clause;
use crate::error::{CnfError, Result};
use crate::formula::CnfFormula;
use crate::var::Literal;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};

/// Parses a DIMACS CNF document from a string.
///
/// Comment lines (`c ...`) and `%`/`0` trailer lines produced by some
/// generators are ignored. The `p cnf n m` header is validated against the
/// body: using more variables than declared is an error, while a clause-count
/// mismatch is reported as [`CnfError::HeaderMismatch`].
///
/// # Errors
///
/// Returns a [`CnfError`] describing the first malformed line.
///
/// # Example
///
/// ```
/// let f = cnf::dimacs::parse_str("p cnf 2 2\n1 2 0\n-1 -2 0\n")?;
/// assert_eq!(f.num_vars(), 2);
/// assert_eq!(f.num_clauses(), 2);
/// # Ok::<(), cnf::CnfError>(())
/// ```
pub fn parse_str(input: &str) -> Result<CnfFormula> {
    parse_lines(input.lines().map(|l| Ok(l.to_owned())))
}

/// Parses a DIMACS CNF document from any reader.
///
/// # Errors
///
/// I/O errors are reported as [`CnfError::ParseDimacs`] with the failing line.
pub fn parse_reader<R: Read>(reader: R) -> Result<CnfFormula> {
    let buf = BufReader::new(reader);
    parse_lines(buf.lines().map(|r| {
        r.map_err(|e| CnfError::ParseDimacs {
            line: 0,
            message: format!("i/o error: {e}"),
        })
    }))
}

fn parse_lines<I>(lines: I) -> Result<CnfFormula>
where
    I: IntoIterator<Item = Result<String>>,
{
    let mut declared_vars: Option<usize> = None;
    let mut declared_clauses: Option<usize> = None;
    let mut clauses: Vec<Clause> = Vec::new();
    let mut current: Vec<Literal> = Vec::new();

    for (line_no, line) in lines.into_iter().enumerate() {
        let line_no = line_no + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') || trimmed.starts_with('%') {
            continue;
        }
        if trimmed.starts_with('p') {
            let mut parts = trimmed.split_whitespace();
            let _p = parts.next();
            let fmt = parts.next().unwrap_or("");
            if fmt != "cnf" {
                return Err(CnfError::ParseDimacs {
                    line: line_no,
                    message: format!("unsupported problem format '{fmt}', expected 'cnf'"),
                });
            }
            let nv = parts.next().ok_or_else(|| CnfError::ParseDimacs {
                line: line_no,
                message: "missing variable count in header".into(),
            })?;
            let nc = parts.next().ok_or_else(|| CnfError::ParseDimacs {
                line: line_no,
                message: "missing clause count in header".into(),
            })?;
            declared_vars = Some(nv.parse().map_err(|_| CnfError::ParseDimacs {
                line: line_no,
                message: format!("invalid variable count '{nv}'"),
            })?);
            declared_clauses = Some(nc.parse().map_err(|_| CnfError::ParseDimacs {
                line: line_no,
                message: format!("invalid clause count '{nc}'"),
            })?);
            continue;
        }
        for token in trimmed.split_whitespace() {
            let value: i64 = token.parse().map_err(|_| CnfError::ParseDimacs {
                line: line_no,
                message: format!("invalid literal token '{token}'"),
            })?;
            if value == 0 {
                // A bare `0` with no pending literals is treated as a trailer
                // (SATLIB files end with `%\n0\n`) rather than an empty clause.
                if !current.is_empty() {
                    clauses.push(Clause::from_literals(current.drain(..)));
                }
            } else {
                current.push(Literal::from_dimacs(value)?);
            }
        }
    }
    if !current.is_empty() {
        // Tolerate a missing terminating 0 on the final clause.
        clauses.push(Clause::from_literals(current.drain(..)));
    }

    let formula = CnfFormula::from_clauses(declared_vars.unwrap_or(0), clauses);

    if let Some(nv) = declared_vars {
        if formula.num_vars() > nv {
            return Err(CnfError::HeaderMismatch {
                declared: nv,
                found: formula.num_vars(),
                what: "variables",
            });
        }
    }
    if let Some(nc) = declared_clauses {
        if formula.num_clauses() != nc {
            return Err(CnfError::HeaderMismatch {
                declared: nc,
                found: formula.num_clauses(),
                what: "clauses",
            });
        }
    }
    Ok(formula)
}

/// Serializes a formula to a DIMACS CNF string.
///
/// ```
/// use cnf::cnf_formula;
/// let f = cnf_formula![[1, -2], [2]];
/// let text = cnf::dimacs::to_string(&f);
/// assert!(text.starts_with("p cnf 2 2"));
/// let back = cnf::dimacs::parse_str(&text).unwrap();
/// assert_eq!(back, f);
/// ```
pub fn to_string(formula: &CnfFormula) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "p cnf {} {}",
        formula.num_vars(),
        formula.num_clauses()
    );
    for clause in formula.iter() {
        for lit in clause.iter() {
            let _ = write!(out, "{} ", lit.to_dimacs());
        }
        let _ = writeln!(out, "0");
    }
    out
}

/// Writes a formula in DIMACS CNF format to any writer.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_to<W: Write>(formula: &CnfFormula, mut writer: W) -> std::io::Result<()> {
    writer.write_all(to_string(formula).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf_formula;

    #[test]
    fn parse_simple_document() {
        let f = parse_str("c comment\np cnf 3 2\n1 -2 0\n-1 2 3 0\n").unwrap();
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.num_clauses(), 2);
    }

    #[test]
    fn parse_multiline_clause_and_missing_trailing_zero() {
        let f = parse_str("p cnf 3 1\n1 2\n3").unwrap();
        assert_eq!(f.num_clauses(), 1);
        assert_eq!(f.clause(0).unwrap().len(), 3);
    }

    #[test]
    fn header_declares_extra_vars() {
        let f = parse_str("p cnf 10 1\n1 0\n").unwrap();
        assert_eq!(f.num_vars(), 10);
    }

    #[test]
    fn body_exceeding_header_vars_is_error() {
        let err = parse_str("p cnf 1 1\n2 0\n").unwrap_err();
        assert!(matches!(
            err,
            CnfError::HeaderMismatch {
                what: "variables",
                ..
            }
        ));
    }

    #[test]
    fn clause_count_mismatch_is_error() {
        let err = parse_str("p cnf 2 3\n1 0\n2 0\n").unwrap_err();
        assert!(matches!(
            err,
            CnfError::HeaderMismatch {
                what: "clauses",
                ..
            }
        ));
    }

    #[test]
    fn bad_tokens_are_reported_with_line() {
        let err = parse_str("p cnf 2 1\n1 x 0\n").unwrap_err();
        match err {
            CnfError::ParseDimacs { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unsupported_format_rejected() {
        assert!(parse_str("p wcnf 2 1\n1 0\n").is_err());
    }

    #[test]
    fn roundtrip() {
        let f = cnf_formula![[1, 2], [1, -2], [-1, 2], [-1, -2]];
        let text = to_string(&f);
        let back = parse_str(&text).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn reader_interface() {
        let text = "p cnf 2 1\n-1 -2 0\n";
        let f = parse_reader(text.as_bytes()).unwrap();
        assert_eq!(f.num_clauses(), 1);
        let mut out = Vec::new();
        write_to(&f, &mut out).unwrap();
        assert_eq!(parse_reader(&out[..]).unwrap(), f);
    }

    #[test]
    fn percent_trailer_ignored() {
        let f = parse_str("p cnf 1 1\n1 0\n%\n0\n").unwrap();
        assert_eq!(f.num_clauses(), 1);
    }

    #[test]
    fn randomized_roundtrip_is_exact() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xD1_0AC5);
        for _ in 0..200 {
            let num_vars = rng.gen_range(1..=12usize);
            let num_clauses = rng.gen_range(1..=20usize);
            let mut f = CnfFormula::new(num_vars);
            for _ in 0..num_clauses {
                let width = rng.gen_range(1..=4usize);
                let lits: Vec<Literal> = (0..width)
                    .map(|_| {
                        let v = rng.gen_range(0..num_vars);
                        let sign: bool = rng.gen();
                        Literal::with_phase(crate::Variable::new(v), sign)
                    })
                    .collect();
                f.add_clause(lits);
            }
            let text = to_string(&f);
            let back = parse_str(&text).unwrap();
            assert_eq!(back, f, "round-trip mismatch for:\n{text}");
        }
    }

    #[test]
    fn headerless_document_infers_vars_from_body() {
        let f = parse_str("1 -3 0\n2 0\n").unwrap();
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.num_clauses(), 2);
    }

    #[test]
    fn empty_document_parses_to_empty_formula() {
        let f = parse_str("").unwrap();
        assert_eq!(f.num_vars(), 0);
        assert_eq!(f.num_clauses(), 0);
        let g = parse_str("c only comments\n\n%\n0\n").unwrap();
        assert_eq!(g, f);
    }

    #[test]
    fn header_missing_counts_is_error() {
        assert!(matches!(
            parse_str("p cnf\n"),
            Err(CnfError::ParseDimacs { line: 1, .. })
        ));
        assert!(matches!(
            parse_str("p cnf 3\n"),
            Err(CnfError::ParseDimacs { line: 1, .. })
        ));
    }

    #[test]
    fn header_non_numeric_counts_are_errors() {
        assert!(parse_str("p cnf x 1\n1 0\n").is_err());
        assert!(parse_str("p cnf 1 y\n1 0\n").is_err());
        assert!(parse_str("p cnf -1 1\n1 0\n").is_err());
    }

    #[test]
    fn literal_overflowing_i64_is_error() {
        let err = parse_str("p cnf 1 1\n99999999999999999999999 0\n").unwrap_err();
        assert!(matches!(err, CnfError::ParseDimacs { line: 2, .. }));
    }

    #[test]
    fn serialized_form_has_header_and_terminators() {
        let f = cnf_formula![[1, -2], [2, 3]];
        let text = to_string(&f);
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("p cnf 3 2"));
        for line in lines {
            assert!(
                line.ends_with('0'),
                "clause line missing terminator: {line}"
            );
        }
    }

    #[test]
    fn roundtrip_preserves_duplicate_and_single_literal_clauses() {
        let f = cnf_formula![[1], [1], [-1, -1, 2]];
        let back = parse_str(&to_string(&f)).unwrap();
        assert_eq!(back, f);
        assert_eq!(back.num_clauses(), 3);
    }
}
