//! CNF formulas: conjunctions of clauses (Definitions 4–6 of the paper).

use crate::assignment::{Assignment, PartialAssignment};
use crate::clause::Clause;
use crate::error::{CnfError, Result};
use crate::var::{Literal, Variable};
use std::fmt;

/// A formula in Conjunctive Normal Form: the conjunction of `m` clauses over
/// `n` variables (a *SAT instance* in the paper's terminology).
///
/// ```
/// use cnf::{cnf_formula, Assignment};
///
/// // The paper's running example: S = (x1+x2')(x1'+x2+x3), SAT with <0,0,1>
/// let f = cnf_formula![[1, -2], [-1, 2, 3]];
/// let a = Assignment::from_bools(vec![false, false, true]);
/// assert!(f.evaluate(&a));
/// assert_eq!(f.count_satisfying_assignments(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CnfFormula {
    num_vars: usize,
    clauses: Vec<Clause>,
}

impl CnfFormula {
    /// Creates an empty formula (no clauses) over `num_vars` variables.
    ///
    /// An empty formula is trivially satisfiable.
    pub fn new(num_vars: usize) -> Self {
        CnfFormula {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Creates a formula from a set of clauses, inferring the variable count
    /// from the largest variable mentioned (at least `min_vars`).
    pub fn from_clauses<I: IntoIterator<Item = Clause>>(min_vars: usize, clauses: I) -> Self {
        let clauses: Vec<Clause> = clauses.into_iter().collect();
        let max_idx = clauses
            .iter()
            .filter_map(Clause::max_variable_index)
            .max()
            .map(|m| m + 1)
            .unwrap_or(0);
        CnfFormula {
            num_vars: min_vars.max(max_idx),
            clauses,
        }
    }

    /// Builds a formula from DIMACS-style nested integer clauses.
    ///
    /// # Errors
    ///
    /// Returns [`CnfError::ZeroLiteral`] if any literal is zero.
    pub fn from_dimacs_clauses(clauses: &[Vec<i64>]) -> Result<Self> {
        let mut parsed = Vec::with_capacity(clauses.len());
        for c in clauses {
            parsed.push(Clause::from_dimacs(c)?);
        }
        Ok(CnfFormula::from_clauses(0, parsed))
    }

    /// Number of variables `n`.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses `m`.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Total number of literal occurrences across all clauses.
    pub fn num_literals(&self) -> usize {
        self.clauses.iter().map(Clause::len).sum()
    }

    /// Returns the clauses as a slice.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Returns the `i`-th clause, if it exists.
    pub fn clause(&self, i: usize) -> Option<&Clause> {
        self.clauses.get(i)
    }

    /// Returns an iterator over the clauses.
    pub fn iter(&self) -> std::slice::Iter<'_, Clause> {
        self.clauses.iter()
    }

    /// Adds a clause built from an iterator of literals.
    ///
    /// Variables mentioned beyond the current variable count grow the formula.
    pub fn add_clause<I: IntoIterator<Item = Literal>>(&mut self, literals: I) {
        self.push_clause(Clause::from_literals(literals));
    }

    /// Adds an already-constructed clause.
    pub fn push_clause(&mut self, clause: Clause) {
        if let Some(max) = clause.max_variable_index() {
            if max + 1 > self.num_vars {
                self.num_vars = max + 1;
            }
        }
        self.clauses.push(clause);
    }

    /// Grows the declared variable count to at least `num_vars`.
    pub fn ensure_vars(&mut self, num_vars: usize) {
        if num_vars > self.num_vars {
            self.num_vars = num_vars;
        }
    }

    /// Returns a fresh variable, growing the formula by one variable.
    pub fn new_variable(&mut self) -> Variable {
        let v = Variable::new(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Returns an iterator over all variables of the formula.
    pub fn variables(&self) -> impl Iterator<Item = Variable> {
        (0..self.num_vars).map(Variable::new)
    }

    /// Returns `true` if the formula has no clauses (trivially satisfiable).
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Returns `true` if any clause is empty (trivially unsatisfiable).
    pub fn has_empty_clause(&self) -> bool {
        self.clauses.iter().any(Clause::is_empty)
    }

    /// Evaluates the formula under a complete assignment.
    ///
    /// Total over short assignments: variables the assignment does not cover
    /// read `false` (see [`Clause::evaluate`]). Callers that want a width
    /// mismatch reported as an error use [`CnfFormula::try_evaluate`].
    pub fn evaluate(&self, assignment: &Assignment) -> bool {
        self.clauses.iter().all(|c| c.evaluate(assignment))
    }

    /// Evaluates the formula under a complete assignment, validating its size.
    ///
    /// # Errors
    ///
    /// Returns [`CnfError::AssignmentSizeMismatch`] if the assignment does not
    /// cover exactly the formula's variables.
    pub fn try_evaluate(&self, assignment: &Assignment) -> Result<bool> {
        if assignment.num_vars() != self.num_vars {
            return Err(CnfError::AssignmentSizeMismatch {
                assignment_vars: assignment.num_vars(),
                formula_vars: self.num_vars,
            });
        }
        Ok(self.evaluate(assignment))
    }

    /// Evaluates the formula under a partial assignment.
    ///
    /// Returns `Some(true)` if every clause is already satisfied,
    /// `Some(false)` if some clause is already falsified, `None` otherwise.
    pub fn evaluate_partial(&self, assignment: &PartialAssignment) -> Option<bool> {
        let mut all_true = true;
        for clause in &self.clauses {
            match clause.evaluate_partial(assignment) {
                Some(false) => return Some(false),
                Some(true) => {}
                None => all_true = false,
            }
        }
        if all_true {
            Some(true)
        } else {
            None
        }
    }

    /// Counts the number of clauses satisfied by the assignment.
    pub fn count_satisfied_clauses(&self, assignment: &Assignment) -> usize {
        self.clauses
            .iter()
            .filter(|c| c.evaluate(assignment))
            .count()
    }

    /// Counts satisfying assignments by exhaustive enumeration (#SAT).
    ///
    /// This is exponential in `n` and intended for small instances and as a
    /// test oracle; the symbolic NBL engine relies on the same quantity `K`.
    ///
    /// # Panics
    ///
    /// Panics if the formula has more than 30 variables (guard against
    /// accidental exponential blow-ups in tests).
    pub fn count_satisfying_assignments(&self) -> u64 {
        assert!(
            self.num_vars <= 30,
            "exhaustive model counting limited to 30 variables"
        );
        Assignment::enumerate_all(self.num_vars)
            .filter(|a| self.evaluate(a))
            .count() as u64
    }

    /// Returns all satisfying assignments by exhaustive enumeration.
    ///
    /// # Panics
    ///
    /// Panics if the formula has more than 30 variables.
    pub fn satisfying_assignments(&self) -> Vec<Assignment> {
        assert!(
            self.num_vars <= 30,
            "exhaustive model enumeration limited to 30 variables"
        );
        Assignment::enumerate_all(self.num_vars)
            .filter(|a| self.evaluate(a))
            .collect()
    }

    /// Returns a copy of the formula with the given variable substituted by a
    /// constant: satisfied clauses are removed and falsified literals deleted.
    ///
    /// The variable count is preserved so variable indices remain stable.
    pub fn assign_variable(&self, var: Variable, value: bool) -> CnfFormula {
        let mut clauses = Vec::with_capacity(self.clauses.len());
        'outer: for clause in &self.clauses {
            let mut reduced = Clause::new();
            for &lit in clause.iter() {
                if lit.variable() == var {
                    if lit.evaluate(value) {
                        continue 'outer; // clause satisfied, drop it
                    } else {
                        continue; // literal falsified, drop literal
                    }
                }
                reduced.push(lit);
            }
            clauses.push(reduced);
        }
        CnfFormula {
            num_vars: self.num_vars,
            clauses,
        }
    }

    /// Returns the set of variables that actually occur in some clause.
    pub fn occurring_variables(&self) -> Vec<Variable> {
        let mut seen = vec![false; self.num_vars];
        for clause in &self.clauses {
            for lit in clause.iter() {
                seen[lit.variable().index()] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter_map(|(i, &s)| if s { Some(Variable::new(i)) } else { None })
            .collect()
    }
}

impl fmt::Display for CnfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "⊤ [{} vars]", self.num_vars);
        }
        for (i, clause) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            write!(f, "{clause}")?;
        }
        Ok(())
    }
}

impl Extend<Clause> for CnfFormula {
    fn extend<I: IntoIterator<Item = Clause>>(&mut self, iter: I) {
        for c in iter {
            self.push_clause(c);
        }
    }
}

impl FromIterator<Clause> for CnfFormula {
    fn from_iter<I: IntoIterator<Item = Clause>>(iter: I) -> Self {
        CnfFormula::from_clauses(0, iter)
    }
}

impl<'a> IntoIterator for &'a CnfFormula {
    type Item = &'a Clause;
    type IntoIter = std::slice::Iter<'a, Clause>;

    fn into_iter(self) -> Self::IntoIter {
        self.clauses.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf_formula;

    #[test]
    fn empty_formula_is_satisfiable() {
        let f = CnfFormula::new(3);
        assert!(f.is_empty());
        assert_eq!(f.count_satisfying_assignments(), 8);
        assert!(f.evaluate(&Assignment::all_false(3)));
    }

    #[test]
    fn paper_running_example() {
        // S(x1,x2,x3) = (x1 + x2')·(x1' + x2 + x3), satisfiable by <0,0,1>
        let f = cnf_formula![[1, -2], [-1, 2, 3]];
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.num_clauses(), 2);
        assert_eq!(f.num_literals(), 5);
        assert!(f.evaluate(&Assignment::from_bools(vec![false, false, true])));
        assert!(!f.evaluate(&Assignment::from_bools(vec![false, true, false])));
    }

    #[test]
    fn example6_sat_and_example7_unsat() {
        // Example 6: (x1+x2)(x1'+x2') -- satisfiable, two models
        let sat = cnf_formula![[1, 2], [-1, -2]];
        assert_eq!(sat.count_satisfying_assignments(), 2);
        // Example 7: (x1)(x1') -- unsatisfiable
        let unsat = cnf_formula![[1], [-1]];
        assert_eq!(unsat.count_satisfying_assignments(), 0);
    }

    #[test]
    fn section_iv_instances() {
        // S_UNSAT = (x1+x2)(x1+x2')(x1'+x2)(x1'+x2')
        let unsat = cnf_formula![[1, 2], [1, -2], [-1, 2], [-1, -2]];
        assert_eq!(unsat.count_satisfying_assignments(), 0);
        // S_SAT = (x1+x2)(x1+x2)(x1+x2')(x1'+x2)   (first clause redundant)
        let sat = cnf_formula![[1, 2], [1, 2], [1, -2], [-1, 2]];
        assert_eq!(sat.count_satisfying_assignments(), 1);
        assert!(sat.evaluate(&Assignment::from_bools(vec![true, true])));
    }

    #[test]
    fn add_clause_grows_variables() {
        let mut f = CnfFormula::new(1);
        f.add_clause([Literal::from_dimacs(4).unwrap()]);
        assert_eq!(f.num_vars(), 4);
        let v = f.new_variable();
        assert_eq!(v.index(), 4);
        assert_eq!(f.num_vars(), 5);
        f.ensure_vars(3);
        assert_eq!(f.num_vars(), 5);
        f.ensure_vars(9);
        assert_eq!(f.num_vars(), 9);
    }

    #[test]
    fn try_evaluate_checks_sizes() {
        let f = cnf_formula![[1, 2]];
        let err = f.try_evaluate(&Assignment::all_false(3)).unwrap_err();
        assert!(matches!(err, CnfError::AssignmentSizeMismatch { .. }));
        assert_eq!(f.try_evaluate(&Assignment::all_true(2)), Ok(true));
    }

    #[test]
    fn evaluate_is_total_over_short_assignments() {
        let f = cnf_formula![[1, 2], [-3]];
        // The empty assignment reads every variable as false: clause (¬x3)
        // holds, clause (x1 + x2) does not.
        let empty = Assignment::from_bools(Vec::new());
        assert!(!f.evaluate(&empty));
        assert_eq!(f.count_satisfied_clauses(&empty), 1);
        // Covering just x1 = true satisfies both clauses (x3 reads false).
        let short = Assignment::from_bools(vec![true]);
        assert!(f.evaluate(&short));
        // try_evaluate still reports the width mismatch as an error.
        assert!(f.try_evaluate(&short).is_err());
    }

    #[test]
    fn partial_evaluation() {
        let f = cnf_formula![[1, 2], [-1, -2]];
        let mut p = PartialAssignment::new(2);
        assert_eq!(f.evaluate_partial(&p), None);
        p.assign(Variable::new(0), true);
        assert_eq!(f.evaluate_partial(&p), None);
        p.assign(Variable::new(1), false);
        assert_eq!(f.evaluate_partial(&p), Some(true));
        // both true falsifies the second clause
        p.assign(Variable::new(1), true);
        p.assign(Variable::new(0), true);
        assert_eq!(f.evaluate_partial(&p), Some(false));
    }

    #[test]
    fn assign_variable_reduces_formula() {
        let f = cnf_formula![[1, 2], [-1, 3]];
        let reduced = f.assign_variable(Variable::new(0), true);
        // first clause satisfied and dropped; second loses ¬x1
        assert_eq!(reduced.num_clauses(), 1);
        assert_eq!(reduced.clause(0).unwrap().len(), 1);
        assert_eq!(reduced.num_vars(), 3);

        let reduced0 = f.assign_variable(Variable::new(0), false);
        assert_eq!(reduced0.num_clauses(), 1);
        assert!(reduced0
            .clause(0)
            .unwrap()
            .contains(Literal::from_dimacs(2).unwrap()));
    }

    #[test]
    fn satisfied_clause_counting() {
        let f = cnf_formula![[1, 2], [1, -2], [-1, 2], [-1, -2]];
        let a = Assignment::from_bools(vec![true, false]);
        assert_eq!(f.count_satisfied_clauses(&a), 3);
    }

    #[test]
    fn occurring_variables_skips_unused() {
        let mut f = cnf_formula![[1], [3]];
        f.ensure_vars(5);
        let occ = f.occurring_variables();
        assert_eq!(occ, vec![Variable::new(0), Variable::new(2)]);
    }

    #[test]
    fn display_shows_product_of_sums() {
        let f = cnf_formula![[1], [-1, 2]];
        assert_eq!(f.to_string(), "(x1)·(¬x1 + x2)");
    }

    #[test]
    fn empty_clause_detection() {
        let mut f = CnfFormula::new(2);
        assert!(!f.has_empty_clause());
        f.push_clause(Clause::new());
        assert!(f.has_empty_clause());
        assert_eq!(f.count_satisfying_assignments(), 0);
    }
}
