//! Cubes: conjunctions of literals (Definition 2 of the paper).

use crate::assignment::Assignment;
use crate::var::{Literal, Variable};
use std::fmt;

/// A cube: the conjunction (AND) of one or more literals.
///
/// The NBL-SAT assignment-extraction procedure can return a *satisfying cube*
/// rather than a full minterm when some variables are don't-cares; this type
/// represents such results and the "cube subspaces" `T_v` used in the Σ_N
/// construction.
///
/// ```
/// use cnf::{Cube, Literal, Variable};
/// let cube = Cube::from_dimacs(&[-1, -2, 3]).unwrap();
/// assert_eq!(cube.to_string(), "¬x1·¬x2·x3");
/// assert_eq!(cube.num_minterms(3), 1);
/// assert_eq!(cube.num_minterms(5), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Cube {
    literals: Vec<Literal>,
}

impl Cube {
    /// Creates the empty cube, which represents the entire Boolean space
    /// (it is the conjunction of zero constraints).
    pub fn new() -> Self {
        Cube {
            literals: Vec::new(),
        }
    }

    /// Creates a cube from an iterator of literals.
    ///
    /// Literals are stored in the given order; duplicates are retained.
    pub fn from_literals<I: IntoIterator<Item = Literal>>(literals: I) -> Self {
        Cube {
            literals: literals.into_iter().collect(),
        }
    }

    /// Creates a cube from DIMACS-style signed integers.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CnfError::ZeroLiteral`] if any value is zero.
    pub fn from_dimacs(values: &[i64]) -> crate::Result<Self> {
        let mut literals = Vec::with_capacity(values.len());
        for &v in values {
            literals.push(Literal::from_dimacs(v)?);
        }
        Ok(Cube { literals })
    }

    /// Creates the minterm cube of a complete assignment.
    pub fn from_assignment(assignment: &Assignment) -> Self {
        Cube {
            literals: assignment.to_literals(),
        }
    }

    /// Adds a literal to the cube.
    pub fn push(&mut self, lit: Literal) {
        self.literals.push(lit);
    }

    /// Number of literals in the cube.
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// Returns `true` if the cube constrains no variables (full space).
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// Returns the literals of the cube.
    pub fn literals(&self) -> &[Literal] {
        &self.literals
    }

    /// Returns an iterator over the literals.
    pub fn iter(&self) -> std::slice::Iter<'_, Literal> {
        self.literals.iter()
    }

    /// Returns `true` if the cube contains contradictory literals (x and ¬x),
    /// i.e. represents the empty set of minterms.
    pub fn is_contradictory(&self) -> bool {
        self.literals.iter().any(|&l| self.literals.contains(&!l))
    }

    /// Returns the phase the cube fixes for `var`, if any.
    ///
    /// If the cube contains both phases the first occurrence wins; use
    /// [`Cube::is_contradictory`] to detect that case.
    pub fn phase_of(&self, var: Variable) -> Option<bool> {
        self.literals
            .iter()
            .find(|l| l.variable() == var)
            .map(|l| l.phase())
    }

    /// Evaluates the cube under a complete assignment (true iff all literals hold).
    pub fn evaluate(&self, assignment: &Assignment) -> bool {
        self.literals.iter().all(|&l| assignment.satisfies(l))
    }

    /// Number of minterms in the cube's subspace over `num_vars` variables:
    /// `2^(num_vars - distinct bound vars)`, or 0 if contradictory.
    ///
    /// # Panics
    ///
    /// Panics if the free-variable count exceeds 63.
    pub fn num_minterms(&self, num_vars: usize) -> u64 {
        if self.is_contradictory() {
            return 0;
        }
        let mut seen: Vec<usize> = self.literals.iter().map(|l| l.variable().index()).collect();
        seen.sort_unstable();
        seen.dedup();
        let free = num_vars - seen.len();
        assert!(free <= 63, "cube subspace too large to count");
        1u64 << free
    }

    /// Returns `true` if the cube is an implicant of `formula`: every minterm
    /// covered by the cube satisfies the formula.
    ///
    /// This is decided in linear time without expanding the cube: a cube `C`
    /// implies a clause iff the clause is a tautology or contains one of `C`'s
    /// literals (otherwise every literal of the clause can be made false by an
    /// assignment consistent with `C`), and `C` implies a CNF formula iff it
    /// implies every clause. Contradictory cubes cover no minterms and are
    /// vacuously implicants.
    ///
    /// ```
    /// use cnf::{cnf_formula, Cube};
    /// let f = cnf_formula![[1], [1, 2, 3]];
    /// assert!(Cube::from_dimacs(&[1]).unwrap().is_implicant_of(&f));
    /// assert!(!Cube::from_dimacs(&[2]).unwrap().is_implicant_of(&f));
    /// ```
    pub fn is_implicant_of(&self, formula: &crate::CnfFormula) -> bool {
        if self.is_contradictory() {
            return true;
        }
        formula.iter().all(|clause| {
            clause.is_tautology() || self.literals.iter().any(|&l| clause.contains(l))
        })
    }

    /// Returns the cube as a deduplicated assumption list for an
    /// incremental solve-under-assumptions call.
    ///
    /// A cube *is* a conjunction of literals, which is exactly what an
    /// IPASIR-style `assume` takes: solving a formula under the returned
    /// assumptions decides satisfiability restricted to the cube's subspace
    /// without re-encoding the cube as unit clauses. Duplicates are dropped
    /// (first occurrence wins, preserving order); contradictory cubes are
    /// returned as-is — the solver reports them unsatisfiable with a failed
    /// core inside the cube.
    ///
    /// ```
    /// use cnf::Cube;
    /// let cube = Cube::from_dimacs(&[-1, 2, -1]).unwrap();
    /// let assumptions = cube.to_assumptions();
    /// let dimacs: Vec<i64> = assumptions.iter().map(|l| l.to_dimacs()).collect();
    /// assert_eq!(dimacs, vec![-1, 2]);
    /// ```
    pub fn to_assumptions(&self) -> Vec<Literal> {
        let mut assumptions = Vec::with_capacity(self.literals.len());
        for &lit in &self.literals {
            if !assumptions.contains(&lit) {
                assumptions.push(lit);
            }
        }
        assumptions
    }

    /// Enumerates all assignments (minterms) contained in the cube's subspace
    /// over `num_vars` variables. Contradictory cubes yield nothing.
    pub fn expand(&self, num_vars: usize) -> Vec<Assignment> {
        if self.is_contradictory() {
            return Vec::new();
        }
        Assignment::enumerate_all(num_vars)
            .filter(|a| self.evaluate(a))
            .collect()
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.literals.is_empty() {
            return write!(f, "⊤");
        }
        for (i, lit) in self.literals.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            write!(f, "{lit}")?;
        }
        Ok(())
    }
}

impl FromIterator<Literal> for Cube {
    fn from_iter<I: IntoIterator<Item = Literal>>(iter: I) -> Self {
        Cube::from_literals(iter)
    }
}

impl Extend<Literal> for Cube {
    fn extend<I: IntoIterator<Item = Literal>>(&mut self, iter: I) {
        self.literals.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cube_is_full_space() {
        let c = Cube::new();
        assert!(c.is_empty());
        assert_eq!(c.num_minterms(3), 8);
        assert_eq!(c.to_string(), "⊤");
        assert_eq!(c.expand(2).len(), 4);
    }

    #[test]
    fn minterm_count_and_expansion() {
        let c = Cube::from_dimacs(&[1]).unwrap();
        assert_eq!(c.num_minterms(3), 4);
        let expanded = c.expand(3);
        assert_eq!(expanded.len(), 4);
        assert!(expanded.iter().all(|a| a.value(Variable::new(0))));
    }

    #[test]
    fn contradictory_cube() {
        let c = Cube::from_dimacs(&[1, -1]).unwrap();
        assert!(c.is_contradictory());
        assert_eq!(c.num_minterms(2), 0);
        assert!(c.expand(2).is_empty());
    }

    #[test]
    fn phase_lookup() {
        let c = Cube::from_dimacs(&[-2, 3]).unwrap();
        assert_eq!(c.phase_of(Variable::new(1)), Some(false));
        assert_eq!(c.phase_of(Variable::new(2)), Some(true));
        assert_eq!(c.phase_of(Variable::new(0)), None);
    }

    #[test]
    fn evaluation_and_from_assignment() {
        let a = Assignment::from_bools(vec![false, false, true]);
        let cube = Cube::from_assignment(&a);
        assert!(cube.evaluate(&a));
        assert_eq!(cube.to_string(), "¬x1·¬x2·x3");
        let other = Assignment::from_bools(vec![true, false, true]);
        assert!(!cube.evaluate(&other));
    }

    #[test]
    fn duplicate_literals_do_not_change_minterm_count() {
        let c = Cube::from_dimacs(&[1, 1]).unwrap();
        assert_eq!(c.num_minterms(2), 2);
    }

    #[test]
    fn implicant_test_matches_expansion_semantics() {
        use crate::cnf_formula;
        let f = cnf_formula![[1, 2], [-1, -2], [1, -2]];
        // x1·¬x2 is the unique satisfying minterm, hence an implicant.
        assert!(Cube::from_dimacs(&[1, -2]).unwrap().is_implicant_of(&f));
        // x1 alone covers (1,1), which falsifies (¬x1 ∨ ¬x2).
        assert!(!Cube::from_dimacs(&[1]).unwrap().is_implicant_of(&f));
        // The empty cube is an implicant only of the empty formula.
        assert!(Cube::new().is_implicant_of(&crate::CnfFormula::new(3)));
        assert!(!Cube::new().is_implicant_of(&f));
        // Tautological clauses are implied by anything.
        let taut = cnf_formula![[1, -1]];
        assert!(Cube::from_dimacs(&[2]).unwrap().is_implicant_of(&taut));
        // Contradictory cubes cover nothing, hence vacuously imply.
        assert!(Cube::from_dimacs(&[1, -1]).unwrap().is_implicant_of(&f));
        // Brute-force cross-check on every cube over 3 variables.
        let g = cnf_formula![[1, 2, 3], [-1, -2], [2, -3]];
        for dimacs in [
            vec![1],
            vec![-1, 2],
            vec![1, -2],
            vec![1, -2, 3],
            vec![-1, 2, -3],
            vec![3],
        ] {
            let cube = Cube::from_dimacs(&dimacs).unwrap();
            let expanded = cube.expand(3);
            let by_expansion = !expanded.is_empty() && expanded.iter().all(|a| g.evaluate(a));
            assert_eq!(
                cube.is_implicant_of(&g),
                by_expansion || expanded.is_empty(),
                "cube {cube}"
            );
        }
    }

    #[test]
    fn assumptions_deduplicate_and_preserve_order() {
        let c = Cube::from_dimacs(&[3, -1, 3, 2, -1]).unwrap();
        let dimacs: Vec<i64> = c.to_assumptions().iter().map(|l| l.to_dimacs()).collect();
        assert_eq!(dimacs, vec![3, -1, 2]);
        assert!(Cube::new().to_assumptions().is_empty());
        // Contradictory cubes keep both phases for the solver to refute.
        let bad = Cube::from_dimacs(&[1, -1]).unwrap();
        assert_eq!(bad.to_assumptions().len(), 2);
    }

    #[test]
    fn collect_from_iterator() {
        let c: Cube = vec![Literal::from_dimacs(2).unwrap()].into_iter().collect();
        assert_eq!(c.len(), 1);
    }
}
