//! Clauses: disjunctions of literals (Definition 3 of the paper).

use crate::assignment::{Assignment, PartialAssignment};
use crate::var::{Literal, Variable};
use std::fmt;

/// A clause: the disjunction (OR) of one or more literals.
///
/// An empty clause is permitted and is unsatisfiable by definition; it arises
/// naturally during simplification.
///
/// ```
/// use cnf::{Clause, Literal};
/// let c = Clause::from_dimacs(&[1, -2, 3]).unwrap();
/// assert_eq!(c.len(), 3);
/// assert_eq!(c.to_string(), "(x1 + ¬x2 + x3)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Clause {
    literals: Vec<Literal>,
}

impl Clause {
    /// Creates an empty clause (unsatisfiable).
    pub fn new() -> Self {
        Clause {
            literals: Vec::new(),
        }
    }

    /// Creates a clause from an iterator of literals.
    pub fn from_literals<I: IntoIterator<Item = Literal>>(literals: I) -> Self {
        Clause {
            literals: literals.into_iter().collect(),
        }
    }

    /// Creates a clause from DIMACS-style signed integers.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CnfError::ZeroLiteral`] if any value is zero.
    pub fn from_dimacs(values: &[i64]) -> crate::Result<Self> {
        let mut literals = Vec::with_capacity(values.len());
        for &v in values {
            literals.push(Literal::from_dimacs(v)?);
        }
        Ok(Clause { literals })
    }

    /// Adds a literal to the clause.
    pub fn push(&mut self, lit: Literal) {
        self.literals.push(lit);
    }

    /// Returns the number of literals in the clause.
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// Returns `true` if the clause has no literals (and is thus unsatisfiable).
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// Returns `true` if the clause has exactly one literal.
    pub fn is_unit(&self) -> bool {
        self.literals.len() == 1
    }

    /// Returns the literals of the clause as a slice.
    pub fn literals(&self) -> &[Literal] {
        &self.literals
    }

    /// Returns an iterator over the literals.
    pub fn iter(&self) -> std::slice::Iter<'_, Literal> {
        self.literals.iter()
    }

    /// Returns `true` if the clause contains the given literal.
    pub fn contains(&self, lit: Literal) -> bool {
        self.literals.contains(&lit)
    }

    /// Returns `true` if the clause contains either literal of the given variable.
    pub fn mentions(&self, var: Variable) -> bool {
        self.literals.iter().any(|l| l.variable() == var)
    }

    /// Returns `true` if the clause contains both a literal and its negation.
    pub fn is_tautology(&self) -> bool {
        self.literals.iter().any(|&l| self.literals.contains(&!l))
    }

    /// Returns the largest variable index mentioned, if any.
    pub fn max_variable_index(&self) -> Option<usize> {
        self.literals.iter().map(|l| l.variable().index()).max()
    }

    /// Evaluates the clause under a complete assignment.
    ///
    /// Total over short assignments: a variable the assignment does not cover
    /// reads `false` (so its negative literal is satisfied, its positive
    /// literal is not). The packed evaluator ([`crate::PackedFormula`])
    /// matches this behavior bit-for-bit, including in the tail word.
    pub fn evaluate(&self, assignment: &Assignment) -> bool {
        self.literals
            .iter()
            .any(|l| l.evaluate(assignment.get(l.variable()).unwrap_or(false)))
    }

    /// Evaluates the clause under a partial assignment.
    ///
    /// Returns `Some(true)` if some literal is satisfied, `Some(false)` if all
    /// literals are falsified, and `None` if the clause is still undetermined.
    /// A variable the partial assignment does not cover counts as unassigned.
    pub fn evaluate_partial(&self, assignment: &PartialAssignment) -> Option<bool> {
        let mut any_unassigned = false;
        for lit in &self.literals {
            match assignment.get(lit.variable()) {
                Some(v) if lit.evaluate(v) => return Some(true),
                Some(_) => {}
                None => any_unassigned = true,
            }
        }
        if any_unassigned {
            None
        } else {
            Some(false)
        }
    }

    /// Returns a normalized copy: literals sorted and deduplicated.
    ///
    /// Tautological clauses are preserved as-is (callers that wish to drop them
    /// should check [`Clause::is_tautology`]).
    pub fn normalized(&self) -> Clause {
        let mut lits = self.literals.clone();
        lits.sort();
        lits.dedup();
        Clause { literals: lits }
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.literals.is_empty() {
            return write!(f, "(⊥)");
        }
        write!(f, "(")?;
        for (i, lit) in self.literals.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{lit}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<Literal> for Clause {
    fn from_iter<I: IntoIterator<Item = Literal>>(iter: I) -> Self {
        Clause::from_literals(iter)
    }
}

impl Extend<Literal> for Clause {
    fn extend<I: IntoIterator<Item = Literal>>(&mut self, iter: I) {
        self.literals.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Clause {
    type Item = &'a Literal;
    type IntoIter = std::slice::Iter<'a, Literal>;

    fn into_iter(self) -> Self::IntoIter {
        self.literals.iter()
    }
}

impl IntoIterator for Clause {
    type Item = Literal;
    type IntoIter = std::vec::IntoIter<Literal>;

    fn into_iter(self) -> Self::IntoIter {
        self.literals.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::Assignment;

    fn lit(v: i64) -> Literal {
        Literal::from_dimacs(v).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let c = Clause::from_dimacs(&[1, -2]).unwrap();
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert!(!c.is_unit());
        assert!(c.contains(lit(1)));
        assert!(c.contains(lit(-2)));
        assert!(!c.contains(lit(2)));
        assert!(c.mentions(Variable::new(1)));
        assert!(!c.mentions(Variable::new(2)));
        assert_eq!(c.max_variable_index(), Some(1));
    }

    #[test]
    fn empty_clause_properties() {
        let c = Clause::new();
        assert!(c.is_empty());
        assert_eq!(c.max_variable_index(), None);
        assert_eq!(c.to_string(), "(⊥)");
        let a = Assignment::all_false(3);
        assert!(!c.evaluate(&a));
    }

    #[test]
    fn unit_detection() {
        assert!(Clause::from_dimacs(&[5]).unwrap().is_unit());
        assert!(!Clause::from_dimacs(&[5, 6]).unwrap().is_unit());
    }

    #[test]
    fn tautology_detection() {
        assert!(Clause::from_dimacs(&[1, -1]).unwrap().is_tautology());
        assert!(!Clause::from_dimacs(&[1, 2]).unwrap().is_tautology());
    }

    #[test]
    fn evaluation_complete() {
        let c = Clause::from_dimacs(&[1, -2]).unwrap();
        // x1=0, x2=1 -> both literals false
        let a = Assignment::from_bools(vec![false, true]);
        assert!(!c.evaluate(&a));
        // x1=1 -> satisfied
        let a = Assignment::from_bools(vec![true, true]);
        assert!(c.evaluate(&a));
    }

    #[test]
    fn evaluation_partial() {
        let c = Clause::from_dimacs(&[1, -2]).unwrap();
        let mut p = PartialAssignment::new(2);
        assert_eq!(c.evaluate_partial(&p), None);
        p.assign(Variable::new(0), false);
        assert_eq!(c.evaluate_partial(&p), None);
        p.assign(Variable::new(1), true);
        assert_eq!(c.evaluate_partial(&p), Some(false));
        p.unassign(Variable::new(1));
        p.assign(Variable::new(0), true);
        assert_eq!(c.evaluate_partial(&p), Some(true));
    }

    #[test]
    fn evaluation_is_total_over_short_assignments() {
        // The assignment covers only x1; x2 and x3 read false.
        let a = Assignment::from_bools(vec![true]);
        assert!(!Clause::from_dimacs(&[2]).unwrap().evaluate(&a));
        assert!(Clause::from_dimacs(&[-3]).unwrap().evaluate(&a));
        assert!(Clause::from_dimacs(&[1, 2]).unwrap().evaluate(&a));
        // An uncovered variable counts as unassigned in partial evaluation.
        let p = PartialAssignment::new(1);
        let c = Clause::from_dimacs(&[2]).unwrap();
        assert_eq!(c.evaluate_partial(&p), None);
        let mut p1 = PartialAssignment::new(1);
        p1.assign(Variable::new(0), false);
        assert_eq!(
            Clause::from_dimacs(&[1]).unwrap().evaluate_partial(&p1),
            Some(false)
        );
    }

    #[test]
    fn normalization_sorts_and_dedups() {
        let c = Clause::from_dimacs(&[3, 1, 3, -2]).unwrap();
        let n = c.normalized();
        assert_eq!(n.len(), 3);
        let codes: Vec<usize> = n.iter().map(|l| l.code()).collect();
        let mut sorted = codes.clone();
        sorted.sort();
        assert_eq!(codes, sorted);
    }

    #[test]
    fn display_matches_paper_notation() {
        let c = Clause::from_dimacs(&[1, -2, 3]).unwrap();
        assert_eq!(c.to_string(), "(x1 + ¬x2 + x3)");
    }

    #[test]
    fn collect_and_extend() {
        let c: Clause = [lit(1), lit(2)].into_iter().collect();
        assert_eq!(c.len(), 2);
        let mut c2 = Clause::new();
        c2.extend([lit(-3)]);
        assert_eq!(c2.len(), 1);
        let owned: Vec<Literal> = c.into_iter().collect();
        assert_eq!(owned.len(), 2);
    }
}
