//! Complete and partial truth assignments.

use crate::var::{Literal, Variable};
use std::fmt;

/// A complete truth assignment over `n` variables.
///
/// The assignment maps each [`Variable`] with index `< n` to a Boolean value.
/// Assignments double as *minterms*: the paper's NBL construction applies the
/// superposition of all `2^n` minterms at once, and this type is how a single
/// minterm is represented on the classical side.
///
/// ```
/// use cnf::{Assignment, Variable};
/// // minterm x1'·x2'·x3 (index 4 with x1 as MSB is not used; we use x1 as LSB)
/// let a = Assignment::from_index(3, 0b100);
/// assert!(!a.value(Variable::new(0)));
/// assert!(!a.value(Variable::new(1)));
/// assert!(a.value(Variable::new(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Assignment {
    values: Vec<bool>,
}

impl Assignment {
    /// Creates an assignment with all variables set to `false`.
    pub fn all_false(num_vars: usize) -> Self {
        Assignment {
            values: vec![false; num_vars],
        }
    }

    /// Creates an assignment with all variables set to `true`.
    pub fn all_true(num_vars: usize) -> Self {
        Assignment {
            values: vec![true; num_vars],
        }
    }

    /// Creates an assignment from an explicit vector of values.
    pub fn from_bools(values: Vec<bool>) -> Self {
        Assignment { values }
    }

    /// Creates the assignment corresponding to minterm `index` over
    /// `num_vars` variables. Bit `i` of `index` is the value of variable `i`
    /// (variable `x1` is the least-significant bit).
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 64`.
    pub fn from_index(num_vars: usize, index: u64) -> Self {
        assert!(
            num_vars <= 64,
            "minterm indices are only supported up to 64 variables"
        );
        let values = (0..num_vars).map(|i| (index >> i) & 1 == 1).collect();
        Assignment { values }
    }

    /// Returns the minterm index of this assignment (inverse of [`Assignment::from_index`]).
    ///
    /// # Panics
    ///
    /// Panics if the assignment covers more than 64 variables.
    pub fn to_index(&self) -> u64 {
        assert!(self.values.len() <= 64);
        self.values
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &v)| acc | ((v as u64) << i))
    }

    /// Returns the number of variables covered by this assignment.
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Returns the value of the given variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable index is out of range.
    pub fn value(&self, var: Variable) -> bool {
        self.values[var.index()]
    }

    /// Returns the value of the given variable, or `None` if the variable is
    /// not covered by this assignment.
    ///
    /// This is the total counterpart of [`Assignment::value`]; evaluation
    /// code treats an uncovered variable as `false`
    /// (`a.get(var).unwrap_or(false)`), so that an assignment shorter than a
    /// formula's variable count evaluates totally instead of panicking.
    pub fn get(&self, var: Variable) -> Option<bool> {
        self.values.get(var.index()).copied()
    }

    /// Sets the value of the given variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable index is out of range.
    pub fn set(&mut self, var: Variable, value: bool) {
        self.values[var.index()] = value;
    }

    /// Returns `true` if the given literal is satisfied by this assignment.
    ///
    /// Total over short assignments: a variable not covered by the assignment
    /// reads `false`, so the negative literal of an uncovered variable is
    /// satisfied and the positive literal is not.
    pub fn satisfies(&self, lit: Literal) -> bool {
        lit.evaluate(self.get(lit.variable()).unwrap_or(false))
    }

    /// Returns the values as a slice (`values()[i]` is the value of variable `i`).
    pub fn values(&self) -> &[bool] {
        &self.values
    }

    /// Returns an iterator over `(Variable, bool)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Variable, bool)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (Variable::new(i), v))
    }

    /// Returns the literals made true by this assignment, i.e. the satisfying
    /// cube/minterm in literal form (the paper writes e.g. `x1' x2' x3`).
    pub fn to_literals(&self) -> Vec<Literal> {
        self.iter()
            .map(|(var, value)| Literal::with_phase(var, value))
            .collect()
    }

    /// Enumerates all `2^n` assignments over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 63` (the iterator would not terminate or overflow).
    pub fn enumerate_all(num_vars: usize) -> impl Iterator<Item = Assignment> {
        assert!(
            num_vars <= 63,
            "cannot enumerate more than 2^63 assignments"
        );
        (0u64..(1u64 << num_vars)).map(move |i| Assignment::from_index(num_vars, i))
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", if *v { 1 } else { 0 })?;
        }
        write!(f, ">")
    }
}

impl From<Vec<bool>> for Assignment {
    fn from(values: Vec<bool>) -> Self {
        Assignment::from_bools(values)
    }
}

/// A partial truth assignment: each variable is true, false or unassigned.
///
/// Used by DPLL/CDCL-style search and by the NBL-SAT assignment-extraction
/// procedure (Algorithm 2), which fixes variables one at a time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialAssignment {
    values: Vec<Option<bool>>,
}

impl PartialAssignment {
    /// Creates a partial assignment with all variables unassigned.
    pub fn new(num_vars: usize) -> Self {
        PartialAssignment {
            values: vec![None; num_vars],
        }
    }

    /// Returns the number of variables covered.
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Returns the value of the given variable, or `None` if unassigned.
    ///
    /// # Panics
    ///
    /// Panics if the variable index is out of range.
    pub fn value(&self, var: Variable) -> Option<bool> {
        self.values[var.index()]
    }

    /// Returns the value of the given variable, or `None` if the variable is
    /// unassigned *or* not covered by this partial assignment.
    ///
    /// This is the total counterpart of [`PartialAssignment::value`], used by
    /// evaluation code that must not panic on width mismatches.
    pub fn get(&self, var: Variable) -> Option<bool> {
        self.values.get(var.index()).copied().flatten()
    }

    /// Assigns a value to a variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable index is out of range.
    pub fn assign(&mut self, var: Variable, value: bool) {
        self.values[var.index()] = Some(value);
    }

    /// Assigns the variable of a literal so that the literal becomes true.
    pub fn assign_literal(&mut self, lit: Literal) {
        self.assign(lit.variable(), lit.phase());
    }

    /// Removes the assignment of a variable.
    pub fn unassign(&mut self, var: Variable) {
        self.values[var.index()] = None;
    }

    /// Returns `true` if every variable has a value.
    pub fn is_complete(&self) -> bool {
        self.values.iter().all(Option::is_some)
    }

    /// Number of assigned variables.
    pub fn num_assigned(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }

    /// Returns the first unassigned variable, if any.
    pub fn first_unassigned(&self) -> Option<Variable> {
        self.values
            .iter()
            .position(Option::is_none)
            .map(Variable::new)
    }

    /// Converts to a complete [`Assignment`], filling unassigned variables
    /// with `default`.
    pub fn to_complete(&self, default: bool) -> Assignment {
        Assignment::from_bools(self.values.iter().map(|v| v.unwrap_or(default)).collect())
    }

    /// Converts to a complete [`Assignment`] if every variable is assigned.
    pub fn try_to_complete(&self) -> Option<Assignment> {
        if self.is_complete() {
            Some(Assignment::from_bools(
                self.values.iter().map(|v| v.unwrap()).collect(),
            ))
        } else {
            None
        }
    }

    /// Returns an iterator over the assigned `(Variable, bool)` pairs.
    pub fn assigned(&self) -> impl Iterator<Item = (Variable, bool)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|b| (Variable::new(i), b)))
    }
}

impl fmt::Display for PartialAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match v {
                Some(true) => write!(f, "1")?,
                Some(false) => write!(f, "0")?,
                None => write!(f, "-")?,
            }
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for idx in 0..16u64 {
            let a = Assignment::from_index(4, idx);
            assert_eq!(a.to_index(), idx);
        }
    }

    #[test]
    fn enumerate_all_counts() {
        assert_eq!(Assignment::enumerate_all(0).count(), 1);
        assert_eq!(Assignment::enumerate_all(3).count(), 8);
        let all: Vec<u64> = Assignment::enumerate_all(3).map(|a| a.to_index()).collect();
        assert_eq!(all, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn satisfies_literal() {
        let a = Assignment::from_index(2, 0b01); // x1=1, x2=0
        assert!(a.satisfies(Literal::from_dimacs(1).unwrap()));
        assert!(!a.satisfies(Literal::from_dimacs(-1).unwrap()));
        assert!(a.satisfies(Literal::from_dimacs(-2).unwrap()));
    }

    #[test]
    fn display_matches_paper_vector_notation() {
        let a = Assignment::from_bools(vec![false, false, true]);
        assert_eq!(a.to_string(), "<0,0,1>");
    }

    #[test]
    fn to_literals_gives_minterm() {
        let a = Assignment::from_bools(vec![false, true]);
        let lits = a.to_literals();
        assert_eq!(lits[0], Literal::from_dimacs(-1).unwrap());
        assert_eq!(lits[1], Literal::from_dimacs(2).unwrap());
    }

    #[test]
    fn partial_assignment_lifecycle() {
        let mut p = PartialAssignment::new(3);
        assert!(!p.is_complete());
        assert_eq!(p.num_assigned(), 0);
        assert_eq!(p.first_unassigned(), Some(Variable::new(0)));

        p.assign(Variable::new(0), true);
        p.assign_literal(Literal::from_dimacs(-2).unwrap());
        assert_eq!(p.value(Variable::new(0)), Some(true));
        assert_eq!(p.value(Variable::new(1)), Some(false));
        assert_eq!(p.num_assigned(), 2);
        assert_eq!(p.first_unassigned(), Some(Variable::new(2)));
        assert_eq!(p.try_to_complete(), None);

        p.assign(Variable::new(2), true);
        assert!(p.is_complete());
        let full = p.try_to_complete().unwrap();
        assert_eq!(full.values(), &[true, false, true]);

        p.unassign(Variable::new(2));
        assert!(!p.is_complete());
        assert_eq!(p.to_complete(false).values(), &[true, false, false]);
    }

    #[test]
    fn partial_display() {
        let mut p = PartialAssignment::new(3);
        p.assign(Variable::new(1), true);
        assert_eq!(p.to_string(), "<-,1,->");
    }

    #[test]
    #[should_panic]
    fn from_index_rejects_too_many_vars() {
        let _ = Assignment::from_index(65, 0);
    }

    #[test]
    fn get_is_total_over_short_assignments() {
        let a = Assignment::from_bools(vec![true, false]);
        assert_eq!(a.get(Variable::new(0)), Some(true));
        assert_eq!(a.get(Variable::new(1)), Some(false));
        assert_eq!(a.get(Variable::new(2)), None);
        // An uncovered variable reads false, so its negative literal holds.
        assert!(a.satisfies(Literal::from_dimacs(-3).unwrap()));
        assert!(!a.satisfies(Literal::from_dimacs(3).unwrap()));

        let mut p = PartialAssignment::new(2);
        p.assign(Variable::new(0), true);
        assert_eq!(p.get(Variable::new(0)), Some(true));
        assert_eq!(p.get(Variable::new(1)), None);
        assert_eq!(p.get(Variable::new(5)), None);
    }
}
