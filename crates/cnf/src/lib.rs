//! CNF substrate for the NBL-SAT reproduction.
//!
//! This crate provides the Boolean-formula data model that every other crate
//! in the workspace builds on: [`Variable`], [`Literal`], [`Clause`],
//! [`CnfFormula`], full and partial [`Assignment`]s, [`Cube`]s, DIMACS I/O,
//! workload generators (random k-SAT, pigeonhole, graph coloring, parity
//! chains, equivalence-checking miters), light preprocessing
//! (unit propagation, pure-literal elimination), and bit-packed evaluation
//! cores ([`bits`], [`packed`]) that test 64 candidate assignments per
//! machine word.
//!
//! The NBL-SAT paper (Lin, Mandal, Khatri, DAC 2012) defines a SAT instance
//! as a conjunction of `m` clauses over `n` binary variables; this crate is a
//! faithful, production-grade realization of those definitions (Definitions
//! 1–6 of the paper).
//!
//! # Example
//!
//! ```
//! use cnf::{CnfFormula, Literal, Variable};
//!
//! // S(x1,x2,x3) = (x1 + x2') (x1' + x2 + x3)   -- the paper's Section III.A example
//! let x1 = Variable::new(0);
//! let x2 = Variable::new(1);
//! let x3 = Variable::new(2);
//! let mut f = CnfFormula::new(3);
//! f.add_clause([Literal::positive(x1), Literal::negative(x2)]);
//! f.add_clause([Literal::negative(x1), Literal::positive(x2), Literal::positive(x3)]);
//!
//! assert_eq!(f.num_vars(), 3);
//! assert_eq!(f.num_clauses(), 2);
//! assert_eq!(f.num_literals(), 5);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod assignment;
pub mod bits;
pub mod canonical;
pub mod clause;
pub mod cube;
pub mod dimacs;
pub mod error;
pub mod formula;
pub mod generators;
pub mod packed;
pub mod simplify;
pub mod stats;
pub mod var;

pub use assignment::{Assignment, PartialAssignment};
pub use bits::{BitMatrix, BitVector, Word};
pub use canonical::{
    canonicalize, fingerprint, normalize, preprocess, PreprocessOutcome, PreprocessReport,
    Preprocessed, ReductionTrace,
};
pub use clause::Clause;
pub use cube::Cube;
pub use error::{CnfError, Result};
pub use formula::CnfFormula;
pub use packed::{AssignmentBlock, EvalMode, PackedFormula};
pub use simplify::{
    propagate_units, pure_literals, simplify, CubeRestriction, PropagationOutcome,
    RestrictionOutcome, SimplifyReport,
};
pub use stats::FormulaStats;
pub use var::{Literal, Variable};

/// Convenience macro for building a [`CnfFormula`] from integer literals.
///
/// Positive integers denote positive literals of 1-indexed variables (DIMACS
/// convention), negative integers denote negated literals. The number of
/// variables is inferred from the largest magnitude used.
///
/// ```
/// use cnf::cnf_formula;
///
/// // (x1 + x2) (x1' + x2')   -- Example 6 of the paper
/// let f = cnf_formula![[1, 2], [-1, -2]];
/// assert_eq!(f.num_vars(), 2);
/// assert_eq!(f.num_clauses(), 2);
/// ```
#[macro_export]
macro_rules! cnf_formula {
    [$([$($lit:expr),* $(,)?]),* $(,)?] => {{
        let clauses: Vec<Vec<i64>> = vec![$(vec![$($lit as i64),*]),*];
        $crate::CnfFormula::from_dimacs_clauses(&clauses)
            .expect("cnf_formula! literals must be non-zero and within range")
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_expected_formula() {
        let f = cnf_formula![[1, -2], [-1, 2, 3]];
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.num_clauses(), 2);
        assert_eq!(f.clause(0).unwrap().len(), 2);
        assert_eq!(f.clause(1).unwrap().len(), 3);
    }

    #[test]
    fn macro_in_function_scope() {
        fn build() -> CnfFormula {
            cnf_formula![[1], [2], [3]]
        }
        assert_eq!(build().num_clauses(), 3);
    }
}
