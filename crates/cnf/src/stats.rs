//! Formula statistics used for reporting and for the paper's scaling model.

use crate::formula::CnfFormula;
use std::fmt;

/// Summary statistics of a CNF formula.
///
/// The NBL-SAT scaling analysis (paper §III.F) depends on `n` (variables) and
/// `m` (clauses): the engine uses `2·m·n` basis noise sources and the number of
/// product terms grows as `O(2^{nm})`. This type centralizes those counts.
///
/// ```
/// use cnf::{cnf_formula, FormulaStats};
/// let f = cnf_formula![[1, 2], [1, -2], [-1, 2], [-1, -2]];
/// let s = FormulaStats::of(&f);
/// assert_eq!(s.num_vars, 2);
/// assert_eq!(s.num_clauses, 4);
/// assert_eq!(s.noise_sources(), 16);      // 2 m n
/// assert_eq!(s.max_clause_len, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FormulaStats {
    /// Number of variables `n`.
    pub num_vars: usize,
    /// Number of clauses `m`.
    pub num_clauses: usize,
    /// Total number of literal occurrences.
    pub num_literals: usize,
    /// Length of the shortest clause (0 if there are no clauses).
    pub min_clause_len: usize,
    /// Length of the longest clause (0 if there are no clauses).
    pub max_clause_len: usize,
    /// Number of unit clauses.
    pub num_unit_clauses: usize,
    /// Number of empty clauses.
    pub num_empty_clauses: usize,
}

impl FormulaStats {
    /// Computes statistics for a formula.
    pub fn of(formula: &CnfFormula) -> Self {
        let lens: Vec<usize> = formula.iter().map(|c| c.len()).collect();
        FormulaStats {
            num_vars: formula.num_vars(),
            num_clauses: formula.num_clauses(),
            num_literals: formula.num_literals(),
            min_clause_len: lens.iter().copied().min().unwrap_or(0),
            max_clause_len: lens.iter().copied().max().unwrap_or(0),
            num_unit_clauses: lens.iter().filter(|&&l| l == 1).count(),
            num_empty_clauses: lens.iter().filter(|&&l| l == 0).count(),
        }
    }

    /// Clause-to-variable ratio `m / n` (0 when there are no variables).
    pub fn clause_variable_ratio(&self) -> f64 {
        if self.num_vars == 0 {
            0.0
        } else {
            self.num_clauses as f64 / self.num_vars as f64
        }
    }

    /// Number of independent basis noise sources the NBL-SAT transform will
    /// allocate: `2 · m · n` (paper §III.C).
    pub fn noise_sources(&self) -> usize {
        2 * self.num_clauses * self.num_vars
    }

    /// `n · m`, the exponent in the paper's product-count and SNR expressions.
    pub fn nm(&self) -> usize {
        self.num_vars * self.num_clauses
    }

    /// Returns `true` when every clause has exactly `k` literals.
    pub fn is_uniform_ksat(&self, k: usize) -> bool {
        self.num_clauses > 0 && self.min_clause_len == k && self.max_clause_len == k
    }
}

impl fmt::Display for FormulaStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} m={} literals={} clause_len=[{},{}] units={} empties={} m/n={:.2}",
            self.num_vars,
            self.num_clauses,
            self.num_literals,
            self.min_clause_len,
            self.max_clause_len,
            self.num_unit_clauses,
            self.num_empty_clauses,
            self.clause_variable_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf_formula;
    use crate::CnfFormula;

    #[test]
    fn stats_of_mixed_formula() {
        let f = cnf_formula![[1], [1, 2, 3], [-2, -3]];
        let s = FormulaStats::of(&f);
        assert_eq!(s.num_vars, 3);
        assert_eq!(s.num_clauses, 3);
        assert_eq!(s.num_literals, 6);
        assert_eq!(s.min_clause_len, 1);
        assert_eq!(s.max_clause_len, 3);
        assert_eq!(s.num_unit_clauses, 1);
        assert_eq!(s.num_empty_clauses, 0);
        assert_eq!(s.noise_sources(), 18);
        assert_eq!(s.nm(), 9);
        assert!(!s.is_uniform_ksat(3));
        assert!((s.clause_variable_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_formula() {
        let f = CnfFormula::new(0);
        let s = FormulaStats::of(&f);
        assert_eq!(s.num_clauses, 0);
        assert_eq!(s.clause_variable_ratio(), 0.0);
        assert_eq!(s.noise_sources(), 0);
    }

    #[test]
    fn uniform_ksat_detection() {
        let f = cnf_formula![[1, 2, 3], [-1, 2, -3]];
        assert!(FormulaStats::of(&f).is_uniform_ksat(3));
        assert!(!FormulaStats::of(&f).is_uniform_ksat(2));
    }

    #[test]
    fn display_mentions_counts() {
        let f = cnf_formula![[1, 2]];
        let text = FormulaStats::of(&f).to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("m=1"));
    }
}
