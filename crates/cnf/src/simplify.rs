//! Light preprocessing: unit propagation and pure-literal elimination.
//!
//! These are the classical reductions every complete SAT procedure applies;
//! the baseline DPLL/CDCL solvers and the hybrid NBL-guided solver both reuse
//! them, and they are handy for shrinking instances before handing them to the
//! (exponentially scaling) NBL engines.

use crate::assignment::PartialAssignment;
use crate::clause::Clause;
use crate::formula::CnfFormula;
use crate::var::{Literal, Variable};

/// Outcome of exhaustive unit propagation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropagationOutcome {
    /// No conflict was found; the partial assignment was extended with the
    /// given implied literals (in propagation order).
    Consistent {
        /// Literals implied by unit propagation, in the order discovered.
        implied: Vec<Literal>,
    },
    /// A clause became empty under the assignment: the formula is
    /// unsatisfiable under the current partial assignment.
    Conflict {
        /// Index of the clause that became empty.
        clause_index: usize,
    },
}

impl PropagationOutcome {
    /// Returns `true` when propagation did not derive a conflict.
    pub fn is_consistent(&self) -> bool {
        matches!(self, PropagationOutcome::Consistent { .. })
    }
}

/// Performs unit propagation to a fixed point, extending `assignment` in place.
///
/// Clauses already satisfied by `assignment` are skipped; clauses reduced to a
/// single unassigned literal force that literal.
pub fn propagate_units(
    formula: &CnfFormula,
    assignment: &mut PartialAssignment,
) -> PropagationOutcome {
    let mut implied = Vec::new();
    loop {
        let mut changed = false;
        for (ci, clause) in formula.iter().enumerate() {
            let mut unassigned: Option<Literal> = None;
            let mut num_unassigned = 0usize;
            let mut satisfied = false;
            for &lit in clause.iter() {
                match assignment.value(lit.variable()) {
                    Some(v) if lit.evaluate(v) => {
                        satisfied = true;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        num_unassigned += 1;
                        unassigned = Some(lit);
                    }
                }
            }
            if satisfied {
                continue;
            }
            match num_unassigned {
                0 => return PropagationOutcome::Conflict { clause_index: ci },
                1 => {
                    let lit = unassigned.expect("counted one unassigned literal");
                    assignment.assign_literal(lit);
                    implied.push(lit);
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            return PropagationOutcome::Consistent { implied };
        }
    }
}

/// Returns the pure literals of the formula under the given partial assignment:
/// literals whose variable occurs (in not-yet-satisfied clauses) with only one
/// polarity.
pub fn pure_literals(formula: &CnfFormula, assignment: &PartialAssignment) -> Vec<Literal> {
    let n = formula.num_vars();
    let mut pos = vec![false; n];
    let mut neg = vec![false; n];
    for clause in formula.iter() {
        if clause.evaluate_partial(assignment) == Some(true) {
            continue;
        }
        for &lit in clause.iter() {
            if assignment.value(lit.variable()).is_some() {
                continue;
            }
            if lit.is_positive() {
                pos[lit.variable().index()] = true;
            } else {
                neg[lit.variable().index()] = true;
            }
        }
    }
    let mut out = Vec::new();
    for i in 0..n {
        if assignment.value(Variable::new(i)).is_some() {
            continue;
        }
        match (pos[i], neg[i]) {
            (true, false) => out.push(Literal::positive(Variable::new(i))),
            (false, true) => out.push(Literal::negative(Variable::new(i))),
            _ => {}
        }
    }
    out
}

/// Report returned by [`simplify`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimplifyReport {
    /// Literals fixed by unit propagation and pure-literal elimination.
    pub fixed: Vec<Literal>,
    /// Number of clauses removed (satisfied or tautological).
    pub removed_clauses: usize,
    /// `true` if simplification proved the formula unsatisfiable.
    pub proved_unsat: bool,
    /// `true` if simplification satisfied every clause.
    pub proved_sat: bool,
}

/// Simplifies a formula by repeated unit propagation and pure-literal
/// elimination, returning the reduced formula (over the same variable space)
/// and a report of what was done.
///
/// Tautological clauses are removed up front. The reduced formula contains
/// only the clauses not yet satisfied, with falsified literals removed.
pub fn simplify(formula: &CnfFormula) -> (CnfFormula, SimplifyReport) {
    let mut report = SimplifyReport::default();
    let mut assignment = PartialAssignment::new(formula.num_vars());

    // Drop tautologies first.
    let mut work: Vec<Clause> = Vec::with_capacity(formula.num_clauses());
    for clause in formula.iter() {
        if clause.is_tautology() {
            report.removed_clauses += 1;
        } else {
            work.push(clause.clone());
        }
    }
    let mut current = CnfFormula::from_clauses(formula.num_vars(), work);

    loop {
        match propagate_units(&current, &mut assignment) {
            PropagationOutcome::Conflict { .. } => {
                report.proved_unsat = true;
                report.fixed = assignment
                    .assigned()
                    .map(|(v, b)| Variable::literal(v, b))
                    .collect();
                return (current, report);
            }
            PropagationOutcome::Consistent { .. } => {}
        }
        let pure = pure_literals(&current, &assignment);
        if pure.is_empty() {
            break;
        }
        for lit in pure {
            assignment.assign_literal(lit);
        }
    }

    report.fixed = assignment
        .assigned()
        .map(|(v, b)| Variable::literal(v, b))
        .collect();

    // Build the residual formula under the accumulated assignment.
    let mut residual = Vec::new();
    for clause in current.iter() {
        match clause.evaluate_partial(&assignment) {
            Some(true) => {
                report.removed_clauses += 1;
            }
            Some(false) => {
                report.proved_unsat = true;
                residual.push(Clause::new());
            }
            None => {
                let reduced: Clause = clause
                    .iter()
                    .copied()
                    .filter(|l| assignment.value(l.variable()).is_none())
                    .collect();
                residual.push(reduced);
            }
        }
    }
    if residual.is_empty() && !report.proved_unsat {
        report.proved_sat = true;
    }
    current = CnfFormula::from_clauses(formula.num_vars(), residual);
    (current, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf_formula;

    #[test]
    fn unit_propagation_chains() {
        // (x1)(x1'+x2)(x2'+x3) forces x1, x2, x3.
        let f = cnf_formula![[1], [-1, 2], [-2, 3]];
        let mut a = PartialAssignment::new(3);
        let out = propagate_units(&f, &mut a);
        assert!(out.is_consistent());
        assert_eq!(a.value(Variable::new(0)), Some(true));
        assert_eq!(a.value(Variable::new(1)), Some(true));
        assert_eq!(a.value(Variable::new(2)), Some(true));
        match out {
            PropagationOutcome::Consistent { implied } => assert_eq!(implied.len(), 3),
            _ => unreachable!(),
        }
    }

    #[test]
    fn unit_propagation_detects_conflict() {
        let f = cnf_formula![[1], [-1]];
        let mut a = PartialAssignment::new(1);
        let out = propagate_units(&f, &mut a);
        assert!(!out.is_consistent());
    }

    #[test]
    fn pure_literal_detection() {
        // x1 occurs only positively, x2 both ways, x3 only negatively.
        let f = cnf_formula![[1, 2], [1, -2, -3], [-3, 2]];
        let a = PartialAssignment::new(3);
        let pures = pure_literals(&f, &a);
        assert!(pures.contains(&Literal::from_dimacs(1).unwrap()));
        assert!(pures.contains(&Literal::from_dimacs(-3).unwrap()));
        assert!(!pures.iter().any(|l| l.variable() == Variable::new(1)));
    }

    #[test]
    fn simplify_solves_horn_like_instance() {
        let f = cnf_formula![[1], [-1, 2], [-2, 3]];
        let (reduced, report) = simplify(&f);
        assert!(report.proved_sat);
        assert!(!report.proved_unsat);
        assert!(reduced.is_empty());
        assert_eq!(report.fixed.len(), 3);
    }

    #[test]
    fn simplify_detects_unsat() {
        let f = cnf_formula![[1], [-1]];
        let (_, report) = simplify(&f);
        assert!(report.proved_unsat);
    }

    #[test]
    fn simplify_removes_tautologies() {
        let f = cnf_formula![[1, -1], [2, 3]];
        let (reduced, report) = simplify(&f);
        assert!(report.removed_clauses >= 1);
        // remaining clause gets solved by pure literals
        assert!(report.proved_sat || !reduced.is_empty());
    }

    #[test]
    fn simplify_preserves_satisfiability_on_small_random_shapes() {
        let formulas = [
            cnf_formula![[1, 2], [-1, -2]],
            cnf_formula![[1, 2], [1, -2], [-1, 2], [-1, -2]],
            cnf_formula![[1, 2, 3], [-1, -2], [2, -3]],
        ];
        for f in formulas {
            let orig_sat = f.count_satisfying_assignments() > 0;
            let (reduced, report) = simplify(&f);
            if report.proved_unsat {
                assert!(!orig_sat);
            } else if report.proved_sat {
                assert!(orig_sat);
            } else {
                assert_eq!(reduced.count_satisfying_assignments() > 0, orig_sat);
            }
        }
    }
}
