//! Light preprocessing: unit propagation and pure-literal elimination.
//!
//! These are the classical reductions every complete SAT procedure applies;
//! the baseline DPLL/CDCL solvers and the hybrid NBL-guided solver both reuse
//! them, and they are handy for shrinking instances before handing them to the
//! (exponentially scaling) NBL engines.

use crate::assignment::{Assignment, PartialAssignment};
use crate::clause::Clause;
use crate::cube::Cube;
use crate::formula::CnfFormula;
use crate::var::{Literal, Variable};

/// Outcome of exhaustive unit propagation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropagationOutcome {
    /// No conflict was found; the partial assignment was extended with the
    /// given implied literals (in propagation order).
    Consistent {
        /// Literals implied by unit propagation, in the order discovered.
        implied: Vec<Literal>,
    },
    /// A clause became empty under the assignment: the formula is
    /// unsatisfiable under the current partial assignment.
    Conflict {
        /// Index of the clause that became empty.
        clause_index: usize,
    },
}

impl PropagationOutcome {
    /// Returns `true` when propagation did not derive a conflict.
    pub fn is_consistent(&self) -> bool {
        matches!(self, PropagationOutcome::Consistent { .. })
    }
}

/// Performs unit propagation to a fixed point, extending `assignment` in place.
///
/// Clauses already satisfied by `assignment` are skipped; clauses reduced to a
/// single unassigned literal force that literal.
pub fn propagate_units(
    formula: &CnfFormula,
    assignment: &mut PartialAssignment,
) -> PropagationOutcome {
    let mut implied = Vec::new();
    loop {
        let mut changed = false;
        for (ci, clause) in formula.iter().enumerate() {
            let mut unassigned: Option<Literal> = None;
            let mut num_unassigned = 0usize;
            let mut satisfied = false;
            for &lit in clause.iter() {
                match assignment.value(lit.variable()) {
                    Some(v) if lit.evaluate(v) => {
                        satisfied = true;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        num_unassigned += 1;
                        unassigned = Some(lit);
                    }
                }
            }
            if satisfied {
                continue;
            }
            match num_unassigned {
                0 => return PropagationOutcome::Conflict { clause_index: ci },
                1 => {
                    let lit = unassigned.expect("counted one unassigned literal");
                    assignment.assign_literal(lit);
                    implied.push(lit);
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            return PropagationOutcome::Consistent { implied };
        }
    }
}

/// Returns the pure literals of the formula under the given partial assignment:
/// literals whose variable occurs (in not-yet-satisfied clauses) with only one
/// polarity.
pub fn pure_literals(formula: &CnfFormula, assignment: &PartialAssignment) -> Vec<Literal> {
    let n = formula.num_vars();
    let mut pos = vec![false; n];
    let mut neg = vec![false; n];
    for clause in formula.iter() {
        if clause.evaluate_partial(assignment) == Some(true) {
            continue;
        }
        for &lit in clause.iter() {
            if assignment.value(lit.variable()).is_some() {
                continue;
            }
            if lit.is_positive() {
                pos[lit.variable().index()] = true;
            } else {
                neg[lit.variable().index()] = true;
            }
        }
    }
    let mut out = Vec::new();
    for i in 0..n {
        if assignment.value(Variable::new(i)).is_some() {
            continue;
        }
        match (pos[i], neg[i]) {
            (true, false) => out.push(Literal::positive(Variable::new(i))),
            (false, true) => out.push(Literal::negative(Variable::new(i))),
            _ => {}
        }
    }
    out
}

/// Report returned by [`simplify`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimplifyReport {
    /// Literals fixed by unit propagation and pure-literal elimination.
    pub fixed: Vec<Literal>,
    /// Number of clauses removed (satisfied or tautological).
    pub removed_clauses: usize,
    /// `true` if simplification proved the formula unsatisfiable.
    pub proved_unsat: bool,
    /// `true` if simplification satisfied every clause.
    pub proved_sat: bool,
}

/// Simplifies a formula by repeated unit propagation and pure-literal
/// elimination, returning the reduced formula (over the same variable space)
/// and a report of what was done.
///
/// Tautological clauses are removed up front. The reduced formula contains
/// only the clauses not yet satisfied, with falsified literals removed.
pub fn simplify(formula: &CnfFormula) -> (CnfFormula, SimplifyReport) {
    let mut report = SimplifyReport::default();
    let mut assignment = PartialAssignment::new(formula.num_vars());

    // Drop tautologies first.
    let mut work: Vec<Clause> = Vec::with_capacity(formula.num_clauses());
    for clause in formula.iter() {
        if clause.is_tautology() {
            report.removed_clauses += 1;
        } else {
            work.push(clause.clone());
        }
    }
    let mut current = CnfFormula::from_clauses(formula.num_vars(), work);

    loop {
        match propagate_units(&current, &mut assignment) {
            PropagationOutcome::Conflict { .. } => {
                report.proved_unsat = true;
                report.fixed = assignment
                    .assigned()
                    .map(|(v, b)| Variable::literal(v, b))
                    .collect();
                return (current, report);
            }
            PropagationOutcome::Consistent { .. } => {}
        }
        let pure = pure_literals(&current, &assignment);
        if pure.is_empty() {
            break;
        }
        for lit in pure {
            assignment.assign_literal(lit);
        }
    }

    report.fixed = assignment
        .assigned()
        .map(|(v, b)| Variable::literal(v, b))
        .collect();

    // Build the residual formula under the accumulated assignment.
    let mut residual = Vec::new();
    for clause in current.iter() {
        match clause.evaluate_partial(&assignment) {
            Some(true) => {
                report.removed_clauses += 1;
            }
            Some(false) => {
                report.proved_unsat = true;
                residual.push(Clause::new());
            }
            None => {
                let reduced: Clause = clause
                    .iter()
                    .copied()
                    .filter(|l| assignment.value(l.variable()).is_none())
                    .collect();
                residual.push(reduced);
            }
        }
    }
    if residual.is_empty() && !report.proved_unsat {
        report.proved_sat = true;
    }
    current = CnfFormula::from_clauses(formula.num_vars(), residual);
    (current, report)
}

/// Classification of a cube restriction's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestrictionOutcome {
    /// The cube (or unit propagation under it) falsifies the formula: no
    /// assignment in the cube's subspace satisfies it.
    TriviallyUnsat,
    /// The cube plus its unit-propagation consequences satisfy every clause:
    /// any assignment extending [`CubeRestriction::fixed`] is a model.
    TriviallySat,
    /// A non-trivial residual formula remains to be solved.
    Reduced,
}

/// Result of restricting a formula to a cube's subspace: the residual formula,
/// the literals that became fixed, and an outcome classification.
///
/// Produced by [`CnfFormula::restrict`]. The residual formula lives over the
/// *same* variable space as the original (variable indices are stable), but
/// never mentions a fixed variable, so a model of the residual combined with
/// `fixed` (via [`CubeRestriction::extend_model`]) is a model of the original
/// formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CubeRestriction {
    /// The residual formula: clauses not satisfied by the fixed literals, with
    /// falsified literals removed. Contains a single empty clause when the
    /// outcome is [`RestrictionOutcome::TriviallyUnsat`]; empty when
    /// [`RestrictionOutcome::TriviallySat`].
    pub formula: CnfFormula,
    /// The cube's literals plus every literal implied by unit propagation,
    /// one per variable, in variable order.
    pub fixed: Vec<Literal>,
    /// Classification of the restriction.
    pub outcome: RestrictionOutcome,
}

impl CubeRestriction {
    /// Lifts a model of the residual formula to a model of the original
    /// formula by overwriting the fixed variables' phases.
    ///
    /// Sound because the residual never mentions a fixed variable: the
    /// residual model's values for free variables are kept, and the fixed
    /// literals (cube + implied units) satisfy every dropped clause.
    pub fn extend_model(&self, model: &Assignment) -> Assignment {
        let span = self
            .fixed
            .iter()
            .map(|l| l.variable().index() + 1)
            .max()
            .unwrap_or(0)
            .max(model.num_vars());
        let mut values = model.values().to_vec();
        values.resize(span, false);
        let mut out = Assignment::from_bools(values);
        for &lit in &self.fixed {
            out.set(lit.variable(), lit.phase());
        }
        out
    }

    /// For a [`RestrictionOutcome::TriviallySat`] restriction, a model of the
    /// original formula (free variables default to `false`).
    pub fn trivial_model(&self, num_vars: usize) -> Assignment {
        self.extend_model(&Assignment::all_false(num_vars))
    }
}

impl CnfFormula {
    /// Restricts the formula to the subspace of `cube`, applying unit
    /// propagation to a fixed point.
    ///
    /// This is the cube-and-conquer work-splitting primitive: the returned
    /// residual is equisatisfiable with the original formula *within the
    /// cube's subspace*, and any residual model extends to a full model via
    /// [`CubeRestriction::extend_model`].
    ///
    /// Edge cases never panic: a contradictory cube, a conflict found by
    /// propagation, or a clause emptied by the restriction all yield
    /// [`RestrictionOutcome::TriviallyUnsat`]; a restriction that satisfies
    /// every clause yields [`RestrictionOutcome::TriviallySat`].
    pub fn restrict(&self, cube: &Cube) -> CubeRestriction {
        let span = cube
            .iter()
            .map(|l| l.variable().index() + 1)
            .max()
            .unwrap_or(0)
            .max(self.num_vars());
        let mut assignment = PartialAssignment::new(span);

        let unsat = |fixed: Vec<Literal>| CubeRestriction {
            formula: CnfFormula::from_clauses(self.num_vars(), vec![Clause::new()]),
            fixed,
            outcome: RestrictionOutcome::TriviallyUnsat,
        };

        for &lit in cube.iter() {
            match assignment.value(lit.variable()) {
                Some(v) if v != lit.phase() => {
                    // The cube itself is contradictory (x and ¬x).
                    return unsat(Vec::new());
                }
                _ => assignment.assign_literal(lit),
            }
        }

        if let PropagationOutcome::Conflict { .. } = propagate_units(self, &mut assignment) {
            let fixed = assignment
                .assigned()
                .map(|(v, b)| Variable::literal(v, b))
                .collect();
            return unsat(fixed);
        }

        let fixed: Vec<Literal> = assignment
            .assigned()
            .map(|(v, b)| Variable::literal(v, b))
            .collect();

        let mut residual = Vec::new();
        for clause in self.iter() {
            match clause.evaluate_partial(&assignment) {
                Some(true) => {}
                // Unreachable after consistent propagation (a fully falsified
                // clause is a 0-unassigned conflict), but never panic on it.
                Some(false) => return unsat(fixed),
                None => {
                    let reduced: Clause = clause
                        .iter()
                        .copied()
                        .filter(|l| assignment.value(l.variable()).is_none())
                        .collect();
                    residual.push(reduced);
                }
            }
        }

        let outcome = if residual.is_empty() {
            RestrictionOutcome::TriviallySat
        } else {
            RestrictionOutcome::Reduced
        };
        CubeRestriction {
            formula: CnfFormula::from_clauses(self.num_vars(), residual),
            fixed,
            outcome,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf_formula;

    #[test]
    fn unit_propagation_chains() {
        // (x1)(x1'+x2)(x2'+x3) forces x1, x2, x3.
        let f = cnf_formula![[1], [-1, 2], [-2, 3]];
        let mut a = PartialAssignment::new(3);
        let out = propagate_units(&f, &mut a);
        assert!(out.is_consistent());
        assert_eq!(a.value(Variable::new(0)), Some(true));
        assert_eq!(a.value(Variable::new(1)), Some(true));
        assert_eq!(a.value(Variable::new(2)), Some(true));
        match out {
            PropagationOutcome::Consistent { implied } => assert_eq!(implied.len(), 3),
            _ => unreachable!(),
        }
    }

    #[test]
    fn unit_propagation_detects_conflict() {
        let f = cnf_formula![[1], [-1]];
        let mut a = PartialAssignment::new(1);
        let out = propagate_units(&f, &mut a);
        assert!(!out.is_consistent());
    }

    #[test]
    fn pure_literal_detection() {
        // x1 occurs only positively, x2 both ways, x3 only negatively.
        let f = cnf_formula![[1, 2], [1, -2, -3], [-3, 2]];
        let a = PartialAssignment::new(3);
        let pures = pure_literals(&f, &a);
        assert!(pures.contains(&Literal::from_dimacs(1).unwrap()));
        assert!(pures.contains(&Literal::from_dimacs(-3).unwrap()));
        assert!(!pures.iter().any(|l| l.variable() == Variable::new(1)));
    }

    #[test]
    fn simplify_solves_horn_like_instance() {
        let f = cnf_formula![[1], [-1, 2], [-2, 3]];
        let (reduced, report) = simplify(&f);
        assert!(report.proved_sat);
        assert!(!report.proved_unsat);
        assert!(reduced.is_empty());
        assert_eq!(report.fixed.len(), 3);
    }

    #[test]
    fn simplify_detects_unsat() {
        let f = cnf_formula![[1], [-1]];
        let (_, report) = simplify(&f);
        assert!(report.proved_unsat);
    }

    #[test]
    fn simplify_removes_tautologies() {
        let f = cnf_formula![[1, -1], [2, 3]];
        let (reduced, report) = simplify(&f);
        assert!(report.removed_clauses >= 1);
        // remaining clause gets solved by pure literals
        assert!(report.proved_sat || !reduced.is_empty());
    }

    #[test]
    fn restrict_reduces_and_extends_models() {
        // (x1 + x2)(x1' + x3)(x2 + x3') restricted to x1: UP forces x3 from
        // the second clause, then x2 from the third.
        let f = cnf_formula![[1, 2], [-1, 3], [2, -3]];
        let cube = Cube::from_dimacs(&[1]).unwrap();
        let r = f.restrict(&cube);
        // x1 satisfies clause 0; UP forces x3 from clause 1, then x2 from
        // clause 2 — everything is fixed, nothing residual.
        assert_eq!(r.outcome, RestrictionOutcome::TriviallySat);
        assert_eq!(r.fixed.len(), 3);
        let model = r.trivial_model(f.num_vars());
        assert!(f.evaluate(&model));
    }

    #[test]
    fn restrict_keeps_variable_indices_stable() {
        let f = cnf_formula![[1, 2], [-1, -2], [3, 4], [-3, -4]];
        let cube = Cube::from_dimacs(&[1]).unwrap();
        let r = f.restrict(&cube);
        assert_eq!(r.outcome, RestrictionOutcome::Reduced);
        assert_eq!(r.formula.num_vars(), f.num_vars());
        // Clause (x1+x2) is satisfied and dropped; (-1,-2) reduces to (-2).
        // UP then fires -2, so only the x3/x4 block remains.
        for clause in r.formula.iter() {
            for &lit in clause.iter() {
                assert!(lit.variable().index() >= 2, "fixed var leaked: {lit}");
            }
        }
        // A residual model extends to a model of the original formula.
        let sub = Assignment::from_bools(vec![false, false, true, false]);
        assert!(r.formula.evaluate(&sub));
        let full = r.extend_model(&sub);
        assert!(f.evaluate(&full));
    }

    #[test]
    fn restrict_detects_trivial_unsat_via_propagation() {
        // Restricting to x1 forces x2 and ¬x2 simultaneously.
        let f = cnf_formula![[-1, 2], [-1, -2]];
        let cube = Cube::from_dimacs(&[1]).unwrap();
        let r = f.restrict(&cube);
        assert_eq!(r.outcome, RestrictionOutcome::TriviallyUnsat);
        assert!(r.formula.has_empty_clause());
    }

    #[test]
    fn restrict_handles_contradictory_cube() {
        let f = cnf_formula![[1, 2]];
        let cube = Cube::from_dimacs(&[1, -1]).unwrap();
        let r = f.restrict(&cube);
        assert_eq!(r.outcome, RestrictionOutcome::TriviallyUnsat);
    }

    #[test]
    fn restrict_empty_clause_input_is_trivially_unsat() {
        let mut f = CnfFormula::new(2);
        f.add_clause(Vec::<Literal>::new());
        let r = f.restrict(&Cube::from_dimacs(&[1]).unwrap());
        assert_eq!(r.outcome, RestrictionOutcome::TriviallyUnsat);
    }

    #[test]
    fn restrict_empty_formula_is_trivially_sat() {
        let f = CnfFormula::new(3);
        let r = f.restrict(&Cube::from_dimacs(&[-2]).unwrap());
        assert_eq!(r.outcome, RestrictionOutcome::TriviallySat);
        let model = r.trivial_model(3);
        assert!(!model.value(Variable::new(1)));
    }

    #[test]
    fn restrict_cube_beyond_formula_vars_does_not_panic() {
        let f = cnf_formula![[1, 2]];
        let cube = Cube::from_dimacs(&[5]).unwrap();
        let r = f.restrict(&cube);
        assert_eq!(r.outcome, RestrictionOutcome::Reduced);
        assert_eq!(r.formula.num_vars(), f.num_vars());
        let sub = Assignment::from_bools(vec![true, false]);
        let full = r.extend_model(&sub);
        assert!(full.value(Variable::new(4)));
        assert!(f.evaluate(&full));
    }

    #[test]
    fn restrict_agrees_with_brute_force_within_cube() {
        let formulas = [
            cnf_formula![[1, 2], [-1, -2]],
            cnf_formula![[1, 2, 3], [-1, -2], [2, -3], [-1, 3]],
            cnf_formula![[1], [-1, 2], [-2, 3], [-3, -1]],
        ];
        let cubes = [
            Cube::from_dimacs(&[1]).unwrap(),
            Cube::from_dimacs(&[-1]).unwrap(),
            Cube::from_dimacs(&[1, -2]).unwrap(),
            Cube::from_dimacs(&[-2, 3]).unwrap(),
        ];
        for f in &formulas {
            for cube in &cubes {
                // Enumerate over the joint variable span so cube variables
                // beyond the formula's space range over both phases.
                let n = f.num_vars().max(
                    cube.iter()
                        .map(|l| l.variable().index() + 1)
                        .max()
                        .unwrap_or(0),
                );
                let brute_sat =
                    Assignment::enumerate_all(n).any(|a| cube.evaluate(&a) && f.evaluate(&a));
                let r = f.restrict(cube);
                let restricted_sat = match r.outcome {
                    RestrictionOutcome::TriviallyUnsat => false,
                    RestrictionOutcome::TriviallySat => true,
                    RestrictionOutcome::Reduced => r.formula.count_satisfying_assignments() > 0,
                };
                assert_eq!(restricted_sat, brute_sat, "formula {f} cube {cube}");
                // Every restricted model extends to a model inside the cube.
                if let RestrictionOutcome::Reduced = r.outcome {
                    for a in Assignment::enumerate_all(n).filter(|a| r.formula.evaluate(a)) {
                        let full = r.extend_model(&a);
                        assert!(f.evaluate(&full), "bad extension for {f} / {cube}");
                        assert!(cube.evaluate(&full));
                    }
                }
            }
        }
    }

    #[test]
    fn simplify_preserves_satisfiability_on_small_random_shapes() {
        let formulas = [
            cnf_formula![[1, 2], [-1, -2]],
            cnf_formula![[1, 2], [1, -2], [-1, 2], [-1, -2]],
            cnf_formula![[1, 2, 3], [-1, -2], [2, -3]],
        ];
        for f in formulas {
            let orig_sat = f.count_satisfying_assignments() > 0;
            let (reduced, report) = simplify(&f);
            if report.proved_unsat {
                assert!(!orig_sat);
            } else if report.proved_sat {
                assert!(orig_sat);
            } else {
                assert_eq!(reduced.count_satisfying_assignments() > 0, orig_sat);
            }
        }
    }
}
