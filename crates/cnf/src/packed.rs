//! Packed evaluation cores: 64 candidate assignments per word op.
//!
//! Built on [`crate::bits`], this module holds the two data structures the
//! bit-parallel hot paths run on:
//!
//! * [`AssignmentBlock`] — up to 64 candidate assignments stored
//!   *variable-major*: one [`Word`] per variable whose bit `l` is the value
//!   of that variable in candidate lane `l`. A single AND/OR/NOT over such a
//!   word evaluates a literal against all lanes at once.
//! * [`PackedFormula`] — a CNF formula compiled to flat literal tables and
//!   per-clause sparse word masks, with evaluators for whole blocks
//!   ([`PackedFormula::eval_block`]) and for a single bit-packed assignment
//!   ([`PackedFormula::satisfied`]).
//!
//! Semantics match the scalar evaluators bit-for-bit, including the
//! tail-word convention and the "missing variable reads false" totality rule
//! of [`crate::Clause::evaluate`]: a lane (or bit vector) covering fewer
//! variables than the formula reads `false` for the uncovered variables.
//!
//! [`EvalMode`] is the workspace-wide switch the solver and engine
//! configurations use to select between the scalar reference path and the
//! packed path.

use crate::assignment::Assignment;
use crate::bits::{BitMatrix, BitVector, Word, WORD_BITS};
use crate::clause::Clause;
use crate::formula::CnfFormula;
use crate::var::Variable;

/// Selects the evaluation core used by solvers and engines.
///
/// The scalar path is the reference implementation and differential oracle;
/// the packed path is the bit-parallel rewrite that must (and, per the
/// differential test suites, does) produce bit-identical observable results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvalMode {
    /// One assignment at a time over `Vec<bool>` — the reference oracle.
    Scalar,
    /// 64 assignments (or candidate flips, or minterms) per `u64` word.
    #[default]
    Packed,
}

/// A block of up to 64 candidate assignments in variable-major bit layout.
///
/// Row `v` of the backing matrix is a single [`Word`] whose bit `l` holds the
/// value of variable `v` in lane `l`. Lanes past [`AssignmentBlock::lanes`]
/// are kept zero (the tail convention), and variables past
/// [`AssignmentBlock::num_vars`] read [`Word::ZERO`] — every lane treats
/// uncovered variables as `false`, exactly like scalar evaluation.
///
/// ```
/// use cnf::{Assignment, AssignmentBlock};
/// let a = Assignment::from_bools(vec![true, false]);
/// let b = Assignment::from_bools(vec![false, true]);
/// let block = AssignmentBlock::from_assignments(&[a.clone(), b]);
/// assert_eq!(block.lanes(), 2);
/// assert_eq!(block.lane(0), a);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssignmentBlock {
    matrix: BitMatrix,
    lanes: usize,
}

/// Bit patterns of the low six minterm-index bits: `LOW_PATTERNS[i]` has bit
/// `l` set iff `(l >> i) & 1 == 1`.
const LOW_PATTERNS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

impl AssignmentBlock {
    /// Packs a slice of assignments (one per lane, in order).
    ///
    /// The block covers the maximum variable count over the inputs; a lane
    /// whose assignment is shorter reads `false` for its uncovered variables,
    /// matching scalar totality.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 assignments are given.
    pub fn from_assignments(assignments: &[Assignment]) -> Self {
        assert!(
            assignments.len() <= WORD_BITS,
            "a block holds at most {WORD_BITS} lanes"
        );
        let num_vars = assignments
            .iter()
            .map(Assignment::num_vars)
            .max()
            .unwrap_or(0);
        let mut matrix = BitMatrix::zeros(num_vars, assignments.len());
        for (lane, a) in assignments.iter().enumerate() {
            for (var, &value) in a.values().iter().enumerate() {
                if value {
                    matrix.set(var, lane, true);
                }
            }
        }
        AssignmentBlock {
            matrix,
            lanes: assignments.len(),
        }
    }

    /// Packs `lanes` copies of one assignment.
    ///
    /// # Panics
    ///
    /// Panics if `lanes > 64`.
    pub fn broadcast(assignment: &Assignment, lanes: usize) -> Self {
        assert!(
            lanes <= WORD_BITS,
            "a block holds at most {WORD_BITS} lanes"
        );
        let mask = Word::tail_mask(lanes);
        let mut matrix = BitMatrix::zeros(assignment.num_vars(), lanes);
        for (var, &value) in assignment.values().iter().enumerate() {
            if value {
                matrix.row_mut(var)[0] = mask;
            }
        }
        AssignmentBlock { matrix, lanes }
    }

    /// Packs one candidate flip per lane: lane `l` is `base` with variable
    /// `flips[l]` negated. This is the block WalkSAT/GSAT-style flip scoring
    /// evaluates in one pass.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 flips are given or a flipped variable is not
    /// covered by `base`.
    pub fn with_flips(base: &Assignment, flips: &[Variable]) -> Self {
        assert!(
            flips.len() <= WORD_BITS,
            "a block holds at most {WORD_BITS} lanes"
        );
        let mut block = AssignmentBlock::broadcast(base, flips.len());
        for (lane, &var) in flips.iter().enumerate() {
            let flipped = !base.value(var);
            block.matrix.set(var.index(), lane, flipped);
        }
        block
    }

    /// Packs the minterms `first .. first + lanes` over `num_vars` variables
    /// (bit `i` of the minterm index is the value of variable `i`, as in
    /// [`Assignment::from_index`]). This is the block the packed brute-force
    /// solver enumerates.
    ///
    /// # Panics
    ///
    /// Panics if `first` is not a multiple of 64, `lanes > 64`, or
    /// `num_vars > 64`.
    pub fn minterm_range(num_vars: usize, first: u64, lanes: usize) -> Self {
        assert!(
            first.is_multiple_of(WORD_BITS as u64),
            "first minterm must be 64-aligned"
        );
        assert!(
            lanes <= WORD_BITS,
            "a block holds at most {WORD_BITS} lanes"
        );
        assert!(num_vars <= 64, "minterm indices cover at most 64 variables");
        let mask = Word::tail_mask(lanes);
        let mut matrix = BitMatrix::zeros(num_vars, lanes);
        for var in 0..num_vars {
            // Lane l holds minterm first + l; with first 64-aligned the low
            // six index bits come straight from l, higher bits from `first`.
            let pattern = match LOW_PATTERNS.get(var) {
                Some(&low) => low,
                None if (first >> var) & 1 == 1 => u64::MAX,
                None => 0,
            };
            matrix.row_mut(var)[0] = Word(pattern) & mask;
        }
        AssignmentBlock { matrix, lanes }
    }

    /// Number of candidate lanes (at most 64).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of variables covered by the block.
    pub fn num_vars(&self) -> usize {
        self.matrix.rows()
    }

    /// The word with ones in exactly the valid lanes.
    pub fn lane_mask(&self) -> Word {
        Word::tail_mask(self.lanes)
    }

    /// The lane word of variable `var` — bit `l` is the variable's value in
    /// lane `l`. Total: variables past the block read [`Word::ZERO`]
    /// (every lane sees `false`).
    pub fn var_word(&self, var: Variable) -> Word {
        if var.index() < self.matrix.rows() {
            self.matrix.row(var.index())[0]
        } else {
            Word::ZERO
        }
    }

    /// Extracts lane `l` back into a scalar [`Assignment`].
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes`.
    pub fn lane(&self, lane: usize) -> Assignment {
        assert!(
            lane < self.lanes,
            "lane {lane} out of range ({})",
            self.lanes
        );
        Assignment::from_bools(
            (0..self.matrix.rows())
                .map(|v| self.matrix.get(v, lane))
                .collect(),
        )
    }
}

/// A CNF formula compiled for packed evaluation.
///
/// Two complementary representations are prebuilt from the same clauses:
///
/// * a flat literal table (per-clause `(variable, phase)` runs) driving the
///   block evaluator, which tests 64 candidate assignments per word op;
/// * per-clause sparse word masks (`(word_index, positive_mask,
///   negative_mask)` runs) driving the single-assignment evaluator over a
///   [`BitVector`], which tests 64 *variables* per word op.
///
/// ```
/// use cnf::{cnf_formula, Assignment, AssignmentBlock, PackedFormula};
/// let f = cnf_formula![[1, -2], [-1, 2, 3]];
/// let packed = PackedFormula::new(&f);
/// let block = AssignmentBlock::from_assignments(&[
///     Assignment::from_bools(vec![false, false, true]), // model
///     Assignment::from_bools(vec![false, true, false]), // non-model
/// ]);
/// assert_eq!(packed.eval_block(&block).0, 0b01);
/// ```
#[derive(Debug, Clone)]
pub struct PackedFormula {
    num_vars: usize,
    /// Flattened `(variable index, phase)` pairs of every clause.
    lits: Vec<(u32, bool)>,
    /// `lit_ranges[c]..lit_ranges[c + 1]` indexes clause `c`'s run in `lits`.
    lit_ranges: Vec<u32>,
    /// Flattened `(word index, positive mask, negative mask)` runs.
    masks: Vec<(u32, u64, u64)>,
    /// `mask_ranges[c]..mask_ranges[c + 1]` indexes clause `c`'s run in `masks`.
    mask_ranges: Vec<u32>,
}

impl PackedFormula {
    /// Compiles a formula for packed evaluation.
    pub fn new(formula: &CnfFormula) -> Self {
        let mut lits = Vec::with_capacity(formula.num_literals());
        let mut lit_ranges = Vec::with_capacity(formula.num_clauses() + 1);
        let mut masks = Vec::new();
        let mut mask_ranges = Vec::with_capacity(formula.num_clauses() + 1);
        lit_ranges.push(0);
        mask_ranges.push(0);
        for clause in formula.iter() {
            for &lit in clause.iter() {
                lits.push((lit.variable().index() as u32, lit.is_positive()));
            }
            lit_ranges.push(lits.len() as u32);
            Self::push_clause_masks(clause, &mut masks);
            mask_ranges.push(masks.len() as u32);
        }
        PackedFormula {
            num_vars: formula.num_vars(),
            lits,
            lit_ranges,
            masks,
            mask_ranges,
        }
    }

    /// Collects the sparse `(word, pos, neg)` mask run of one clause, merging
    /// literals that fall in the same word and sorting runs by word index.
    fn push_clause_masks(clause: &Clause, masks: &mut Vec<(u32, u64, u64)>) {
        let start = masks.len();
        for &lit in clause.iter() {
            let var = lit.variable().index();
            let word = (var / WORD_BITS) as u32;
            let bit = 1u64 << (var % WORD_BITS);
            let entry = match masks[start..].iter_mut().find(|(w, _, _)| *w == word) {
                Some(entry) => entry,
                None => {
                    masks.push((word, 0, 0));
                    masks.last_mut().expect("just pushed")
                }
            };
            if lit.is_positive() {
                entry.1 |= bit;
            } else {
                entry.2 |= bit;
            }
        }
        masks[start..].sort_unstable_by_key(|&(w, _, _)| w);
    }

    /// Number of variables of the source formula.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.lit_ranges.len() - 1
    }

    /// The `(variable index, phase)` pairs of clause `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn clause_literals(&self, c: usize) -> &[(u32, bool)] {
        &self.lits[self.lit_ranges[c] as usize..self.lit_ranges[c + 1] as usize]
    }

    /// Evaluates clause `c` against every lane of a block: bit `l` of the
    /// result is set iff lane `l` satisfies the clause. Lanes past the block
    /// are zero; an empty clause yields [`Word::ZERO`].
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn clause_block(&self, c: usize, block: &AssignmentBlock) -> Word {
        let mut sat = Word::ZERO;
        for &(var, positive) in self.clause_literals(c) {
            let w = block.var_word(Variable::new(var as usize));
            sat |= if positive { w } else { !w };
        }
        sat & block.lane_mask()
    }

    /// Evaluates the whole formula against every lane of a block: bit `l` of
    /// the result is set iff lane `l` satisfies every clause.
    pub fn eval_block(&self, block: &AssignmentBlock) -> Word {
        let mut sat = block.lane_mask();
        for c in 0..self.num_clauses() {
            sat &= self.clause_block(c, block);
            if sat.is_zero() {
                break;
            }
        }
        sat
    }

    /// Evaluates clause `c` against one bit-packed assignment, 64 variables
    /// per word op. Total like [`Clause::evaluate`]: variables past the
    /// vector read `false`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn clause_satisfied(&self, c: usize, assignment: &BitVector) -> bool {
        let run = &self.masks[self.mask_ranges[c] as usize..self.mask_ranges[c + 1] as usize];
        run.iter().any(|&(word, pos, neg)| {
            let a = assignment.word(word as usize).0;
            (pos & a) | (neg & !a) != 0
        })
    }

    /// Evaluates the whole formula against one bit-packed assignment.
    pub fn satisfied(&self, assignment: &BitVector) -> bool {
        (0..self.num_clauses()).all(|c| self.clause_satisfied(c, assignment))
    }

    /// Index of the first clause the assignment falsifies, if any — the
    /// packed counterpart of scanning `formula.iter()` for an unsatisfied
    /// clause in formula order.
    pub fn first_unsatisfied(&self, assignment: &BitVector) -> Option<usize> {
        (0..self.num_clauses()).find(|&c| !self.clause_satisfied(c, assignment))
    }

    /// Number of clauses the assignment satisfies.
    pub fn count_satisfied(&self, assignment: &BitVector) -> usize {
        (0..self.num_clauses())
            .filter(|&c| self.clause_satisfied(c, assignment))
            .count()
    }
}

impl From<&CnfFormula> for PackedFormula {
    fn from(formula: &CnfFormula) -> Self {
        PackedFormula::new(formula)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf_formula;

    #[test]
    fn eval_mode_defaults_to_packed() {
        assert_eq!(EvalMode::default(), EvalMode::Packed);
        assert_ne!(EvalMode::Scalar, EvalMode::Packed);
    }

    #[test]
    fn block_from_assignments_roundtrips_lanes() {
        let a = Assignment::from_bools(vec![true, false, true]);
        let b = Assignment::from_bools(vec![false]); // shorter lane
        let block = AssignmentBlock::from_assignments(&[a.clone(), b]);
        assert_eq!(block.lanes(), 2);
        assert_eq!(block.num_vars(), 3);
        assert_eq!(block.lane(0), a);
        // The short lane reads false for its uncovered variables.
        assert_eq!(block.lane(1), Assignment::all_false(3));
        assert_eq!(block.lane_mask(), Word(0b11));
        assert_eq!(block.var_word(Variable::new(0)), Word(0b01));
        assert_eq!(block.var_word(Variable::new(9)), Word::ZERO);
    }

    #[test]
    fn block_broadcast_fills_all_lanes() {
        let a = Assignment::from_bools(vec![true, false]);
        let block = AssignmentBlock::broadcast(&a, 5);
        for lane in 0..5 {
            assert_eq!(block.lane(lane), a);
        }
        assert_eq!(block.var_word(Variable::new(0)), Word(0b11111));
    }

    #[test]
    fn block_with_flips_negates_one_var_per_lane() {
        let base = Assignment::from_bools(vec![true, false, true]);
        let flips = [Variable::new(1), Variable::new(0), Variable::new(1)];
        let block = AssignmentBlock::with_flips(&base, &flips);
        assert_eq!(block.lane(0).values(), &[true, true, true]);
        assert_eq!(block.lane(1).values(), &[false, false, true]);
        assert_eq!(block.lane(2).values(), &[true, true, true]);
    }

    #[test]
    fn block_minterm_range_matches_from_index() {
        for num_vars in [0usize, 1, 3, 7] {
            let total = 1u64 << num_vars;
            let mut first = 0;
            while first < total {
                let lanes = 64.min((total - first) as usize);
                let block = AssignmentBlock::minterm_range(num_vars, first, lanes);
                for lane in 0..lanes {
                    assert_eq!(
                        block.lane(lane),
                        Assignment::from_index(num_vars, first + lane as u64),
                        "minterm {} over {num_vars} vars",
                        first + lane as u64
                    );
                }
                first += 64;
            }
        }
    }

    #[test]
    #[should_panic(expected = "64-aligned")]
    fn minterm_range_rejects_unaligned_start() {
        let _ = AssignmentBlock::minterm_range(8, 3, 4);
    }

    #[test]
    fn packed_formula_block_eval_matches_scalar() {
        let f = cnf_formula![[1, -2], [-1, 2, 3]];
        let packed = PackedFormula::new(&f);
        assert_eq!(packed.num_vars(), 3);
        assert_eq!(packed.num_clauses(), 2);
        let all: Vec<Assignment> = Assignment::enumerate_all(3).collect();
        let block = AssignmentBlock::from_assignments(&all);
        let sat = packed.eval_block(&block);
        for (lane, a) in all.iter().enumerate() {
            assert_eq!(sat.bit(lane), f.evaluate(a), "lane {lane}");
            for (c, clause) in f.iter().enumerate() {
                assert_eq!(packed.clause_block(c, &block).bit(lane), clause.evaluate(a));
            }
        }
    }

    #[test]
    fn packed_formula_bitvector_eval_matches_scalar() {
        let f = cnf_formula![[1, 2], [-1, -2], [-3]];
        let packed = PackedFormula::new(&f);
        for a in Assignment::enumerate_all(3) {
            let bits = BitVector::from(&a);
            assert_eq!(packed.satisfied(&bits), f.evaluate(&a));
            assert_eq!(packed.count_satisfied(&bits), f.count_satisfied_clauses(&a));
            assert_eq!(
                packed.first_unsatisfied(&bits),
                f.iter().position(|c| !c.evaluate(&a))
            );
        }
    }

    #[test]
    fn packed_eval_is_total_over_short_vectors() {
        // x65 forces a second word; the short vector covers only x1.
        let f = cnf_formula![[1, -65], [-2]];
        let packed = PackedFormula::new(&f);
        let short = BitVector::from_bools(&[true]);
        // x65 and x2 read false: ¬x65 and ¬x2 hold, so both clauses hold.
        assert!(packed.satisfied(&short));
        assert!(f.evaluate(&short.to_assignment()));
        let block = AssignmentBlock::from_assignments(&[short.to_assignment()]);
        assert_eq!(packed.eval_block(&block), Word(1));
    }

    #[test]
    fn empty_and_tautological_clauses() {
        let mut f = CnfFormula::new(2);
        f.push_clause(Clause::new());
        let packed = PackedFormula::new(&f);
        let block = AssignmentBlock::from_assignments(&[Assignment::all_true(2)]);
        assert_eq!(packed.eval_block(&block), Word::ZERO);
        assert!(!packed.satisfied(&BitVector::from_bools(&[true, true])));

        let taut = cnf_formula![[1, -1]];
        let tp = PackedFormula::new(&taut);
        for a in Assignment::enumerate_all(1) {
            assert!(tp.satisfied(&BitVector::from(&a)));
            let block = AssignmentBlock::from_assignments(&[a]);
            assert_eq!(tp.eval_block(&block), Word(1));
        }
    }
}
