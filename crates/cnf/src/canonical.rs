//! Canonical preprocessing for the solve pipeline: deterministic
//! normalization, unit/pure reduction with an invertible [`ReductionTrace`],
//! and a renaming-invariant canonical form usable as a cache key.
//!
//! The NBL engines of the paper scale exponentially in *live* variables, so
//! every variable removed before dispatch widens the range the stack can
//! serve. This module is the front half of that story:
//!
//! 1. [`normalize`] — a deterministic, idempotent cleanup (sort literals
//!    within clauses, drop duplicate literals, duplicate clauses and
//!    tautologies) that never changes the set of models.
//! 2. [`preprocess`] — normalization followed by the unit-propagation /
//!    pure-literal fixpoint of [`mod@crate::simplify`], then a renaming of the
//!    surviving variables to a dense canonical order. The result is either an
//!    outright verdict (with a model in the caller's variable space when
//!    satisfiable) or a reduced formula plus the [`ReductionTrace`] that maps
//!    models and literals back.
//! 3. [`canonicalize`] / [`fingerprint`] — a canonical variable order
//!    computed by iterative signature refinement (with a budgeted
//!    individualize-and-refine tie-break), so two formulas that differ only
//!    by a variable renaming and clause/literal permutations map to the
//!    *same* reduced formula and therefore the same fingerprint. A verdict
//!    cache keyed this way answers renamed resubmissions without a solve.

use crate::assignment::Assignment;
use crate::clause::Clause;
use crate::formula::CnfFormula;
use crate::simplify::simplify;
use crate::var::{Literal, Variable};

/// Leaf budget of the individualize-and-refine tie-break search: how many
/// complete candidate orderings [`canonicalize`] may encode before falling
/// back to the deterministic (but not renaming-invariant) input-order
/// tie-break. Highly symmetric formulas are the only way to exceed it, and
/// the fallback only costs cache hit rate, never correctness.
const CANONICAL_LEAF_BUDGET: usize = 64;

/// Returns a deterministic, idempotent normal form of `formula`: literals
/// sorted and deduplicated within each clause, tautological clauses dropped,
/// clauses sorted lexicographically and deduplicated. The variable count is
/// preserved, so `normalize(normalize(f)) == normalize(f)` and the set of
/// satisfying assignments is unchanged.
pub fn normalize(formula: &CnfFormula) -> CnfFormula {
    let mut clauses: Vec<Clause> = formula
        .iter()
        .filter(|clause| !clause.is_tautology())
        .map(Clause::normalized)
        .collect();
    clauses.sort_by(|a, b| {
        a.iter()
            .map(|lit| lit.code())
            .cmp(b.iter().map(|lit| lit.code()))
    });
    clauses.dedup();
    CnfFormula::from_clauses(formula.num_vars(), clauses)
}

/// The invertible record of one [`preprocess`] reduction: which literals were
/// forced (unit propagation, pure literals) in the *original* variable space,
/// and how the surviving variables were renamed to the dense canonical order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReductionTrace {
    original_vars: usize,
    /// Literals fixed during simplification, in the original variable space.
    forced: Vec<Literal>,
    /// Canonical index → original variable, for every surviving variable.
    kept: Vec<Variable>,
}

impl ReductionTrace {
    /// Number of variables the caller's formula had.
    pub fn original_vars(&self) -> usize {
        self.original_vars
    }

    /// Number of variables surviving in the reduced formula.
    pub fn reduced_vars(&self) -> usize {
        self.kept.len()
    }

    /// How many of the caller's variables the reduction eliminated.
    pub fn vars_removed(&self) -> usize {
        self.original_vars - self.kept.len()
    }

    /// The literals fixed by simplification, in the original variable space.
    pub fn forced(&self) -> &[Literal] {
        &self.forced
    }

    /// The original variable behind a canonical one, or `None` when the
    /// canonical index is out of range.
    pub fn original_variable(&self, canonical: Variable) -> Option<Variable> {
        self.kept.get(canonical.index()).copied()
    }

    /// Maps a literal of the reduced formula back to the caller's variable
    /// space (the polarity is preserved; only variables are renamed).
    pub fn lift_literal(&self, lit: Literal) -> Option<Literal> {
        self.original_variable(lit.variable())
            .map(|var| var.literal(lit.phase()))
    }

    /// Lifts a model of the reduced formula to a complete assignment in the
    /// caller's variable space: forced literals take their forced value,
    /// surviving variables take the model's value, and variables eliminated
    /// as unconstrained default to `false`.
    pub fn lift_model(&self, model: &Assignment) -> Assignment {
        let mut lifted = Assignment::all_false(self.original_vars);
        for &lit in &self.forced {
            lifted.set(lit.variable(), lit.is_positive());
        }
        for (canonical, &original) in self.kept.iter().enumerate() {
            lifted.set(original, model.value(Variable::new(canonical)));
        }
        lifted
    }
}

/// What [`preprocess`] decided about a formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PreprocessOutcome {
    /// Simplification satisfied every clause; the model is in the caller's
    /// variable space (unconstrained variables default to `false`).
    Satisfiable(Assignment),
    /// Simplification derived the empty clause: unsatisfiable.
    Unsatisfiable,
    /// A non-trivial residual remains: the reduced formula, renamed to the
    /// dense canonical order, plus the trace mapping back.
    Reduced {
        /// The reduced formula over the dense canonical variables.
        formula: CnfFormula,
        /// The invertible record mapping models and literals back to the
        /// caller's variable space.
        trace: ReductionTrace,
    },
}

/// Size telemetry of one [`preprocess`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PreprocessReport {
    /// Variables in the caller's formula.
    pub original_vars: usize,
    /// Clauses in the caller's formula.
    pub original_clauses: usize,
    /// Variables in the reduced formula (0 when solved outright).
    pub reduced_vars: usize,
    /// Clauses in the reduced formula (0 when solved outright).
    pub reduced_clauses: usize,
    /// Literals fixed by unit propagation and pure-literal elimination.
    pub forced_literals: usize,
}

impl PreprocessReport {
    /// Variables eliminated by the reduction.
    pub fn vars_removed(&self) -> usize {
        self.original_vars.saturating_sub(self.reduced_vars)
    }

    /// Clauses eliminated by the reduction.
    pub fn clauses_removed(&self) -> usize {
        self.original_clauses.saturating_sub(self.reduced_clauses)
    }
}

/// The result of [`preprocess`]: the decision plus size telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Preprocessed {
    /// What preprocessing decided.
    pub outcome: PreprocessOutcome,
    /// Size telemetry of the reduction.
    pub report: PreprocessReport,
}

/// Runs the full preprocessing stage: [`normalize`], the unit-propagation /
/// pure-literal fixpoint of [`simplify`], a second normalization of the
/// residual, then [`canonicalize`] to the dense canonical variable order.
///
/// The reduction is verdict-preserving: the reduced formula is satisfiable
/// exactly when the caller's formula is, and
/// [`ReductionTrace::lift_model`] turns any model of the reduced formula
/// into a model of the caller's formula.
pub fn preprocess(formula: &CnfFormula) -> Preprocessed {
    let mut report = PreprocessReport {
        original_vars: formula.num_vars(),
        original_clauses: formula.num_clauses(),
        ..PreprocessReport::default()
    };
    let normalized = normalize(formula);
    if normalized.has_empty_clause() {
        return Preprocessed {
            outcome: PreprocessOutcome::Unsatisfiable,
            report,
        };
    }
    let (residual, simplified) = simplify(&normalized);
    report.forced_literals = simplified.fixed.len();
    if simplified.proved_unsat {
        return Preprocessed {
            outcome: PreprocessOutcome::Unsatisfiable,
            report,
        };
    }
    if simplified.proved_sat {
        let mut model = Assignment::all_false(formula.num_vars());
        for lit in &simplified.fixed {
            model.set(lit.variable(), lit.is_positive());
        }
        return Preprocessed {
            outcome: PreprocessOutcome::Satisfiable(model),
            report,
        };
    }
    // Literal removal can leave equal clauses behind; normalize again so the
    // canonical form never depends on the order simplification visited them.
    let residual = normalize(&residual);
    let (reduced, kept) = canonicalize(&residual);
    report.reduced_vars = reduced.num_vars();
    report.reduced_clauses = reduced.num_clauses();
    let trace = ReductionTrace {
        original_vars: formula.num_vars(),
        forced: simplified.fixed,
        kept,
    };
    Preprocessed {
        outcome: PreprocessOutcome::Reduced {
            formula: reduced,
            trace,
        },
        report,
    }
}

/// Renames the occurring variables of `formula` to a dense canonical order
/// and returns the renamed formula together with the order (new index →
/// original variable).
///
/// The order is computed by iterative signature refinement over the
/// variable–clause incidence structure (a Weisfeiler–Lehman-style coloring
/// that is invariant under variable renaming and clause/literal
/// permutations); remaining ties are broken by a budgeted
/// individualize-and-refine search for the lexicographically minimal
/// encoding. Within the budget, two formulas differing only by a renaming
/// produce the *same* canonical formula. Beyond it (pathologically symmetric
/// inputs), the tie-break degrades to input order — still deterministic,
/// merely not renaming-invariant.
pub fn canonicalize(formula: &CnfFormula) -> (CnfFormula, Vec<Variable>) {
    let vars = formula.occurring_variables();
    if vars.is_empty() {
        return (CnfFormula::new(0), Vec::new());
    }
    let mut local = vec![usize::MAX; formula.num_vars()];
    for (i, var) in vars.iter().enumerate() {
        local[var.index()] = i;
    }
    // Clauses as (local var, phase) pairs.
    let clauses: Vec<Vec<(usize, bool)>> = formula
        .iter()
        .map(|clause| {
            clause
                .iter()
                .map(|lit| (local[lit.variable().index()], lit.phase()))
                .collect()
        })
        .collect();
    let mut occurrences: Vec<Vec<(usize, bool)>> = vec![Vec::new(); vars.len()];
    for (c, clause) in clauses.iter().enumerate() {
        for &(v, phase) in clause {
            occurrences[v].push((c, phase));
        }
    }
    let colors = refine(&clauses, &occurrences, vec![0; vars.len()]);
    let order = if distinct(&colors) == vars.len() {
        order_by_color(&colors)
    } else {
        let mut budget = CANONICAL_LEAF_BUDGET;
        match lex_min_order(&clauses, &occurrences, &colors, &mut budget) {
            Some((_, order)) => order,
            // Budget exhausted: deterministic fallback by (color, input
            // index). Loses renaming invariance, never correctness.
            None => order_by_color(&colors),
        }
    };
    // `order[new] = local var index`; build the renamed formula.
    let mut rename = vec![0usize; vars.len()];
    for (new, &old_local) in order.iter().enumerate() {
        rename[old_local] = new;
    }
    let renamed: Vec<Clause> = clauses
        .iter()
        .map(|clause| {
            clause
                .iter()
                .map(|&(v, phase)| Variable::new(rename[v]).literal(phase))
                .collect()
        })
        .collect();
    let canonical = normalize(&CnfFormula::from_clauses(vars.len(), renamed));
    let kept: Vec<Variable> = order.iter().map(|&local| vars[local]).collect();
    (canonical, kept)
}

/// A renaming-invariant fingerprint of a formula: FNV-1a over its exact
/// encoding *after* the caller put it in canonical form. Two canonical
/// formulas are equal exactly when their encodings are, so this is a sound
/// cache key as long as entries also compare the formula itself (the cache
/// does: a 64-bit hash alone could collide).
pub fn fingerprint(formula: &CnfFormula) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |value: u64| {
        for byte in value.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(formula.num_vars() as u64);
    eat(formula.num_clauses() as u64);
    for clause in formula.iter() {
        eat(clause.len() as u64);
        for lit in clause.iter() {
            eat(lit.code() as u64);
        }
    }
    hash
}

/// Number of distinct values in a color vector.
fn distinct(colors: &[usize]) -> usize {
    let mut seen: Vec<usize> = colors.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

/// Stable variable order sorted by (color, input index).
fn order_by_color(colors: &[usize]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..colors.len()).collect();
    order.sort_by_key(|&v| (colors[v], v));
    order
}

/// One round of signature refinement, iterated to fixpoint: clause colors
/// from the multiset of (variable color, phase) pairs, then variable colors
/// from the old color plus the multiset of (clause color, phase) pairs. Both
/// ranking steps use sorted signatures, so the result is invariant under any
/// renaming of variables or reordering of clauses and literals.
fn refine(
    clauses: &[Vec<(usize, bool)>],
    occurrences: &[Vec<(usize, bool)>],
    mut colors: Vec<usize>,
) -> Vec<usize> {
    let mut classes = distinct(&colors);
    loop {
        // Clause signatures → dense clause colors.
        let mut clause_sigs: Vec<Vec<(usize, bool)>> = clauses
            .iter()
            .map(|clause| {
                let mut sig: Vec<(usize, bool)> = clause
                    .iter()
                    .map(|&(v, phase)| (colors[v], phase))
                    .collect();
                sig.sort_unstable();
                sig
            })
            .collect();
        let clause_colors = rank(&mut clause_sigs);
        // Variable signatures → dense variable colors.
        let mut var_sigs: Vec<(usize, Vec<(usize, bool)>)> = occurrences
            .iter()
            .enumerate()
            .map(|(v, occ)| {
                let mut sig: Vec<(usize, bool)> = occ
                    .iter()
                    .map(|&(c, phase)| (clause_colors[c], phase))
                    .collect();
                sig.sort_unstable();
                (colors[v], sig)
            })
            .collect();
        colors = rank(&mut var_sigs);
        let refined = distinct(&colors);
        if refined == classes {
            return colors;
        }
        classes = refined;
    }
}

/// Replaces each signature with its dense rank among the sorted distinct
/// signatures. The input is taken by mutable reference only to avoid an
/// extra clone for sorting.
fn rank<T: Ord + Clone>(sigs: &mut [T]) -> Vec<usize> {
    let mut sorted: Vec<T> = sigs.to_vec();
    sorted.sort();
    sorted.dedup();
    sigs.iter()
        .map(|sig| sorted.binary_search(sig).expect("signature present"))
        .collect()
}

/// Budgeted individualize-and-refine: returns the lexicographically minimal
/// formula encoding over all tie-break branches, or `None` once `budget`
/// complete encodings have been spent.
fn lex_min_order(
    clauses: &[Vec<(usize, bool)>],
    occurrences: &[Vec<(usize, bool)>],
    colors: &[usize],
    budget: &mut usize,
) -> Option<(Vec<u64>, Vec<usize>)> {
    // Find the first (smallest-color) non-singleton class.
    let mut counts = vec![0usize; colors.len() + 1];
    for &color in colors {
        counts[color] += 1;
    }
    let split = colors
        .iter()
        .copied()
        .filter(|&color| counts[color] > 1)
        .min();
    let Some(split) = split else {
        // Discrete coloring: one leaf.
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        let order = order_by_color(colors);
        return Some((encode_under(clauses, &order), order));
    };
    let mut best: Option<(Vec<u64>, Vec<usize>)> = None;
    for v in 0..colors.len() {
        if colors[v] != split {
            continue;
        }
        // Individualize v: give it a color just below its class, shifting
        // everything at or above the class up by one to stay dense enough.
        let mut branched: Vec<usize> = colors
            .iter()
            .map(|&color| if color >= split { color + 1 } else { color })
            .collect();
        branched[v] = split;
        let refined = refine(clauses, occurrences, branched);
        let candidate = lex_min_order(clauses, occurrences, &refined, budget)?;
        best = match best {
            Some(current) if current.0 <= candidate.0 => Some(current),
            _ => Some(candidate),
        };
    }
    best
}

/// Encodes the formula under a candidate variable order (new index per
/// variable) as a flat word sequence comparable lexicographically: sorted
/// renamed clauses, each as its sorted literal codes.
fn encode_under(clauses: &[Vec<(usize, bool)>], order: &[usize]) -> Vec<u64> {
    let mut rename = vec![0usize; order.len()];
    for (new, &old) in order.iter().enumerate() {
        rename[old] = new;
    }
    let mut encoded: Vec<Vec<u64>> = clauses
        .iter()
        .map(|clause| {
            let mut lits: Vec<u64> = clause
                .iter()
                .map(|&(v, phase)| Variable::new(rename[v]).literal(phase).code() as u64)
                .collect();
            lits.sort_unstable();
            lits.dedup();
            lits
        })
        .collect();
    encoded.sort();
    encoded.dedup();
    let mut flat = Vec::with_capacity(encoded.iter().map(|c| c.len() + 1).sum());
    for clause in encoded {
        flat.push(clause.len() as u64);
        flat.extend(clause);
    }
    flat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf_formula;

    /// Applies a variable permutation (old index → new index) to a formula,
    /// keeping polarities.
    fn rename_formula(formula: &CnfFormula, perm: &[usize]) -> CnfFormula {
        let clauses: Vec<Clause> = formula
            .iter()
            .map(|clause| {
                clause
                    .iter()
                    .map(|lit| Variable::new(perm[lit.variable().index()]).literal(lit.phase()))
                    .collect()
            })
            .collect();
        CnfFormula::from_clauses(formula.num_vars(), clauses)
    }

    #[test]
    fn normalize_sorts_dedups_and_drops_tautologies() {
        let messy = cnf_formula![[2, 1, 2], [1, -1, 3], [1, 2], [3]];
        let normal = normalize(&messy);
        assert_eq!(normal.num_clauses(), 2);
        assert_eq!(normal, normalize(&normal));
        // Models unchanged: check satisfiability-preserving on all points.
        for assignment in Assignment::enumerate_all(3) {
            assert_eq!(messy.evaluate(&assignment), normal.evaluate(&assignment));
        }
    }

    #[test]
    fn preprocess_decides_trivial_formulas() {
        let unsat = cnf_formula![[1], [-1]];
        assert_eq!(preprocess(&unsat).outcome, PreprocessOutcome::Unsatisfiable);
        let sat = cnf_formula![[1], [1, 2]];
        match preprocess(&sat).outcome {
            PreprocessOutcome::Satisfiable(model) => assert!(sat.evaluate(&model)),
            other => panic!("expected satisfiable, got {other:?}"),
        }
    }

    #[test]
    fn preprocess_reduces_and_lifts_models() {
        // Unit clause [3] fires, pure literal 4 fires; vars 1,2 survive.
        let formula = cnf_formula![[3], [-3, 4], [1, 2], [-1, -2]];
        let pre = preprocess(&formula);
        let PreprocessOutcome::Reduced {
            formula: reduced,
            trace,
        } = pre.outcome
        else {
            panic!("expected a residual, got {:?}", pre.outcome);
        };
        assert_eq!(reduced.num_vars(), 2);
        assert_eq!(trace.vars_removed(), 2);
        assert_eq!(pre.report.vars_removed(), 2);
        // Any model of the residual lifts to a model of the original.
        for candidate in Assignment::enumerate_all(reduced.num_vars()) {
            if reduced.evaluate(&candidate) {
                assert!(formula.evaluate(&trace.lift_model(&candidate)));
            }
        }
    }

    #[test]
    fn renamed_formulas_share_a_canonical_form() {
        let formula = cnf_formula![[1, 2, -3], [-1, 3], [2, 3], [-2, -3]];
        let renamed = rename_formula(&formula, &[2, 0, 1]);
        let a = preprocess(&formula);
        let b = preprocess(&renamed);
        let (fa, fb) = match (a.outcome, b.outcome) {
            (
                PreprocessOutcome::Reduced { formula: fa, .. },
                PreprocessOutcome::Reduced { formula: fb, .. },
            ) => (fa, fb),
            other => panic!("expected residuals, got {other:?}"),
        };
        assert_eq!(fa, fb);
        assert_eq!(fingerprint(&fa), fingerprint(&fb));
    }

    #[test]
    fn automorphic_variables_still_canonicalize() {
        // x1 and x2 are fully symmetric; the individualize-and-refine
        // tie-break must terminate and pick one order deterministically.
        let formula = cnf_formula![[1, 2], [-1, -2]];
        let (canonical, kept) = canonicalize(&formula);
        assert_eq!(canonical.num_vars(), 2);
        assert_eq!(kept.len(), 2);
        let again = canonicalize(&formula);
        assert_eq!(canonical, again.0);
    }

    #[test]
    fn fingerprint_distinguishes_different_formulas() {
        let a = normalize(&cnf_formula![[1, 2], [-1, -2]]);
        let b = normalize(&cnf_formula![[1, 2], [-1, 2]]);
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }
}
