//! Noise-based logic (NBL) algebra.
//!
//! This crate implements the *deterministic* algebra that underlies
//! noise-based logic as introduced by Kish et al. and used by the NBL-SAT
//! paper:
//!
//! * a registry of pairwise-independent, zero-mean **basis noise bits**
//!   ([`BasisId`], [`moments::MomentModel`]),
//! * exact symbolic **noise products** (products of basis sources with
//!   integer exponents) and their expectations ([`product::NoiseProduct`]),
//! * **additive superpositions** of noise products, the single-wire encoding
//!   NBL uses to carry up to `2^(2^n)` symbols ([`superposition::Superposition`]),
//! * the **logic hyperspace** construction of Eq. (1):
//!   `(N_x1 + N_x̄1)(N_x2 + N_x̄2)···` which superposes all `2^n` minterms on
//!   one wire, including variable binding to literals ([`hyperspace`]),
//! * the **sinusoid-based logic (SBL)** frequency-allocation model of §V
//!   ([`sbl`]),
//! * the **instantaneous NBL** layer of the paper's reference \[17\]: seeded
//!   random-telegraph-wave reference sequences and exact, averaging-free
//!   decoding of a received superposition ([`instantaneous`]),
//! * **multi-valued NBL** per reference \[14\]: one carrier per
//!   (variable, value) pair, mixed-radix states and their set algebra
//!   ([`multivalued`]).
//!
//! The expectations computed here are the infinite-sample limits of what the
//! Monte-Carlo engines in `nbl-sat-core` estimate; the two are cross-checked
//! in that crate's tests.
//!
//! # Example
//!
//! ```
//! use nbl_logic::{BasisId, MomentModel, NoiseProduct};
//!
//! let model = MomentModel::uniform_half();        // uniform [-0.5, 0.5]
//! let n1 = BasisId::new(0);
//! let n2 = BasisId::new(1);
//!
//! // ⟨N1·N2⟩ = 0 (independent, zero mean), ⟨N1²⟩ = 1/12.
//! let cross = NoiseProduct::from_bases([n1, n2]);
//! let square = NoiseProduct::from_bases([n1, n1]);
//! assert_eq!(cross.expectation(&model), 0.0);
//! assert!((square.expectation(&model) - 1.0 / 12.0).abs() < 1e-15);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod basis;
pub mod gates;
pub mod hyperspace;
pub mod instantaneous;
pub mod moments;
pub mod multivalued;
pub mod product;
pub mod sbl;
pub mod superposition;

pub use basis::{BasisId, BasisRegistry};
pub use gates::MintermSet;
pub use hyperspace::{Hyperspace, HyperspaceBuilder};
pub use instantaneous::{InstantaneousDecoder, RtwChannel};
pub use moments::MomentModel;
pub use multivalued::{MvSet, MvSpace};
pub use product::NoiseProduct;
pub use sbl::SblPlan;
pub use superposition::Superposition;
