//! Moment models: the even moments of each carrier family.
//!
//! The expectation of a product of independent zero-mean sources factorizes
//! into per-source moments; a [`MomentModel`] supplies `E[N^k]` for the
//! carrier family in use, which is all the symbolic algebra needs.

/// Even-moment model of a basis carrier family.
///
/// All supported families are symmetric about zero, so every odd moment is
/// exactly zero; the model only has to provide the even ones.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum MomentModel {
    /// Uniform noise on `[-a, a]`: `E[N^{2k}] = a^{2k} / (2k + 1)`.
    Uniform {
        /// Half-range `a` of the distribution.
        amplitude: f64,
    },
    /// Zero-mean Gaussian with standard deviation σ:
    /// `E[N^{2k}] = σ^{2k} (2k-1)!!`.
    Gaussian {
        /// Standard deviation σ.
        sigma: f64,
    },
    /// Random telegraph wave of amplitude `a`: `E[N^{2k}] = a^{2k}`.
    Rtw {
        /// Wave amplitude `a`.
        amplitude: f64,
    },
    /// Unit-amplitude sinusoid with random phase:
    /// `E[N^{2k}] = C(2k, k) / 4^k` (e.g. 1/2, 3/8, 5/16, ...).
    Sinusoid,
}

impl MomentModel {
    /// The paper's default carrier: uniform on `[-0.5, 0.5]` (variance 1/12).
    pub fn uniform_half() -> Self {
        MomentModel::Uniform { amplitude: 0.5 }
    }

    /// Unit-variance Gaussian carriers.
    pub fn standard_gaussian() -> Self {
        MomentModel::Gaussian { sigma: 1.0 }
    }

    /// ±1 random telegraph waves.
    pub fn unit_rtw() -> Self {
        MomentModel::Rtw { amplitude: 1.0 }
    }

    /// `E[N^k]` of a single basis source under this model.
    ///
    /// Odd moments are zero for every supported family; `E[N^0] = 1`.
    pub fn moment(&self, k: u32) -> f64 {
        if k == 0 {
            return 1.0;
        }
        if k % 2 == 1 {
            return 0.0;
        }
        let half = k / 2;
        match *self {
            MomentModel::Uniform { amplitude } => amplitude.powi(k as i32) / (k as f64 + 1.0),
            MomentModel::Gaussian { sigma } => sigma.powi(k as i32) * double_factorial_odd(k - 1),
            MomentModel::Rtw { amplitude } => amplitude.powi(k as i32),
            MomentModel::Sinusoid => binomial(k as u64, half as u64) / 4f64.powi(half as i32),
        }
    }

    /// The variance `E[N²]` of a single source.
    pub fn variance(&self) -> f64 {
        self.moment(2)
    }
}

impl Default for MomentModel {
    fn default() -> Self {
        MomentModel::uniform_half()
    }
}

/// (2k−1)!! = 1·3·5···(2k−1) computed as a float, with (−1)!! = 1.
fn double_factorial_odd(n: u32) -> f64 {
    let mut acc = 1.0;
    let mut i = n as i64;
    while i >= 1 {
        acc *= i as f64;
        i -= 2;
    }
    acc
}

/// Binomial coefficient as a float (exact for the small arguments used here).
fn binomial(n: u64, k: u64) -> f64 {
    let k = k.min(n - k);
    let mut acc = 1.0;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odd_moments_vanish() {
        for model in [
            MomentModel::uniform_half(),
            MomentModel::standard_gaussian(),
            MomentModel::unit_rtw(),
            MomentModel::Sinusoid,
        ] {
            for k in [1, 3, 5, 7] {
                assert_eq!(model.moment(k), 0.0, "{model:?} k={k}");
            }
            assert_eq!(model.moment(0), 1.0);
        }
    }

    #[test]
    fn uniform_moments_match_closed_form() {
        let m = MomentModel::uniform_half();
        assert!((m.moment(2) - 1.0 / 12.0).abs() < 1e-15);
        assert!((m.moment(4) - 1.0 / 80.0).abs() < 1e-15);
        assert!((m.moment(6) - 0.5f64.powi(6) / 7.0).abs() < 1e-15);
        assert!((m.variance() - 1.0 / 12.0).abs() < 1e-15);
    }

    #[test]
    fn gaussian_moments_follow_double_factorial() {
        let m = MomentModel::standard_gaussian();
        assert_eq!(m.moment(2), 1.0);
        assert_eq!(m.moment(4), 3.0);
        assert_eq!(m.moment(6), 15.0);
        let scaled = MomentModel::Gaussian { sigma: 2.0 };
        assert_eq!(scaled.moment(2), 4.0);
        assert_eq!(scaled.moment(4), 48.0);
    }

    #[test]
    fn rtw_even_moments_are_powers_of_amplitude() {
        let m = MomentModel::unit_rtw();
        assert_eq!(m.moment(2), 1.0);
        assert_eq!(m.moment(8), 1.0);
        let scaled = MomentModel::Rtw { amplitude: 3.0 };
        assert_eq!(scaled.moment(2), 9.0);
    }

    #[test]
    fn sinusoid_moments() {
        let m = MomentModel::Sinusoid;
        assert!((m.moment(2) - 0.5).abs() < 1e-15);
        assert!((m.moment(4) - 0.375).abs() < 1e-15);
        assert!((m.moment(6) - 0.3125).abs() < 1e-15);
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(MomentModel::default(), MomentModel::uniform_half());
    }
}
