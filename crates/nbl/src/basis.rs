//! Basis noise bits and their registry.

use std::fmt;

/// Identifier of a basis noise source (a "noise bit" in the paper's terms).
///
/// Basis sources are pairwise independent, zero-mean reference processes; the
/// algebra only ever needs their identity and their even moments (supplied by
/// [`crate::MomentModel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BasisId(u32);

impl BasisId {
    /// Creates a basis identifier from a dense index.
    pub fn new(index: usize) -> Self {
        BasisId(index as u32)
    }

    /// The dense index of this basis source.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BasisId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// A registry that allocates named basis sources.
///
/// NBL constructions allocate basis bits in structured families (per variable,
/// per clause, per literal polarity); the registry hands out dense indices and
/// remembers the label of each allocation so diagnostics can print
/// `N^j_{xi}`-style names.
///
/// ```
/// use nbl_logic::BasisRegistry;
/// let mut reg = BasisRegistry::new();
/// let a = reg.allocate("N1_x1");
/// let b = reg.allocate("N1_~x1");
/// assert_ne!(a, b);
/// assert_eq!(reg.len(), 2);
/// assert_eq!(reg.label(a), Some("N1_x1"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BasisRegistry {
    labels: Vec<String>,
}

impl BasisRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        BasisRegistry::default()
    }

    /// Allocates a fresh basis source with a diagnostic label.
    pub fn allocate(&mut self, label: impl Into<String>) -> BasisId {
        let id = BasisId::new(self.labels.len());
        self.labels.push(label.into());
        id
    }

    /// Allocates `count` unlabelled sources and returns their ids.
    pub fn allocate_many(&mut self, count: usize) -> Vec<BasisId> {
        (0..count)
            .map(|i| self.allocate(format!("N{}", self.labels.len() + i)))
            .collect()
    }

    /// Number of allocated basis sources.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if no sources have been allocated.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The label of a basis source, if it belongs to this registry.
    pub fn label(&self, id: BasisId) -> Option<&str> {
        self.labels.get(id.index()).map(String::as_str)
    }

    /// Iterates over all allocated ids in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = BasisId> + '_ {
        (0..self.labels.len()).map(BasisId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_displayable() {
        let id = BasisId::new(3);
        assert_eq!(id.index(), 3);
        assert_eq!(id.to_string(), "N3");
    }

    #[test]
    fn registry_allocates_sequentially() {
        let mut reg = BasisRegistry::new();
        assert!(reg.is_empty());
        let a = reg.allocate("a");
        let b = reg.allocate("b");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.label(b), Some("b"));
        assert_eq!(reg.label(BasisId::new(5)), None);
        assert_eq!(reg.iter().count(), 2);
    }

    #[test]
    fn allocate_many() {
        let mut reg = BasisRegistry::new();
        let ids = reg.allocate_many(4);
        assert_eq!(ids.len(), 4);
        assert_eq!(reg.len(), 4);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }
}
