//! Sinusoid-based logic (SBL) planning.
//!
//! §V of the paper observes that the noise carriers can be replaced by
//! sinusoids: with a maximum realizable frequency `F` and a spacing `f`
//! between adjacent carriers, an SBL engine supports `F / f` variables, and
//! shrinking `f` requires higher-order low-pass filters. [`SblPlan`] captures
//! that resource trade-off so experiments can sweep it.

use std::fmt;

/// A frequency-allocation plan for a sinusoid-based logic engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SblPlan {
    /// Maximum realizable carrier frequency `F` in hertz.
    pub max_frequency_hz: f64,
    /// Spacing `f` between adjacent carriers in hertz.
    pub carrier_spacing_hz: f64,
    /// Number of cascaded low-pass poles assumed available for DC extraction.
    pub filter_order: usize,
}

impl SblPlan {
    /// Creates a plan.
    ///
    /// # Panics
    ///
    /// Panics if either frequency is not strictly positive, the spacing
    /// exceeds the maximum frequency, or the filter order is zero.
    pub fn new(max_frequency_hz: f64, carrier_spacing_hz: f64, filter_order: usize) -> Self {
        assert!(
            max_frequency_hz > 0.0 && carrier_spacing_hz > 0.0,
            "frequencies must be positive"
        );
        assert!(
            carrier_spacing_hz <= max_frequency_hz,
            "carrier spacing cannot exceed the maximum frequency"
        );
        assert!(filter_order > 0, "filter order must be at least 1");
        SblPlan {
            max_frequency_hz,
            carrier_spacing_hz,
            filter_order,
        }
    }

    /// Number of distinct variables the plan supports: `⌊F / f⌋ / 2` carrier
    /// pairs (each variable needs a carrier for each literal polarity).
    pub fn supported_variables(&self) -> usize {
        let carriers = (self.max_frequency_hz / self.carrier_spacing_hz).floor() as usize;
        carriers / 2
    }

    /// Total number of carriers (two per variable).
    pub fn num_carriers(&self) -> usize {
        self.supported_variables() * 2
    }

    /// A simple circuit-complexity proxy: the paper notes that smaller `f`
    /// needs higher-order filters. We model the required order as the number
    /// of octaves between the carrier spacing and the maximum frequency, and
    /// report whether the plan's filter budget covers it.
    pub fn required_filter_order(&self) -> usize {
        (self.max_frequency_hz / self.carrier_spacing_hz)
            .log2()
            .ceil()
            .max(1.0) as usize
    }

    /// Returns `true` if the plan's filter budget meets the requirement.
    pub fn is_feasible(&self) -> bool {
        self.filter_order >= self.required_filter_order()
    }

    /// The settling time (in carrier-spacing periods) a first-order section
    /// needs to resolve adjacent carriers; a rough latency proxy `≈ 1 / f`
    /// scaled by the filter order.
    pub fn settling_time_s(&self) -> f64 {
        self.filter_order as f64 / self.carrier_spacing_hz
    }
}

impl fmt::Display for SblPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SBL plan: F={:.3e} Hz, f={:.3e} Hz, {} variables, filter order {}/{}",
            self.max_frequency_hz,
            self.carrier_spacing_hz,
            self.supported_variables(),
            self.filter_order,
            self.required_filter_order()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_capacity() {
        // 10 GHz max, 1 MHz spacing -> 10_000 carriers -> 5_000 variables.
        let plan = SblPlan::new(10e9, 1e6, 16);
        assert_eq!(plan.supported_variables(), 5_000);
        assert_eq!(plan.num_carriers(), 10_000);
    }

    #[test]
    fn tighter_spacing_needs_higher_order_filters() {
        let coarse = SblPlan::new(1e9, 1e7, 8);
        let fine = SblPlan::new(1e9, 1e4, 8);
        assert!(fine.required_filter_order() > coarse.required_filter_order());
        assert!(coarse.is_feasible());
        assert!(!fine.is_feasible());
    }

    #[test]
    fn settling_time_scales_with_order_and_spacing() {
        let a = SblPlan::new(1e9, 1e6, 2);
        let b = SblPlan::new(1e9, 1e6, 4);
        let c = SblPlan::new(1e9, 1e5, 2);
        assert!(b.settling_time_s() > a.settling_time_s());
        assert!(c.settling_time_s() > a.settling_time_s());
    }

    #[test]
    fn display_reports_capacity() {
        let plan = SblPlan::new(1e9, 1e6, 10);
        assert!(plan.to_string().contains("500 variables"));
    }

    #[test]
    #[should_panic]
    fn invalid_spacing_rejected() {
        let _ = SblPlan::new(1e6, 1e9, 4);
    }

    #[test]
    #[should_panic]
    fn zero_filter_order_rejected() {
        let _ = SblPlan::new(1e9, 1e6, 0);
    }
}
