//! Additive superpositions of noise products.

use crate::basis::BasisId;
use crate::moments::MomentModel;
use crate::product::NoiseProduct;
use std::collections::BTreeMap;
use std::fmt;

/// A finite linear combination of [`NoiseProduct`]s with real coefficients.
///
/// This is the single-wire signal representation of NBL: an additive
/// superposition of (products of) basis noise sources. Superpositions form a
/// commutative algebra under addition and multiplication; expectations are
/// linear and factorize per product.
///
/// The representation is canonical (terms keyed by product, zero coefficients
/// dropped), so algebraically equal superpositions compare equal.
///
/// ```
/// use nbl_logic::{BasisId, MomentModel, NoiseProduct, Superposition};
/// let n0 = BasisId::new(0);
/// let n1 = BasisId::new(1);
/// // (N0 + N1) · N0 = N0² + N0·N1, with expectation Var(N0).
/// let sum = Superposition::from_products([NoiseProduct::from_basis(n0), NoiseProduct::from_basis(n1)]);
/// let product = sum.multiplied_by(&Superposition::from_products([NoiseProduct::from_basis(n0)]));
/// assert_eq!(product.num_terms(), 2);
/// let model = MomentModel::uniform_half();
/// assert!((product.expectation(&model) - 1.0 / 12.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Superposition {
    terms: BTreeMap<NoiseProductKey, (NoiseProduct, f64)>,
}

/// Sortable key wrapper for products (BTreeMap requires `Ord`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct NoiseProductKey(Vec<(u32, u32)>);

fn key_of(p: &NoiseProduct) -> NoiseProductKey {
    NoiseProductKey(p.factors().map(|(b, e)| (b.index() as u32, e)).collect())
}

impl Superposition {
    /// The zero superposition (empty sum).
    pub fn zero() -> Self {
        Superposition::default()
    }

    /// The constant 1 (the empty product with coefficient one).
    pub fn one() -> Self {
        let mut s = Superposition::zero();
        s.add_term(NoiseProduct::one(), 1.0);
        s
    }

    /// A superposition holding a single basis source.
    pub fn from_basis(id: BasisId) -> Self {
        let mut s = Superposition::zero();
        s.add_term(NoiseProduct::from_basis(id), 1.0);
        s
    }

    /// Builds a unit-coefficient superposition from an iterator of products.
    pub fn from_products<I: IntoIterator<Item = NoiseProduct>>(products: I) -> Self {
        let mut s = Superposition::zero();
        for p in products {
            s.add_term(p, 1.0);
        }
        s
    }

    /// Adds `coefficient ·  product` to the superposition.
    pub fn add_term(&mut self, product: NoiseProduct, coefficient: f64) {
        if coefficient == 0.0 {
            return;
        }
        let key = key_of(&product);
        let entry = self.terms.entry(key).or_insert((product, 0.0));
        entry.1 += coefficient;
        if entry.1 == 0.0 {
            let key = self
                .terms
                .iter()
                .find(|(_, (_, c))| *c == 0.0)
                .map(|(k, _)| k.clone());
            if let Some(k) = key {
                self.terms.remove(&k);
            }
        }
    }

    /// Number of (non-zero) terms in the superposition.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if the superposition is identically zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over `(product, coefficient)` terms.
    pub fn terms(&self) -> impl Iterator<Item = (&NoiseProduct, f64)> + '_ {
        self.terms.values().map(|(p, c)| (p, *c))
    }

    /// The coefficient of a given product (0 if absent).
    pub fn coefficient(&self, product: &NoiseProduct) -> f64 {
        self.terms
            .get(&key_of(product))
            .map(|(_, c)| *c)
            .unwrap_or(0.0)
    }

    /// Returns the sum of `self` and `other`.
    pub fn added_to(&self, other: &Superposition) -> Superposition {
        let mut out = self.clone();
        for (p, c) in other.terms() {
            out.add_term(p.clone(), c);
        }
        out
    }

    /// Returns the product of `self` and `other` (full distribution).
    ///
    /// The number of result terms is at most `self.num_terms() *
    /// other.num_terms()`; callers expanding large NBL instances should watch
    /// this growth (the paper itself notes the `O(2^{nm})` product count).
    pub fn multiplied_by(&self, other: &Superposition) -> Superposition {
        let mut out = Superposition::zero();
        for (pa, ca) in self.terms() {
            for (pb, cb) in other.terms() {
                out.add_term(pa.multiplied_by(pb), ca * cb);
            }
        }
        out
    }

    /// Scales every coefficient by `factor`.
    pub fn scaled(&self, factor: f64) -> Superposition {
        if factor == 0.0 {
            return Superposition::zero();
        }
        let mut out = Superposition::zero();
        for (p, c) in self.terms() {
            out.add_term(p.clone(), c * factor);
        }
        out
    }

    /// The exact expectation of the superposition under a moment model
    /// (linearity of expectation plus per-product factorization).
    pub fn expectation(&self, model: &MomentModel) -> f64 {
        self.terms().map(|(p, c)| c * p.expectation(model)).sum()
    }

    /// Evaluates the superposition numerically for one set of instantaneous
    /// basis-source values.
    pub fn evaluate(&self, values: &[f64]) -> f64 {
        self.terms().map(|(p, c)| c * p.evaluate(values)).sum()
    }
}

impl fmt::Display for Superposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, (p, c)) in self.terms().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if (c - 1.0).abs() < f64::EPSILON {
                write!(f, "{p}")?;
            } else {
                write!(f, "{c}·{p}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: usize) -> BasisId {
        BasisId::new(i)
    }

    #[test]
    fn zero_and_one() {
        assert!(Superposition::zero().is_zero());
        assert_eq!(Superposition::one().num_terms(), 1);
        assert_eq!(
            Superposition::one().expectation(&MomentModel::uniform_half()),
            1.0
        );
    }

    #[test]
    fn addition_merges_and_cancels() {
        let mut s = Superposition::from_basis(b(0));
        s.add_term(NoiseProduct::from_basis(b(0)), 2.0);
        assert_eq!(s.num_terms(), 1);
        assert_eq!(s.coefficient(&NoiseProduct::from_basis(b(0))), 3.0);
        s.add_term(NoiseProduct::from_basis(b(0)), -3.0);
        assert!(s.is_zero());
    }

    #[test]
    fn distribution_of_products() {
        // (N0 + N1)(N2 + N3) has 4 terms, all cross products.
        let a = Superposition::from_basis(b(0)).added_to(&Superposition::from_basis(b(1)));
        let c = Superposition::from_basis(b(2)).added_to(&Superposition::from_basis(b(3)));
        let p = a.multiplied_by(&c);
        assert_eq!(p.num_terms(), 4);
        assert_eq!(p.expectation(&MomentModel::uniform_half()), 0.0);
    }

    #[test]
    fn self_correlation_reads_out_variance() {
        // ⟨(N0 + N1)·N0⟩ = Var(N0)
        let a = Superposition::from_basis(b(0)).added_to(&Superposition::from_basis(b(1)));
        let p = a.multiplied_by(&Superposition::from_basis(b(0)));
        let model = MomentModel::uniform_half();
        assert!((p.expectation(&model) - 1.0 / 12.0).abs() < 1e-15);
    }

    #[test]
    fn scaling() {
        let s = Superposition::from_basis(b(1)).scaled(2.5);
        assert_eq!(s.coefficient(&NoiseProduct::from_basis(b(1))), 2.5);
        assert!(s.scaled(0.0).is_zero());
    }

    #[test]
    fn numeric_evaluation_matches_expectation_structure() {
        let s = Superposition::from_products([
            NoiseProduct::from_bases([b(0), b(1)]),
            NoiseProduct::from_bases([b(0), b(0)]),
        ]);
        let values = [2.0, -1.0];
        assert!((s.evaluate(&values) - (-2.0 + 4.0)).abs() < 1e-15);
    }

    #[test]
    fn display_output() {
        let s = Superposition::from_basis(b(0)).scaled(2.0);
        assert!(s.to_string().contains("2"));
        assert_eq!(Superposition::zero().to_string(), "0");
    }

    #[test]
    fn superposition_capacity_of_hyperspace_subsets() {
        // With 2 products (hyperspace of Example 1 restricted to two elements),
        // the number of distinct subset superpositions is 2^2 = 4 including 0.
        let elements = [
            NoiseProduct::from_bases([b(0), b(2)]),
            NoiseProduct::from_bases([b(0), b(3)]),
        ];
        let mut distinct = std::collections::HashSet::new();
        for mask in 0..4u32 {
            let mut s = Superposition::zero();
            for (i, e) in elements.iter().enumerate() {
                if (mask >> i) & 1 == 1 {
                    s.add_term(e.clone(), 1.0);
                }
            }
            distinct.insert(format!("{s}"));
        }
        assert_eq!(distinct.len(), 4);
    }
}
