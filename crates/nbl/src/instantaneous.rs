//! Instantaneous noise-based logic with random-telegraph-wave carriers.
//!
//! Reference \[17\] of the NBL-SAT paper (Kish, Khatri, Peper, *"Instantaneous
//! noise-based logic"*) replaces the continuous-amplitude carriers with
//! **random telegraph waves** (RTWs): deterministic, receiver-known ±1
//! sequences. Because every carrier (and hence every noise product) takes
//! values in {−1, +1} at each clock tick, the receiver does not have to
//! time-average correlations the way the baseline NBL-SAT readout does — the
//! superposition carried by a wire can be decoded *exactly* from a finite
//! number of samples by solving a small linear system against the known
//! reference sequences.
//!
//! This module provides that deterministic time-domain layer:
//!
//! * [`RtwChannel`] — seeded, reproducible ±1 reference sequences for every
//!   basis carrier, plus evaluation of products and superpositions at a given
//!   clock tick, and
//! * [`InstantaneousDecoder`] — exact recovery of *which* reference products
//!   are present in a received superposition from `O(m·log m)` samples (for
//!   `m` candidate products), instead of the `O(2^{nm})`-sample averaging the
//!   stochastic readout needs.

use crate::product::NoiseProduct;
use crate::superposition::Superposition;
use std::fmt;

/// A deterministic RTW carrier bank: basis source `b` at clock tick `t` has
/// the value `±1`, reproducible from the channel seed.
///
/// ```
/// use nbl_logic::{instantaneous::RtwChannel, BasisId, NoiseProduct};
///
/// let channel = RtwChannel::new(42);
/// let value = channel.basis_sample(BasisId::new(3), 17);
/// assert!(value == 1.0 || value == -1.0);
/// // Squares are exactly 1 at every instant — the key RTW property.
/// let square = NoiseProduct::from_bases([BasisId::new(3), BasisId::new(3)]);
/// assert_eq!(channel.product_sample(&square, 17), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtwChannel {
    seed: u64,
}

impl RtwChannel {
    /// Creates a channel with the given seed; the same seed reproduces the
    /// same reference sequences on both ends of the wire.
    pub fn new(seed: u64) -> Self {
        RtwChannel { seed }
    }

    /// The channel seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The ±1 value of basis carrier `basis` at clock tick `t`.
    pub fn basis_sample(&self, basis: crate::BasisId, t: u64) -> f64 {
        // SplitMix64-style avalanche of (seed, basis, t); one output bit
        // selects the sign. Deterministic, stateless and cheap.
        let mut z = self
            .seed
            .wrapping_add((basis.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(t.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        if z & 1 == 1 {
            1.0
        } else {
            -1.0
        }
    }

    /// The ±1 value of a noise product at clock tick `t` (the product of its
    /// factors' instantaneous values; even exponents cancel exactly).
    pub fn product_sample(&self, product: &NoiseProduct, t: u64) -> f64 {
        let mut value = 1.0;
        for (basis, exponent) in product.factors() {
            if exponent % 2 == 1 {
                value *= self.basis_sample(basis, t);
            }
        }
        value
    }

    /// The instantaneous value of a superposition (the weighted sum of its
    /// products' values) at clock tick `t`.
    pub fn superposition_sample(&self, superposition: &Superposition, t: u64) -> f64 {
        superposition
            .terms()
            .map(|(product, coefficient)| coefficient * self.product_sample(product, t))
            .sum()
    }
}

/// Errors reported by [`InstantaneousDecoder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The reference products do not form a linearly independent family over
    /// the sampled window, so the received wire cannot be decoded uniquely.
    DependentReferences,
    /// The received samples are not explained by any 0/1 combination of the
    /// reference products (wrong references, wrong seed, or a corrupted wire).
    Unexplained,
    /// Fewer wire samples were supplied than the decoder needs.
    NotEnoughSamples {
        /// Samples required (number of references plus verification ticks).
        required: usize,
        /// Samples supplied.
        got: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::DependentReferences => {
                write!(
                    f,
                    "reference products are linearly dependent over the sample window"
                )
            }
            DecodeError::Unexplained => {
                write!(
                    f,
                    "received samples do not match any subset of the references"
                )
            }
            DecodeError::NotEnoughSamples { required, got } => {
                write!(f, "need at least {required} samples, got {got}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Number of extra clock ticks used to verify a decoded subset beyond the
/// ticks needed to solve for it.
pub const VERIFICATION_TICKS: usize = 16;

/// Exact decoder for RTW superpositions.
///
/// Given `m` candidate reference products (for NBL-SAT these are minterm
/// products), the decoder reconstructs which subset of them a received wire
/// carries by solving a linear system built from the known reference
/// sequences, then verifying the 0/1 solution on the whole sample window.
///
/// Each clock tick contributes one linear equation whose coefficient row is a
/// Walsh character of the minterm index (scaled by a common ±1), so the
/// system reaches full rank after a coupon-collector number of ticks —
/// the decoder therefore uses a window of `O(m·log m)` samples
/// ([`InstantaneousDecoder::required_samples`]). The decode is still
/// *instantaneous* in the sense of reference \[17\]: it is an exact algebraic
/// reconstruction over a fixed, instance-independent window, with no
/// statistical averaging and no convergence threshold, in contrast to the
/// `O(2^{nm})`-sample averaging the stochastic NBL-SAT readout needs.
///
/// ```
/// use nbl_logic::instantaneous::{InstantaneousDecoder, RtwChannel};
/// use nbl_logic::HyperspaceBuilder;
///
/// let builder = HyperspaceBuilder::new(3);
/// let references: Vec<_> = (0..8).map(|m| builder.minterm(m)).collect();
/// let decoder = InstantaneousDecoder::new(RtwChannel::new(7), references);
///
/// // Transmit the subset {1, 4, 6} and decode it back exactly.
/// let wire = decoder.encode(&[false, true, false, false, true, false, true, false], 0);
/// let decoded = decoder.decode(&wire, 0)?;
/// assert_eq!(decoded, vec![false, true, false, false, true, false, true, false]);
/// # Ok::<(), nbl_logic::instantaneous::DecodeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct InstantaneousDecoder {
    channel: RtwChannel,
    references: Vec<NoiseProduct>,
}

impl InstantaneousDecoder {
    /// Creates a decoder for the given channel and candidate reference products.
    pub fn new(channel: RtwChannel, references: Vec<NoiseProduct>) -> Self {
        InstantaneousDecoder {
            channel,
            references,
        }
    }

    /// The candidate reference products.
    pub fn references(&self) -> &[NoiseProduct] {
        &self.references
    }

    /// Number of wire samples [`InstantaneousDecoder::decode`] expects:
    /// `m·(⌈log₂ m⌉ + 4)` solve ticks plus [`VERIFICATION_TICKS`].
    pub fn required_samples(&self) -> usize {
        let m = self.references.len();
        let log2 = usize::BITS as usize - m.leading_zeros() as usize;
        m * (log2 + 4) + VERIFICATION_TICKS
    }

    /// Produces the wire samples for a chosen subset of references, starting
    /// at clock tick `start`. `selection[i]` states whether reference `i` is
    /// part of the transmitted superposition.
    ///
    /// # Panics
    ///
    /// Panics if `selection.len()` differs from the number of references.
    pub fn encode(&self, selection: &[bool], start: u64) -> Vec<f64> {
        assert_eq!(selection.len(), self.references.len());
        (0..self.required_samples() as u64)
            .map(|offset| {
                let t = start + offset;
                self.references
                    .iter()
                    .zip(selection)
                    .filter(|&(_, &selected)| selected)
                    .map(|(product, _)| self.channel.product_sample(product, t))
                    .sum()
            })
            .collect()
    }

    /// Decodes which subset of the references the wire carries.
    ///
    /// `wire[k]` must be the wire value at clock tick `start + k`; at least
    /// [`InstantaneousDecoder::required_samples`] samples are needed.
    ///
    /// # Errors
    ///
    /// * [`DecodeError::NotEnoughSamples`] if the window is too short.
    /// * [`DecodeError::DependentReferences`] if the reference sequences are
    ///   not linearly independent over the window (pathological seeds).
    /// * [`DecodeError::Unexplained`] if no 0/1 combination reproduces the
    ///   received samples.
    pub fn decode(&self, wire: &[f64], start: u64) -> Result<Vec<bool>, DecodeError> {
        let m = self.references.len();
        if wire.len() < self.required_samples() {
            return Err(DecodeError::NotEnoughSamples {
                required: self.required_samples(),
                got: wire.len(),
            });
        }
        if m == 0 {
            return Ok(Vec::new());
        }
        // Build an overdetermined system A·x = w from the whole sample window;
        // the extra rows make a rank deficiency over the first m ticks (which
        // random ±1 rows do hit occasionally) vanishingly unlikely overall.
        let rows = wire.len().min(self.required_samples());
        let mut matrix = vec![vec![0.0f64; m + 1]; rows];
        for (row, matrix_row) in matrix.iter_mut().enumerate() {
            let t = start + row as u64;
            for (col, reference) in self.references.iter().enumerate() {
                matrix_row[col] = self.channel.product_sample(reference, t);
            }
            matrix_row[m] = wire[row];
        }
        let solution = solve_dense(&mut matrix, m).ok_or(DecodeError::DependentReferences)?;
        // Round to a 0/1 selection and verify on the remaining ticks.
        let mut selection = Vec::with_capacity(m);
        for &x in &solution {
            if (x - 1.0).abs() < 1e-6 {
                selection.push(true);
            } else if x.abs() < 1e-6 {
                selection.push(false);
            } else {
                return Err(DecodeError::Unexplained);
            }
        }
        for (offset, &received) in wire.iter().enumerate() {
            let t = start + offset as u64;
            let reconstructed: f64 = self
                .references
                .iter()
                .zip(&selection)
                .filter(|&(_, &selected)| selected)
                .map(|(product, _)| self.channel.product_sample(product, t))
                .sum();
            if (reconstructed - received).abs() > 1e-6 {
                return Err(DecodeError::Unexplained);
            }
        }
        Ok(selection)
    }
}

/// Gauss–Jordan elimination with partial pivoting on an augmented
/// `rows × (unknowns + 1)` matrix with `rows >= unknowns`. Returns `None` if
/// the coefficient columns do not have full rank. Inconsistencies in the
/// surplus rows are ignored here — the decoder re-verifies the rounded 0/1
/// solution against every sample afterwards.
fn solve_dense(matrix: &mut [Vec<f64>], unknowns: usize) -> Option<Vec<f64>> {
    let rows = matrix.len();
    if rows < unknowns {
        return None;
    }
    for col in 0..unknowns {
        // Pivot selection among the not-yet-pivoted rows.
        let pivot = (col..rows).max_by(|&a, &b| {
            matrix[a][col]
                .abs()
                .partial_cmp(&matrix[b][col].abs())
                .expect("matrix entries are finite")
        })?;
        if matrix[pivot][col].abs() < 1e-9 {
            return None;
        }
        matrix.swap(col, pivot);
        let pivot_row = matrix[col].clone();
        for (row, current) in matrix.iter_mut().enumerate() {
            if row != col {
                let factor = current[col] / pivot_row[col];
                if factor != 0.0 {
                    for (x, &p) in current[col..=unknowns]
                        .iter_mut()
                        .zip(&pivot_row[col..=unknowns])
                    {
                        *x -= factor * p;
                    }
                }
            }
        }
    }
    Some(
        (0..unknowns)
            .map(|i| matrix[i][unknowns] / matrix[i][i])
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::BasisId;
    use crate::hyperspace::HyperspaceBuilder;

    #[test]
    fn rtw_samples_are_deterministic_and_binary() {
        let channel = RtwChannel::new(123);
        let other = RtwChannel::new(123);
        for basis in 0..6 {
            for t in 0..50u64 {
                let v = channel.basis_sample(BasisId::new(basis), t);
                assert!(v == 1.0 || v == -1.0);
                assert_eq!(v, other.basis_sample(BasisId::new(basis), t));
            }
        }
        // Different seeds give different sequences (with overwhelming likelihood
        // over 64 ticks for at least one basis/tick combination).
        let different = RtwChannel::new(124);
        let any_difference = (0..64u64).any(|t| {
            channel.basis_sample(BasisId::new(0), t) != different.basis_sample(BasisId::new(0), t)
        });
        assert!(any_difference);
    }

    #[test]
    fn even_exponents_cancel_exactly() {
        let channel = RtwChannel::new(9);
        let square = NoiseProduct::from_bases([BasisId::new(2), BasisId::new(2)]);
        let fourth = NoiseProduct::from_bases([
            BasisId::new(1),
            BasisId::new(1),
            BasisId::new(1),
            BasisId::new(1),
        ]);
        for t in 0..32u64 {
            assert_eq!(channel.product_sample(&square, t), 1.0);
            assert_eq!(channel.product_sample(&fourth, t), 1.0);
        }
    }

    #[test]
    fn superposition_sample_is_sum_of_product_samples() {
        let channel = RtwChannel::new(5);
        let builder = HyperspaceBuilder::new(2);
        let superposition = builder.expand().into_superposition();
        for t in 0..16u64 {
            let direct: f64 = superposition
                .terms()
                .map(|(p, c)| c * channel.product_sample(p, t))
                .sum();
            assert_eq!(channel.superposition_sample(&superposition, t), direct);
        }
    }

    #[test]
    fn round_trip_every_subset_of_a_small_hyperspace() {
        let builder = HyperspaceBuilder::new(2);
        let references: Vec<_> = (0..4).map(|m| builder.minterm(m)).collect();
        let decoder = InstantaneousDecoder::new(RtwChannel::new(2012), references);
        for subset in 0..16u32 {
            let selection: Vec<bool> = (0..4).map(|i| subset >> i & 1 == 1).collect();
            let wire = decoder.encode(&selection, 100);
            let decoded = decoder.decode(&wire, 100).expect("decodable");
            assert_eq!(decoded, selection, "subset {subset:04b}");
        }
    }

    #[test]
    fn larger_reference_sets_round_trip() {
        let builder = HyperspaceBuilder::new(4);
        let references: Vec<_> = (0..16).map(|m| builder.minterm(m)).collect();
        let decoder = InstantaneousDecoder::new(RtwChannel::new(77), references);
        let selection: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
        let wire = decoder.encode(&selection, 0);
        assert_eq!(decoder.decode(&wire, 0).unwrap(), selection);
    }

    #[test]
    fn corrupted_wire_is_rejected() {
        let builder = HyperspaceBuilder::new(2);
        let references: Vec<_> = (0..4).map(|m| builder.minterm(m)).collect();
        let decoder = InstantaneousDecoder::new(RtwChannel::new(3), references);
        let mut wire = decoder.encode(&[true, false, true, false], 0);
        wire[1] += 0.5; // inject an analog error
        assert_eq!(decoder.decode(&wire, 0), Err(DecodeError::Unexplained));
    }

    #[test]
    fn sample_count_is_validated() {
        let builder = HyperspaceBuilder::new(2);
        let references: Vec<_> = (0..4).map(|m| builder.minterm(m)).collect();
        let decoder = InstantaneousDecoder::new(RtwChannel::new(3), references);
        let required = decoder.required_samples();
        assert!(required >= 4 + VERIFICATION_TICKS);
        let err = decoder.decode(&[0.0; 3], 0).unwrap_err();
        assert!(
            matches!(err, DecodeError::NotEnoughSamples { required: r, got: 3 } if r == required)
        );
    }

    #[test]
    fn empty_reference_set_decodes_trivially() {
        let decoder = InstantaneousDecoder::new(RtwChannel::new(0), Vec::new());
        let wire = vec![0.0; decoder.required_samples()];
        assert_eq!(decoder.decode(&wire, 0).unwrap(), Vec::<bool>::new());
    }

    #[test]
    fn wrong_seed_fails_verification() {
        let builder = HyperspaceBuilder::new(2);
        let references: Vec<_> = (0..4).map(|m| builder.minterm(m)).collect();
        let sender = InstantaneousDecoder::new(RtwChannel::new(10), references.clone());
        let receiver = InstantaneousDecoder::new(RtwChannel::new(11), references);
        let wire = sender.encode(&[true, true, false, false], 0);
        // A mismatched reference bank cannot (except with negligible
        // probability) explain the received samples as a 0/1 combination.
        assert!(receiver.decode(&wire, 0).is_err());
    }
}
