//! Exact symbolic noise products.

use crate::basis::BasisId;
use crate::moments::MomentModel;
use std::fmt;

/// A product of basis noise sources with non-negative integer exponents,
/// e.g. `N0² · N3 · N7`.
///
/// Because the basis sources are independent and zero-mean, the expectation of
/// a product factorizes into per-source moments and vanishes as soon as any
/// source appears with an odd exponent. That single rule is what makes the
/// NBL-SAT correlation readout work, and [`NoiseProduct::expectation`]
/// implements it exactly.
///
/// The internal representation is a sorted list of `(BasisId, exponent)` pairs
/// with strictly positive exponents, so equal products compare equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct NoiseProduct {
    factors: Vec<(BasisId, u32)>,
}

impl NoiseProduct {
    /// The empty product (the multiplicative identity, value 1).
    pub fn one() -> Self {
        NoiseProduct::default()
    }

    /// A product consisting of a single basis source.
    pub fn from_basis(id: BasisId) -> Self {
        NoiseProduct {
            factors: vec![(id, 1)],
        }
    }

    /// Builds a product from an iterator of basis sources (repetitions
    /// accumulate exponents).
    pub fn from_bases<I: IntoIterator<Item = BasisId>>(bases: I) -> Self {
        let mut p = NoiseProduct::one();
        for b in bases {
            p.multiply_basis(b);
        }
        p
    }

    /// Returns `true` if this is the empty product.
    pub fn is_one(&self) -> bool {
        self.factors.is_empty()
    }

    /// Number of distinct basis sources in the product.
    pub fn num_distinct_bases(&self) -> usize {
        self.factors.len()
    }

    /// Total degree (sum of exponents).
    pub fn degree(&self) -> u32 {
        self.factors.iter().map(|(_, e)| e).sum()
    }

    /// The exponent of a given basis source (0 if absent).
    pub fn exponent(&self, id: BasisId) -> u32 {
        self.factors
            .binary_search_by_key(&id, |(b, _)| *b)
            .map(|i| self.factors[i].1)
            .unwrap_or(0)
    }

    /// Iterates over `(BasisId, exponent)` factors in increasing id order.
    pub fn factors(&self) -> impl Iterator<Item = (BasisId, u32)> + '_ {
        self.factors.iter().copied()
    }

    /// Multiplies this product by a single basis source in place.
    pub fn multiply_basis(&mut self, id: BasisId) {
        match self.factors.binary_search_by_key(&id, |(b, _)| *b) {
            Ok(i) => self.factors[i].1 += 1,
            Err(i) => self.factors.insert(i, (id, 1)),
        }
    }

    /// Returns the product of `self` and `other`.
    pub fn multiplied_by(&self, other: &NoiseProduct) -> NoiseProduct {
        // Merge two sorted factor lists.
        let mut out = Vec::with_capacity(self.factors.len() + other.factors.len());
        let mut a = self.factors.iter().peekable();
        let mut b = other.factors.iter().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ea)), Some(&&(ib, eb))) => {
                    if ia == ib {
                        out.push((ia, ea + eb));
                        a.next();
                        b.next();
                    } else if ia < ib {
                        out.push((ia, ea));
                        a.next();
                    } else {
                        out.push((ib, eb));
                        b.next();
                    }
                }
                (Some(&&f), None) => {
                    out.push(f);
                    a.next();
                }
                (None, Some(&&f)) => {
                    out.push(f);
                    b.next();
                }
                (None, None) => break,
            }
        }
        NoiseProduct { factors: out }
    }

    /// Returns `true` if every basis source appears with an even exponent,
    /// i.e. the product has a non-zero expectation.
    pub fn all_exponents_even(&self) -> bool {
        self.factors.iter().all(|(_, e)| e % 2 == 0)
    }

    /// The exact expectation ⟨Π N_i^{e_i}⟩ under the given moment model.
    ///
    /// By independence this is `Π ⟨N_i^{e_i}⟩`, which is zero whenever some
    /// exponent is odd (all supported carriers are symmetric and zero-mean).
    pub fn expectation(&self, model: &MomentModel) -> f64 {
        let mut acc = 1.0;
        for &(_, e) in &self.factors {
            if e % 2 == 1 {
                return 0.0;
            }
            acc *= model.moment(e);
        }
        acc
    }

    /// Evaluates the product numerically given instantaneous per-source values.
    ///
    /// `values[id.index()]` must hold the current sample of source `id`.
    ///
    /// # Panics
    ///
    /// Panics if some source index is out of range of `values`.
    pub fn evaluate(&self, values: &[f64]) -> f64 {
        self.factors
            .iter()
            .map(|&(b, e)| values[b.index()].powi(e as i32))
            .product()
    }
}

impl fmt::Display for NoiseProduct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.factors.is_empty() {
            return write!(f, "1");
        }
        for (i, (b, e)) in self.factors.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            if *e == 1 {
                write!(f, "{b}")?;
            } else {
                write!(f, "{b}^{e}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: usize) -> BasisId {
        BasisId::new(i)
    }

    #[test]
    fn construction_and_exponents() {
        let p = NoiseProduct::from_bases([b(3), b(1), b(3)]);
        assert_eq!(p.exponent(b(3)), 2);
        assert_eq!(p.exponent(b(1)), 1);
        assert_eq!(p.exponent(b(0)), 0);
        assert_eq!(p.degree(), 3);
        assert_eq!(p.num_distinct_bases(), 2);
        assert!(!p.is_one());
        assert!(NoiseProduct::one().is_one());
    }

    #[test]
    fn multiplication_merges_factors() {
        let p = NoiseProduct::from_bases([b(0), b(2)]);
        let q = NoiseProduct::from_bases([b(2), b(5)]);
        let r = p.multiplied_by(&q);
        assert_eq!(r.exponent(b(0)), 1);
        assert_eq!(r.exponent(b(2)), 2);
        assert_eq!(r.exponent(b(5)), 1);
        // multiplication is commutative
        assert_eq!(r, q.multiplied_by(&p));
        // identity
        assert_eq!(p.multiplied_by(&NoiseProduct::one()), p);
    }

    #[test]
    fn expectation_rules() {
        let model = MomentModel::uniform_half();
        // odd exponent anywhere -> 0
        assert_eq!(NoiseProduct::from_bases([b(0)]).expectation(&model), 0.0);
        assert_eq!(
            NoiseProduct::from_bases([b(0), b(0), b(1)]).expectation(&model),
            0.0
        );
        // squares multiply their variances
        let sq = NoiseProduct::from_bases([b(0), b(0), b(1), b(1)]);
        assert!((sq.expectation(&model) - (1.0 / 12.0) * (1.0 / 12.0)).abs() < 1e-18);
        // fourth moment
        let fourth = NoiseProduct::from_bases([b(0); 4]);
        assert!((fourth.expectation(&model) - 1.0 / 80.0).abs() < 1e-18);
        assert!(sq.all_exponents_even());
        assert!(!NoiseProduct::from_basis(b(0)).all_exponents_even());
        assert_eq!(NoiseProduct::one().expectation(&model), 1.0);
    }

    #[test]
    fn numeric_evaluation_matches_structure() {
        let p = NoiseProduct::from_bases([b(0), b(0), b(2)]);
        let values = [0.5, 9.0, -2.0];
        assert!((p.evaluate(&values) - 0.25 * -2.0).abs() < 1e-15);
        assert_eq!(NoiseProduct::one().evaluate(&values), 1.0);
    }

    #[test]
    fn display_formats_exponents() {
        let p = NoiseProduct::from_bases([b(0), b(0), b(3)]);
        assert_eq!(p.to_string(), "N0^2·N3");
        assert_eq!(NoiseProduct::one().to_string(), "1");
    }

    #[test]
    fn kronecker_delta_property() {
        // ⟨N_i · N_j⟩ = δ_ij · Var  (Definition 7 of the paper, up to scaling)
        let model = MomentModel::unit_rtw();
        let same = NoiseProduct::from_bases([b(4), b(4)]);
        let diff = NoiseProduct::from_bases([b(4), b(5)]);
        assert_eq!(same.expectation(&model), 1.0);
        assert_eq!(diff.expectation(&model), 0.0);
    }

    #[test]
    fn hyperspace_product_orthogonality() {
        // Z_{i,j} = V_i · V_j is orthogonal to every basis V_k (paper §III.A):
        // ⟨Z_{i,j} · V_k⟩ = 0 for all k.
        let model = MomentModel::uniform_half();
        let z = NoiseProduct::from_bases([b(0), b(1)]);
        for k in 0..4 {
            let with_vk = z.multiplied_by(&NoiseProduct::from_basis(b(k)));
            assert_eq!(with_vk.expectation(&model), 0.0, "k={k}");
        }
    }
}
