//! Set-algebra ("logic gate") operations on hyperspace superpositions.
//!
//! In noise-based logic a wire carries an additive superposition of hyperspace
//! elements, i.e. a *set* of minterms; Boolean operations on functions become
//! set operations on those superpositions (Kish, Khatri, Sethuraman — the
//! hyperspace paper the NBL-SAT construction builds on). This module provides
//! those operations on [`Superposition`]s whose terms are unit-coefficient
//! minterms over a given [`HyperspaceBuilder`]:
//!
//! * union (OR), intersection (AND), complement (NOT), difference, XOR,
//! * membership tests and conversion to/from explicit minterm masks.
//!
//! The NBL-SAT Σ_N construction is exactly the clause-wise union of literal
//! cube subspaces followed by the product (intersection via correlation) with
//! τ_N; these helpers let that algebra be exercised and tested directly.

use crate::hyperspace::HyperspaceBuilder;
use crate::product::NoiseProduct;
use crate::superposition::Superposition;

/// A set of minterms over an `n`-variable space, represented both as a noise
/// superposition and as the explicit list of minterm masks.
///
/// ```
/// use nbl_logic::{HyperspaceBuilder, MintermSet};
/// let builder = HyperspaceBuilder::new(2);
/// let a = MintermSet::from_masks(&builder, [0b01]);       // {x1 x̄2}
/// let b = MintermSet::from_masks(&builder, [0b01, 0b10]); // {x1 x̄2, x̄1 x2}
/// assert_eq!(a.union(&b).len(), 2);
/// assert_eq!(a.intersection(&b).len(), 1);
/// assert_eq!(b.complement().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MintermSet {
    builder: HyperspaceBuilder,
    masks: Vec<u64>,
}

impl MintermSet {
    /// Creates the empty set over the builder's variable space.
    pub fn empty(builder: &HyperspaceBuilder) -> Self {
        MintermSet {
            builder: builder.clone(),
            masks: Vec::new(),
        }
    }

    /// Creates the full space (all `2^n` minterms).
    ///
    /// # Panics
    ///
    /// Panics if the builder spans more than 24 variables.
    pub fn full(builder: &HyperspaceBuilder) -> Self {
        assert!(
            builder.num_vars() <= 24,
            "explicit minterm sets limited to 24 variables"
        );
        MintermSet {
            builder: builder.clone(),
            masks: (0..(1u64 << builder.num_vars())).collect(),
        }
    }

    /// Creates a set from explicit minterm masks (bit `i` = value of variable `i`).
    ///
    /// Masks are deduplicated and kept sorted.
    pub fn from_masks<I: IntoIterator<Item = u64>>(builder: &HyperspaceBuilder, masks: I) -> Self {
        let mut masks: Vec<u64> = masks.into_iter().collect();
        masks.sort_unstable();
        masks.dedup();
        MintermSet {
            builder: builder.clone(),
            masks,
        }
    }

    /// Number of minterms in the set.
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }

    /// Returns `true` if the set contains the given minterm mask.
    pub fn contains(&self, mask: u64) -> bool {
        self.masks.binary_search(&mask).is_ok()
    }

    /// The minterm masks in increasing order.
    pub fn masks(&self) -> &[u64] {
        &self.masks
    }

    /// Union (Boolean OR of the characteristic functions).
    pub fn union(&self, other: &MintermSet) -> MintermSet {
        let mut masks = self.masks.clone();
        masks.extend_from_slice(&other.masks);
        MintermSet::from_masks(&self.builder, masks)
    }

    /// Intersection (Boolean AND).
    pub fn intersection(&self, other: &MintermSet) -> MintermSet {
        MintermSet::from_masks(
            &self.builder,
            self.masks.iter().copied().filter(|m| other.contains(*m)),
        )
    }

    /// Difference `self \ other`.
    pub fn difference(&self, other: &MintermSet) -> MintermSet {
        MintermSet::from_masks(
            &self.builder,
            self.masks.iter().copied().filter(|m| !other.contains(*m)),
        )
    }

    /// Symmetric difference (Boolean XOR).
    pub fn symmetric_difference(&self, other: &MintermSet) -> MintermSet {
        self.union(other).difference(&self.intersection(other))
    }

    /// Complement with respect to the full `2^n` space (Boolean NOT).
    ///
    /// # Panics
    ///
    /// Panics if the builder spans more than 24 variables.
    pub fn complement(&self) -> MintermSet {
        MintermSet::full(&self.builder).difference(self)
    }

    /// The single-wire NBL encoding of the set: the additive superposition of
    /// its noise minterms.
    pub fn to_superposition(&self) -> Superposition {
        Superposition::from_products(self.masks.iter().map(|&m| self.builder.minterm(m)))
    }

    /// Recovers a set from a unit-coefficient superposition of minterms of the
    /// same builder. Terms that are not minterms of this builder are ignored.
    pub fn from_superposition(builder: &HyperspaceBuilder, s: &Superposition) -> Self {
        let n = builder.num_vars();
        let masks = (0..(1u64 << n)).filter(|&m| {
            let product: NoiseProduct = builder.minterm(m);
            s.coefficient(&product) != 0.0
        });
        MintermSet::from_masks(builder, masks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::MomentModel;

    fn builder() -> HyperspaceBuilder {
        HyperspaceBuilder::new(3)
    }

    #[test]
    fn set_algebra_matches_boolean_algebra() {
        let b = builder();
        // f = x1 (minterms with bit0 set), g = x2 (bit1 set)
        let f = MintermSet::from_masks(&b, (0..8u64).filter(|m| m & 1 == 1));
        let g = MintermSet::from_masks(&b, (0..8u64).filter(|m| m & 2 == 2));
        assert_eq!(f.len(), 4);
        assert_eq!(f.union(&g).len(), 6); // x1 + x2
        assert_eq!(f.intersection(&g).len(), 2); // x1·x2
        assert_eq!(f.difference(&g).len(), 2); // x1·x̄2
        assert_eq!(f.symmetric_difference(&g).len(), 4); // x1 ⊕ x2
        assert_eq!(f.complement().len(), 4); // x̄1
        assert!(f.complement().intersection(&f).is_empty());
        assert_eq!(f.complement().union(&f), MintermSet::full(&b));
    }

    #[test]
    fn empty_and_full_identities() {
        let b = builder();
        let empty = MintermSet::empty(&b);
        let full = MintermSet::full(&b);
        let f = MintermSet::from_masks(&b, [1, 5, 7]);
        assert_eq!(f.union(&empty), f);
        assert_eq!(f.intersection(&full), f);
        assert_eq!(f.intersection(&empty), empty);
        assert_eq!(full.len(), 8);
        assert!(empty.is_empty());
    }

    #[test]
    fn superposition_roundtrip() {
        let b = builder();
        let f = MintermSet::from_masks(&b, [0, 3, 6]);
        let s = f.to_superposition();
        assert_eq!(s.num_terms(), 3);
        let back = MintermSet::from_superposition(&b, &s);
        assert_eq!(back, f);
    }

    #[test]
    fn correlation_of_encodings_counts_shared_minterms() {
        // ⟨enc(A)·enc(B)⟩ = |A ∩ B| · Var^n — the readout NBL-SAT relies on.
        let b = builder();
        let model = MomentModel::uniform_half();
        let a = MintermSet::from_masks(&b, [0, 1, 2, 5]);
        let c = MintermSet::from_masks(&b, [1, 5, 7]);
        let expectation = a
            .to_superposition()
            .multiplied_by(&c.to_superposition())
            .expectation(&model);
        let expected = a.intersection(&c).len() as f64 * (1.0f64 / 12.0).powi(3);
        assert!((expectation - expected).abs() < 1e-15);
    }

    #[test]
    fn membership_and_dedup() {
        let b = builder();
        let f = MintermSet::from_masks(&b, [2, 2, 4]);
        assert_eq!(f.len(), 2);
        assert!(f.contains(2));
        assert!(!f.contains(3));
        assert_eq!(f.masks(), &[2, 4]);
    }
}
