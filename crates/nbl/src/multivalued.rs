//! Multi-valued noise-based logic.
//!
//! Reference \[14\] of the NBL-SAT paper (Kish, *"Noise-based logic: binary,
//! multi-valued, or fuzzy …"*) observes that the carrier algebra is not
//! limited to binary variables: an `L`-valued variable can be represented by
//! `L` pairwise-independent basis carriers, one per value, and a wire can
//! carry the additive superposition of any subset of the resulting
//! multi-valued *states* (one carrier chosen per variable). This module
//! implements that representation:
//!
//! * [`MvSpace`] — a mixed-radix variable space with one [`BasisId`] per
//!   (variable, value) pair,
//! * state products, the all-states superposition (the multi-valued analogue
//!   of Eq. (1) of the paper) and value binding,
//! * [`MvSet`] — set algebra over states, mirroring [`MintermSet`](crate::MintermSet)
//!   for the binary case.
//!
//! Together these are the substrate a multi-valued constraint problem (e.g.
//! graph coloring, which the workspace's `cnf` crate otherwise encodes into
//! binary CNF) needs in order to be checked by correlation exactly like
//! NBL-SAT checks CNF instances.

use crate::basis::BasisId;
use crate::product::NoiseProduct;
use crate::superposition::Superposition;
use std::fmt;

/// Largest number of states for which explicit enumeration is allowed.
pub const MV_STATE_LIMIT: u64 = 1 << 24;

/// A multi-valued variable space: variable `i` ranges over
/// `0..domain_sizes[i]` and owns one basis carrier per value.
///
/// ```
/// use nbl_logic::multivalued::MvSpace;
///
/// // Two ternary variables (e.g. two vertices to be 3-colored).
/// let space = MvSpace::new(vec![3, 3]);
/// assert_eq!(space.num_states(), 9);
/// assert_eq!(space.num_carriers(), 6);
/// let state = space.state_product(&[2, 1]);
/// assert_eq!(state.num_distinct_bases(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MvSpace {
    domain_sizes: Vec<usize>,
    carrier_offsets: Vec<usize>,
}

impl MvSpace {
    /// Creates a space with the given per-variable domain sizes.
    ///
    /// # Panics
    ///
    /// Panics if any domain is empty or the total state count exceeds
    /// [`MV_STATE_LIMIT`].
    pub fn new(domain_sizes: Vec<usize>) -> Self {
        assert!(
            domain_sizes.iter().all(|&d| d >= 1),
            "every variable needs at least one value"
        );
        let states: u64 = domain_sizes.iter().map(|&d| d as u64).product();
        assert!(
            states <= MV_STATE_LIMIT,
            "state space of {states} states exceeds the supported limit"
        );
        let mut carrier_offsets = Vec::with_capacity(domain_sizes.len());
        let mut offset = 0usize;
        for &d in &domain_sizes {
            carrier_offsets.push(offset);
            offset += d;
        }
        MvSpace {
            domain_sizes,
            carrier_offsets,
        }
    }

    /// Creates a space of `num_vars` variables that all share the same domain size.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`MvSpace::new`].
    pub fn uniform(num_vars: usize, domain_size: usize) -> Self {
        MvSpace::new(vec![domain_size; num_vars])
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.domain_sizes.len()
    }

    /// Domain size of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn domain_size(&self, var: usize) -> usize {
        self.domain_sizes[var]
    }

    /// Total number of states (the product of the domain sizes).
    pub fn num_states(&self) -> u64 {
        self.domain_sizes.iter().map(|&d| d as u64).product()
    }

    /// Total number of basis carriers allocated (the sum of the domain sizes).
    pub fn num_carriers(&self) -> usize {
        self.domain_sizes.iter().sum()
    }

    /// The basis carrier representing `variable = value`.
    ///
    /// # Panics
    ///
    /// Panics if the variable or value is out of range.
    pub fn carrier(&self, var: usize, value: usize) -> BasisId {
        assert!(var < self.num_vars(), "variable {var} out of range");
        assert!(
            value < self.domain_sizes[var],
            "value {value} out of range for variable {var}"
        );
        BasisId::new(self.carrier_offsets[var] + value)
    }

    /// The noise product representing one complete state (one value per variable).
    ///
    /// # Panics
    ///
    /// Panics if the tuple length or any value is out of range.
    pub fn state_product(&self, values: &[usize]) -> NoiseProduct {
        assert_eq!(
            values.len(),
            self.num_vars(),
            "state tuple must assign every variable"
        );
        NoiseProduct::from_bases(
            values
                .iter()
                .enumerate()
                .map(|(var, &value)| self.carrier(var, value)),
        )
    }

    /// Converts a state index (mixed-radix, variable 0 least significant) to a tuple.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn index_to_tuple(&self, mut index: u64) -> Vec<usize> {
        assert!(index < self.num_states(), "state index out of range");
        let mut tuple = Vec::with_capacity(self.num_vars());
        for &d in &self.domain_sizes {
            tuple.push((index % d as u64) as usize);
            index /= d as u64;
        }
        tuple
    }

    /// Converts a tuple to its mixed-radix state index.
    ///
    /// # Panics
    ///
    /// Panics if the tuple length or any value is out of range.
    pub fn tuple_to_index(&self, values: &[usize]) -> u64 {
        assert_eq!(values.len(), self.num_vars());
        let mut index = 0u64;
        let mut scale = 1u64;
        for (var, &value) in values.iter().enumerate() {
            assert!(value < self.domain_sizes[var], "value out of range");
            index += value as u64 * scale;
            scale *= self.domain_sizes[var] as u64;
        }
        index
    }

    /// The multi-valued analogue of the paper's Eq. (1): the additive
    /// superposition of every state of the space, optionally with some
    /// variables bound to fixed values.
    ///
    /// `bindings[var] = Some(v)` restricts variable `var` to value `v`.
    ///
    /// # Panics
    ///
    /// Panics if `bindings` has the wrong length or binds an out-of-range value.
    pub fn all_states(&self, bindings: &[Option<usize>]) -> Superposition {
        assert_eq!(bindings.len(), self.num_vars());
        let mut result = Superposition::one();
        for (var, binding) in bindings.iter().enumerate() {
            let mut alternatives = Superposition::zero();
            match binding {
                Some(value) => {
                    alternatives.add_term(NoiseProduct::from_basis(self.carrier(var, *value)), 1.0);
                }
                None => {
                    for value in 0..self.domain_sizes[var] {
                        alternatives
                            .add_term(NoiseProduct::from_basis(self.carrier(var, value)), 1.0);
                    }
                }
            }
            result = result.multiplied_by(&alternatives);
        }
        result
    }
}

impl fmt::Display for MvSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mv-space of {} variables, {} states, {} carriers",
            self.num_vars(),
            self.num_states(),
            self.num_carriers()
        )
    }
}

/// A set of multi-valued states, with the same set algebra [`MintermSet`](crate::MintermSet)
/// provides for binary minterms.
///
/// ```
/// use nbl_logic::multivalued::{MvSet, MvSpace};
///
/// // "The two ternary variables differ" (a not-equal constraint).
/// let space = MvSpace::uniform(2, 3);
/// let diff = MvSet::from_predicate(&space, |t| t[0] != t[1]);
/// assert_eq!(diff.len(), 6);
/// assert!(diff.complement().iter_tuples().all(|t| t[0] == t[1]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MvSet {
    space: MvSpace,
    indices: Vec<u64>,
}

impl MvSet {
    /// The empty set over the given space.
    pub fn empty(space: &MvSpace) -> Self {
        MvSet {
            space: space.clone(),
            indices: Vec::new(),
        }
    }

    /// The full state space.
    pub fn full(space: &MvSpace) -> Self {
        MvSet {
            space: space.clone(),
            indices: (0..space.num_states()).collect(),
        }
    }

    /// A set built from explicit state tuples.
    ///
    /// # Panics
    ///
    /// Panics if any tuple is malformed for the space.
    pub fn from_tuples<I, T>(space: &MvSpace, tuples: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[usize]>,
    {
        let mut indices: Vec<u64> = tuples
            .into_iter()
            .map(|t| space.tuple_to_index(t.as_ref()))
            .collect();
        indices.sort_unstable();
        indices.dedup();
        MvSet {
            space: space.clone(),
            indices,
        }
    }

    /// A set built by evaluating a predicate on every state tuple.
    pub fn from_predicate<F: FnMut(&[usize]) -> bool>(space: &MvSpace, mut predicate: F) -> Self {
        let indices = (0..space.num_states())
            .filter(|&i| predicate(&space.index_to_tuple(i)))
            .collect();
        MvSet {
            space: space.clone(),
            indices,
        }
    }

    /// The space this set lives in.
    pub fn space(&self) -> &MvSpace {
        &self.space
    }

    /// Number of states in the set.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Returns `true` if the set contains the given state tuple.
    ///
    /// # Panics
    ///
    /// Panics if the tuple is malformed for the space.
    pub fn contains(&self, tuple: &[usize]) -> bool {
        self.indices
            .binary_search(&self.space.tuple_to_index(tuple))
            .is_ok()
    }

    /// Iterates over the state tuples of the set.
    pub fn iter_tuples(&self) -> impl Iterator<Item = Vec<usize>> + '_ {
        self.indices.iter().map(|&i| self.space.index_to_tuple(i))
    }

    /// Union (logical OR of the characteristic functions).
    pub fn union(&self, other: &MvSet) -> MvSet {
        let mut indices = self.indices.clone();
        indices.extend_from_slice(&other.indices);
        indices.sort_unstable();
        indices.dedup();
        MvSet {
            space: self.space.clone(),
            indices,
        }
    }

    /// Intersection (logical AND).
    pub fn intersection(&self, other: &MvSet) -> MvSet {
        MvSet {
            space: self.space.clone(),
            indices: self
                .indices
                .iter()
                .copied()
                .filter(|i| other.indices.binary_search(i).is_ok())
                .collect(),
        }
    }

    /// Complement with respect to the full state space.
    pub fn complement(&self) -> MvSet {
        MvSet {
            space: self.space.clone(),
            indices: (0..self.space.num_states())
                .filter(|i| self.indices.binary_search(i).is_err())
                .collect(),
        }
    }

    /// The single-wire NBL encoding of the set: the superposition of the
    /// noise products of its states.
    pub fn to_superposition(&self) -> Superposition {
        Superposition::from_products(
            self.indices
                .iter()
                .map(|&i| self.space.state_product(&self.space.index_to_tuple(i))),
        )
    }

    /// Lifts a constraint over a subset of variables to the full space: the
    /// returned set contains every state whose projection onto `vars`
    /// satisfies `predicate`. This is the multi-valued analogue of the cube
    /// subspaces `T_v` the NBL-SAT construction uses per clause literal.
    pub fn from_constraint<F>(space: &MvSpace, vars: &[usize], mut predicate: F) -> MvSet
    where
        F: FnMut(&[usize]) -> bool,
    {
        MvSet::from_predicate(space, |tuple| {
            let projected: Vec<usize> = vars.iter().map(|&v| tuple[v]).collect();
            predicate(&projected)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::MomentModel;

    #[test]
    fn space_bookkeeping() {
        let space = MvSpace::new(vec![2, 3, 4]);
        assert_eq!(space.num_vars(), 3);
        assert_eq!(space.num_states(), 24);
        assert_eq!(space.num_carriers(), 9);
        assert_eq!(space.domain_size(1), 3);
        assert!(space.to_string().contains("24 states"));
        // Carriers are distinct across (var, value) pairs.
        let mut seen = std::collections::HashSet::new();
        for var in 0..3 {
            for value in 0..space.domain_size(var) {
                assert!(seen.insert(space.carrier(var, value)));
            }
        }
    }

    #[test]
    fn tuple_index_round_trip() {
        let space = MvSpace::new(vec![2, 3, 4]);
        for index in 0..space.num_states() {
            let tuple = space.index_to_tuple(index);
            assert_eq!(space.tuple_to_index(&tuple), index);
        }
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_domain_rejected() {
        let _ = MvSpace::new(vec![2, 0]);
    }

    #[test]
    fn all_states_expands_to_every_state() {
        let space = MvSpace::uniform(2, 3);
        let all = space.all_states(&[None, None]);
        assert_eq!(all.num_terms(), 9);
        // Binding variable 0 to value 2 keeps exactly the 3 matching states.
        let bound = space.all_states(&[Some(2), None]);
        assert_eq!(bound.num_terms(), 3);
        for (product, coefficient) in bound.terms() {
            assert_eq!(coefficient, 1.0);
            assert_eq!(product.exponent(space.carrier(0, 2)), 1);
        }
    }

    #[test]
    fn distinct_states_are_orthogonal_in_expectation() {
        let space = MvSpace::uniform(2, 3);
        let model = MomentModel::uniform_half();
        let a = space.state_product(&[0, 1]);
        let b = space.state_product(&[1, 1]);
        // Different states share at most some carriers; the product contains
        // at least one carrier with odd exponent, so the expectation vanishes.
        assert_eq!(a.multiplied_by(&b).expectation(&model), 0.0);
        // A state correlated with itself has positive expectation.
        assert!(a.multiplied_by(&a).expectation(&model) > 0.0);
    }

    #[test]
    fn set_algebra_matches_predicates() {
        let space = MvSpace::uniform(2, 3);
        let diff = MvSet::from_predicate(&space, |t| t[0] != t[1]);
        let eq = MvSet::from_predicate(&space, |t| t[0] == t[1]);
        assert_eq!(diff.len(), 6);
        assert_eq!(eq.len(), 3);
        assert_eq!(diff.union(&eq).len(), 9);
        assert!(diff.intersection(&eq).is_empty());
        assert_eq!(diff.complement(), eq);
        assert!(diff.contains(&[0, 2]));
        assert!(!diff.contains(&[2, 2]));
    }

    #[test]
    fn triangle_coloring_feasibility() {
        // Three vertices, all adjacent: 3 colors suffice, 2 do not.
        for (colors, expect_feasible) in [(3usize, true), (2usize, false)] {
            let space = MvSpace::uniform(3, colors);
            let edges = [(0usize, 1usize), (1, 2), (0, 2)];
            let mut feasible = MvSet::full(&space);
            for (u, v) in edges {
                let constraint = MvSet::from_constraint(&space, &[u, v], |t| t[0] != t[1]);
                feasible = feasible.intersection(&constraint);
            }
            assert_eq!(
                !feasible.is_empty(),
                expect_feasible,
                "{colors}-coloring of a triangle"
            );
            if expect_feasible {
                // Every surviving state really is a proper coloring.
                for tuple in feasible.iter_tuples() {
                    for (u, v) in edges {
                        assert_ne!(tuple[u], tuple[v]);
                    }
                }
            }
        }
    }

    #[test]
    fn superposition_term_count_matches_set_size() {
        let space = MvSpace::uniform(2, 4);
        let set = MvSet::from_predicate(&space, |t| t[0] + t[1] == 3);
        let superposition = set.to_superposition();
        assert_eq!(superposition.num_terms(), set.len());
    }

    #[test]
    fn from_tuples_deduplicates() {
        let space = MvSpace::uniform(2, 2);
        let set = MvSet::from_tuples(&space, [[0, 1], [0, 1], [1, 1]]);
        assert_eq!(set.len(), 2);
    }
}
