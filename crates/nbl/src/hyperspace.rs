//! The NBL logic hyperspace: all `2^n` minterms on a single wire.
//!
//! Starting from `2n` basis bits (one per literal of each of `n` variables),
//! the construction of Eq. (1) in the paper,
//! `T = (N_x1 + N_x̄1)(N_x2 + N_x̄2)···(N_xn + N_x̄n)`,
//! expands into the additive superposition of all `2^n` noise minterms. The
//! same construction with some variables *bound* to a literal yields the
//! superposition of the minterms inside that cube subspace (Example 4).

use crate::basis::BasisId;
use crate::product::NoiseProduct;
use crate::superposition::Superposition;
use std::fmt;

/// Which literals of each variable participate in the hyperspace product.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VariableBinding {
    /// Both literals participate: `(N_x + N_x̄)` (the variable is free).
    #[default]
    Free,
    /// Only the positive literal participates (variable bound to 1).
    BoundTrue,
    /// Only the negative literal participates (variable bound to 0).
    BoundFalse,
}

/// Builder for a logic hyperspace over `n` variables.
///
/// The builder owns the mapping from `(variable, polarity)` to [`BasisId`];
/// by default variable `i`'s positive literal uses basis `2i` and its negative
/// literal basis `2i + 1`, but a custom mapping can be supplied (the NBL-SAT
/// Σ_N construction needs per-clause source families).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HyperspaceBuilder {
    num_vars: usize,
    /// `sources[i] = (positive-literal basis, negative-literal basis)`.
    sources: Vec<(BasisId, BasisId)>,
    bindings: Vec<VariableBinding>,
}

impl HyperspaceBuilder {
    /// Creates a builder with the default dense basis mapping
    /// (`x_i → N_{2i}`, `x̄_i → N_{2i+1}`).
    pub fn new(num_vars: usize) -> Self {
        HyperspaceBuilder {
            num_vars,
            sources: (0..num_vars)
                .map(|i| (BasisId::new(2 * i), BasisId::new(2 * i + 1)))
                .collect(),
            bindings: vec![VariableBinding::Free; num_vars],
        }
    }

    /// Creates a builder with an explicit `(positive, negative)` basis pair
    /// per variable.
    pub fn with_sources(sources: Vec<(BasisId, BasisId)>) -> Self {
        HyperspaceBuilder {
            num_vars: sources.len(),
            bindings: vec![VariableBinding::Free; sources.len()],
            sources,
        }
    }

    /// Number of variables spanned by the hyperspace.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Binds variable `var` (0-based) to a constant, restricting the
    /// hyperspace to the corresponding cube subspace.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn bind(&mut self, var: usize, value: bool) -> &mut Self {
        assert!(var < self.num_vars, "variable index out of range");
        self.bindings[var] = if value {
            VariableBinding::BoundTrue
        } else {
            VariableBinding::BoundFalse
        };
        self
    }

    /// Removes the binding of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn unbind(&mut self, var: usize) -> &mut Self {
        assert!(var < self.num_vars, "variable index out of range");
        self.bindings[var] = VariableBinding::Free;
        self
    }

    /// The current binding of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn binding(&self, var: usize) -> VariableBinding {
        self.bindings[var]
    }

    /// Number of currently free (unbound) variables.
    pub fn num_free_vars(&self) -> usize {
        self.bindings
            .iter()
            .filter(|b| matches!(b, VariableBinding::Free))
            .count()
    }

    /// Expected number of minterms in the (restricted) hyperspace: `2^free`.
    pub fn cardinality(&self) -> u128 {
        1u128 << self.num_free_vars()
    }

    /// Expands the hyperspace into an explicit [`Superposition`] of noise
    /// minterms (Eq. (1) of the paper, with bindings applied).
    ///
    /// # Panics
    ///
    /// Panics if the expansion would exceed 2^24 terms; explicit expansion is
    /// meant for small instances and validation, not for large `n`.
    pub fn expand(&self) -> Hyperspace {
        assert!(
            self.num_free_vars() <= 24,
            "explicit hyperspace expansion limited to 24 free variables"
        );
        let mut superposition = Superposition::one();
        for (i, &(pos, neg)) in self.sources.iter().enumerate() {
            let factor = match self.bindings[i] {
                VariableBinding::Free => {
                    Superposition::from_basis(pos).added_to(&Superposition::from_basis(neg))
                }
                VariableBinding::BoundTrue => Superposition::from_basis(pos),
                VariableBinding::BoundFalse => Superposition::from_basis(neg),
            };
            superposition = superposition.multiplied_by(&factor);
        }
        Hyperspace {
            num_vars: self.num_vars,
            superposition,
        }
    }

    /// Returns the noise minterm (a single [`NoiseProduct`]) corresponding to
    /// a complete assignment given as a bit mask (bit `i` = value of variable `i`).
    pub fn minterm(&self, assignment_mask: u64) -> NoiseProduct {
        NoiseProduct::from_bases(self.sources.iter().enumerate().map(|(i, &(pos, neg))| {
            if (assignment_mask >> i) & 1 == 1 {
                pos
            } else {
                neg
            }
        }))
    }
}

/// An expanded logic hyperspace: the superposition of all selected minterms.
#[derive(Debug, Clone, PartialEq)]
pub struct Hyperspace {
    num_vars: usize,
    superposition: Superposition,
}

impl Hyperspace {
    /// Number of variables spanned.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of minterms in the superposition.
    pub fn num_minterms(&self) -> usize {
        self.superposition.num_terms()
    }

    /// The underlying superposition.
    pub fn superposition(&self) -> &Superposition {
        &self.superposition
    }

    /// Consumes the hyperspace and returns its superposition.
    pub fn into_superposition(self) -> Superposition {
        self.superposition
    }

    /// Returns `true` if the given noise minterm is present.
    pub fn contains(&self, minterm: &NoiseProduct) -> bool {
        self.superposition.coefficient(minterm) != 0.0
    }
}

impl fmt::Display for Hyperspace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hyperspace over {} vars with {} minterms",
            self.num_vars,
            self.num_minterms()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::MomentModel;

    #[test]
    fn full_hyperspace_has_2_pow_n_minterms() {
        for n in 0..=4 {
            let hs = HyperspaceBuilder::new(n).expand();
            assert_eq!(hs.num_minterms(), 1usize << n, "n={n}");
            assert_eq!(hs.num_vars(), n);
        }
    }

    #[test]
    fn example1_hyperspace_elements() {
        // Paper Example 1: 4 basis bits -> 4 hyperspace elements
        // V01·V02, V01·V12, V11·V02, V11·V12.
        let builder = HyperspaceBuilder::new(2);
        let hs = builder.expand();
        assert_eq!(hs.num_minterms(), 4);
        for mask in 0..4u64 {
            assert!(hs.contains(&builder.minterm(mask)));
        }
    }

    #[test]
    fn binding_restricts_to_cube_subspace() {
        // Example 4: binding x1 keeps only the 2^(n-1) minterms with x1 = 1.
        let mut builder = HyperspaceBuilder::new(3);
        builder.bind(0, true);
        let hs = builder.expand();
        assert_eq!(hs.num_minterms(), 4);
        assert_eq!(builder.cardinality(), 4);
        assert_eq!(builder.num_free_vars(), 2);
        // Each contained minterm uses the positive-literal source of x1 (basis 0).
        for (p, _) in hs.superposition().terms() {
            assert_eq!(p.exponent(BasisId::new(0)), 1);
            assert_eq!(p.exponent(BasisId::new(1)), 0);
        }
        builder.unbind(0);
        assert_eq!(builder.expand().num_minterms(), 8);
    }

    #[test]
    fn bound_false_uses_negative_source() {
        let mut builder = HyperspaceBuilder::new(2);
        builder.bind(1, false);
        assert_eq!(builder.binding(1), VariableBinding::BoundFalse);
        let hs = builder.expand();
        for (p, _) in hs.superposition().terms() {
            assert_eq!(p.exponent(BasisId::new(3)), 1); // N_x̄2
            assert_eq!(p.exponent(BasisId::new(2)), 0);
        }
    }

    #[test]
    fn minterms_are_mutually_orthogonal() {
        // Distinct minterms of the hyperspace have zero cross-expectation,
        // while each minterm's self-product has positive expectation.
        let builder = HyperspaceBuilder::new(2);
        let model = MomentModel::uniform_half();
        for a in 0..4u64 {
            for bm in 0..4u64 {
                let pa = builder.minterm(a);
                let pb = builder.minterm(bm);
                let expectation = pa.multiplied_by(&pb).expectation(&model);
                if a == bm {
                    assert!(expectation > 0.0);
                } else {
                    assert_eq!(expectation, 0.0);
                }
            }
        }
    }

    #[test]
    fn expectation_of_hyperspace_squared_counts_minterms() {
        // ⟨T·T⟩ = 2^n · Var^n for the uniform model, because only the 2^n
        // matched minterm pairs survive.
        let n = 3;
        let hs = HyperspaceBuilder::new(n).expand();
        let model = MomentModel::uniform_half();
        let t = hs.superposition();
        let expectation = t.multiplied_by(t).expectation(&model);
        let expected = (1u64 << n) as f64 * (1.0f64 / 12.0).powi(n as i32);
        assert!((expectation - expected).abs() < 1e-12);
    }

    #[test]
    fn custom_source_mapping() {
        let sources = vec![
            (BasisId::new(10), BasisId::new(11)),
            (BasisId::new(20), BasisId::new(21)),
        ];
        let builder = HyperspaceBuilder::with_sources(sources);
        assert_eq!(builder.num_vars(), 2);
        let m = builder.minterm(0b01);
        assert_eq!(m.exponent(BasisId::new(10)), 1);
        assert_eq!(m.exponent(BasisId::new(21)), 1);
    }

    #[test]
    fn display_mentions_counts() {
        let hs = HyperspaceBuilder::new(2).expand();
        assert!(hs.to_string().contains("4 minterms"));
    }

    #[test]
    #[should_panic]
    fn bind_out_of_range_panics() {
        let mut b = HyperspaceBuilder::new(2);
        b.bind(5, true);
    }
}
