//! Analog non-idealities: offsets, gain errors, soft saturation, quantization.
//!
//! Section V of the NBL-SAT paper proposes building the SAT engine from
//! wideband amplifiers, analog adders/multipliers and low-pass filters. Real
//! versions of those blocks are not ideal: they add DC offsets, have gain
//! mismatch, compress near the supply rails and — when the correlator output
//! is digitized — quantize. Because Algorithm 1 reads the verdict off a *DC
//! offset*, these non-idealities attack exactly the quantity the scheme
//! measures; this module provides parameterized imperfection models so the
//! benchmark harness can quantify how much imperfection the readout tolerates
//! (the non-ideality ablation experiment).
//!
//! [`Nonideality`] is a reusable imperfection description and
//! [`NonIdealBlock`] wraps *any* [`AnalogBlock`] with it, so an ideal datapath
//! can be degraded block-by-block without rebuilding it.

use crate::block::AnalogBlock;
use std::fmt;

/// A parameterized description of an analog block's imperfections, applied to
/// the block's output in this order: gain error → offset → soft saturation →
/// quantization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Nonideality {
    /// Multiplicative gain error (1.0 = ideal, 1.05 = +5 % gain).
    pub gain: f64,
    /// Additive DC offset at the output.
    pub offset: f64,
    /// Soft (tanh) saturation level; `None` disables compression.
    pub saturation: Option<f64>,
    /// Uniform quantizer resolution in bits together with its full-scale
    /// range ±`full_scale`; `None` disables quantization.
    pub quantizer: Option<(u32, f64)>,
}

impl Nonideality {
    /// The ideal (pass-through) setting.
    pub fn ideal() -> Self {
        Nonideality {
            gain: 1.0,
            offset: 0.0,
            saturation: None,
            quantizer: None,
        }
    }

    /// Sets the multiplicative gain error.
    pub fn with_gain(mut self, gain: f64) -> Self {
        self.gain = gain;
        self
    }

    /// Sets the additive output offset.
    pub fn with_offset(mut self, offset: f64) -> Self {
        self.offset = offset;
        self
    }

    /// Enables soft saturation: the output is compressed through
    /// `level · tanh(x / level)`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is not strictly positive.
    pub fn with_saturation(mut self, level: f64) -> Self {
        assert!(level > 0.0, "saturation level must be positive");
        self.saturation = Some(level);
        self
    }

    /// Enables an ideal mid-tread uniform quantizer with `bits` bits over the
    /// range ±`full_scale` (values outside the range clip).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 32, or `full_scale` is not
    /// strictly positive.
    pub fn with_quantizer(mut self, bits: u32, full_scale: f64) -> Self {
        assert!((1..=32).contains(&bits), "quantizer bits must be in 1..=32");
        assert!(full_scale > 0.0, "quantizer full scale must be positive");
        self.quantizer = Some((bits, full_scale));
        self
    }

    /// Returns `true` if every imperfection is disabled.
    pub fn is_ideal(&self) -> bool {
        self == &Nonideality::ideal()
    }

    /// Applies the imperfection chain to one output sample.
    pub fn apply(&self, value: f64) -> f64 {
        let mut out = value * self.gain + self.offset;
        if let Some(level) = self.saturation {
            out = level * (out / level).tanh();
        }
        if let Some((bits, full_scale)) = self.quantizer {
            let levels = (1u64 << bits) as f64;
            let step = 2.0 * full_scale / levels;
            let clipped = out.clamp(-full_scale, full_scale);
            out = (clipped / step).round() * step;
        }
        out
    }
}

impl Default for Nonideality {
    fn default() -> Self {
        Nonideality::ideal()
    }
}

impl fmt::Display for Nonideality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gain={} offset={}", self.gain, self.offset)?;
        if let Some(level) = self.saturation {
            write!(f, " sat=±{level}")?;
        }
        if let Some((bits, full_scale)) = self.quantizer {
            write!(f, " quant={bits}b@±{full_scale}")?;
        }
        Ok(())
    }
}

/// Wraps any [`AnalogBlock`] and degrades its output with a [`Nonideality`].
///
/// ```
/// use nbl_analog::{AnalogBlock, Multiplier, NonIdealBlock, Nonideality};
///
/// let imperfect = Nonideality::ideal().with_gain(1.1).with_offset(0.02);
/// let mut multiplier = NonIdealBlock::new(Multiplier::new(), imperfect);
/// let out = multiplier.process(&[0.5, 0.5]);
/// assert!((out - (0.25 * 1.1 + 0.02)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct NonIdealBlock<B> {
    inner: B,
    nonideality: Nonideality,
}

impl<B: AnalogBlock> NonIdealBlock<B> {
    /// Wraps `inner` with the given imperfection description.
    pub fn new(inner: B, nonideality: Nonideality) -> Self {
        NonIdealBlock { inner, nonideality }
    }

    /// The imperfection description.
    pub fn nonideality(&self) -> Nonideality {
        self.nonideality
    }

    /// Read access to the wrapped block.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Unwraps the inner block.
    pub fn into_inner(self) -> B {
        self.inner
    }
}

impl<B: AnalogBlock> AnalogBlock for NonIdealBlock<B> {
    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }

    fn process(&mut self, inputs: &[f64]) -> f64 {
        self.nonideality.apply(self.inner.process(inputs))
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn name(&self) -> &'static str {
        "non-ideal"
    }
}

/// A standalone ideal analog-to-digital quantizer block (single input).
///
/// Useful as the last stage of the correlator datapath when modelling a
/// digitized readout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    nonideality: Nonideality,
}

impl Quantizer {
    /// Creates a `bits`-bit quantizer over the range ±`full_scale`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Nonideality::with_quantizer`].
    pub fn new(bits: u32, full_scale: f64) -> Self {
        Quantizer {
            nonideality: Nonideality::ideal().with_quantizer(bits, full_scale),
        }
    }

    /// The quantization step size.
    pub fn step(&self) -> f64 {
        let (bits, full_scale) = self.nonideality.quantizer.expect("always configured");
        2.0 * full_scale / (1u64 << bits) as f64
    }
}

impl AnalogBlock for Quantizer {
    fn num_inputs(&self) -> usize {
        1
    }

    fn process(&mut self, inputs: &[f64]) -> f64 {
        assert_eq!(inputs.len(), 1, "quantizer takes one input");
        self.nonideality.apply(inputs[0])
    }

    fn reset(&mut self) {}

    fn name(&self) -> &'static str {
        "quantizer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiplier::Multiplier;
    use crate::summer::Summer;

    #[test]
    fn ideal_setting_is_a_passthrough() {
        let ideal = Nonideality::ideal();
        assert!(ideal.is_ideal());
        for x in [-1.0, -0.25, 0.0, 0.3, 2.0] {
            assert_eq!(ideal.apply(x), x);
        }
    }

    #[test]
    fn gain_and_offset_compose_linearly() {
        let imperfection = Nonideality::ideal().with_gain(0.9).with_offset(-0.05);
        assert!((imperfection.apply(1.0) - 0.85).abs() < 1e-12);
        assert!((imperfection.apply(0.0) + 0.05).abs() < 1e-12);
        assert!(!imperfection.is_ideal());
        assert!(imperfection.to_string().contains("gain=0.9"));
    }

    #[test]
    fn saturation_compresses_large_signals_only() {
        let imperfection = Nonideality::ideal().with_saturation(1.0);
        // Small signals pass nearly unchanged, large ones clip towards ±1.
        assert!((imperfection.apply(0.01) - 0.01).abs() < 1e-4);
        assert!(imperfection.apply(10.0) < 1.0);
        assert!(imperfection.apply(10.0) > 0.99);
        assert!(imperfection.apply(-10.0) > -1.0);
    }

    #[test]
    fn quantizer_rounds_to_grid_and_clips() {
        let quantizer = Nonideality::ideal().with_quantizer(3, 1.0); // step 0.25
        assert!((quantizer.apply(0.13) - 0.25).abs() < 1e-12);
        assert!((quantizer.apply(0.12) - 0.0).abs() < 1e-12);
        assert!((quantizer.apply(5.0) - 1.0).abs() < 1e-12);
        assert!((quantizer.apply(-5.0) + 1.0).abs() < 1e-12);
        let block = Quantizer::new(3, 1.0);
        assert!((block.step() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn wrapped_block_applies_imperfections_after_inner_processing() {
        let imperfection = Nonideality::ideal().with_gain(2.0).with_offset(0.1);
        let mut block = NonIdealBlock::new(Multiplier::new(), imperfection);
        assert_eq!(block.num_inputs(), 2);
        let out = block.process(&[0.5, -0.5]);
        assert!((out - (-0.25 * 2.0 + 0.1)).abs() < 1e-12);
        assert_eq!(block.nonideality(), imperfection);
        block.reset();
        let _inner: Multiplier = block.into_inner();
    }

    #[test]
    fn wrapping_a_summer_preserves_arity() {
        let mut block = NonIdealBlock::new(Summer::new(3), Nonideality::ideal().with_offset(0.5));
        assert_eq!(block.num_inputs(), 3);
        assert!((block.process(&[0.1, 0.2, 0.3]) - 1.1).abs() < 1e-12);
    }

    #[test]
    fn quantizer_block_validates_input_arity() {
        let mut quantizer = Quantizer::new(8, 2.0);
        assert_eq!(quantizer.num_inputs(), 1);
        let out = quantizer.process(&[0.4999]);
        assert!((out - 0.5).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=32")]
    fn zero_bit_quantizer_rejected() {
        let _ = Nonideality::ideal().with_quantizer(0, 1.0);
    }
}
