//! The on-chip correlator block (multiply and integrate).

use crate::block::AnalogBlock;

/// A correlator block: accumulates the running average of its single input.
///
/// Together with a [`crate::Multiplier`] in front of it, this realizes the
/// "multiply and average" operation that reads out ⟨S_N⟩ in the hardware
/// engine the paper sketches. The block reports the running mean of all
/// samples processed since the last reset.
///
/// ```
/// use nbl_analog::{AnalogBlock, CorrelatorBlock};
/// let mut c = CorrelatorBlock::new();
/// c.process(&[1.0]);
/// c.process(&[3.0]);
/// assert_eq!(c.output(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CorrelatorBlock {
    sum: f64,
    count: u64,
}

impl CorrelatorBlock {
    /// Creates an empty correlator.
    pub fn new() -> Self {
        CorrelatorBlock::default()
    }

    /// The running mean of all integrated samples (0 before any sample).
    pub fn output(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of samples integrated so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl AnalogBlock for CorrelatorBlock {
    fn num_inputs(&self) -> usize {
        1
    }

    fn process(&mut self, inputs: &[f64]) -> f64 {
        assert_eq!(inputs.len(), 1, "correlator takes exactly one input");
        self.sum += inputs[0];
        self.count += 1;
        self.output()
    }

    fn reset(&mut self) {
        self.sum = 0.0;
        self.count = 0;
    }

    fn name(&self) -> &'static str {
        "correlator"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean() {
        let mut c = CorrelatorBlock::new();
        assert_eq!(c.output(), 0.0);
        for i in 1..=10 {
            c.process(&[i as f64]);
        }
        assert_eq!(c.output(), 5.5);
        assert_eq!(c.count(), 10);
    }

    #[test]
    fn reset_clears_accumulator() {
        let mut c = CorrelatorBlock::new();
        c.process(&[4.0]);
        c.reset();
        assert_eq!(c.output(), 0.0);
        assert_eq!(c.count(), 0);
    }

    #[test]
    fn zero_mean_input_averages_to_zero() {
        let mut c = CorrelatorBlock::new();
        for i in 0..1000 {
            c.process(&[if i % 2 == 0 { 1.0 } else { -1.0 }]);
        }
        assert!(c.output().abs() < 1e-12);
    }
}
