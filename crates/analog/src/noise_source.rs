//! Noise source blocks bridging the carrier substrate into a netlist.

use crate::block::AnalogBlock;
use nbl_noise::{CarrierBank, CarrierKind};

/// A zero-input analog block that emits one basis carrier of a
/// [`CarrierBank`].
///
/// In a physical engine this is "a wideband amplifier amplifying a resistor's
/// thermal noise" (or an on-chip oscillator in the SBL variant); in the
/// simulation it adapts the `nbl-noise` carrier banks to the
/// [`AnalogBlock`] interface so noise sources can appear in a [`crate::Netlist`].
///
/// Because a carrier bank produces all of its sources simultaneously, the
/// block owns a private single-source bank; independent blocks get independent
/// seeds.
#[derive(Debug)]
pub struct NoiseSourceBlock {
    bank: Box<dyn CarrierBank>,
    buffer: [f64; 1],
}

impl NoiseSourceBlock {
    /// Creates a noise source of the given carrier family and seed.
    pub fn new(kind: CarrierKind, seed: u64) -> Self {
        NoiseSourceBlock {
            bank: kind.bank(1, seed),
            buffer: [0.0],
        }
    }

    /// The carrier family this source emits.
    pub fn family(&self) -> &'static str {
        self.bank.family()
    }
}

impl AnalogBlock for NoiseSourceBlock {
    fn num_inputs(&self) -> usize {
        0
    }

    fn process(&mut self, inputs: &[f64]) -> f64 {
        assert!(inputs.is_empty(), "noise source takes no inputs");
        self.bank.next_sample(&mut self.buffer);
        self.buffer[0]
    }

    fn reset(&mut self) {
        self.bank.reset();
    }

    fn name(&self) -> &'static str {
        "noise_source"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbl_noise::RunningStats;

    #[test]
    fn emits_zero_mean_noise() {
        let mut src = NoiseSourceBlock::new(CarrierKind::Uniform, 7);
        let mut stats = RunningStats::new();
        for _ in 0..20_000 {
            stats.push(src.process(&[]));
        }
        assert!(stats.mean().abs() < 0.01);
        assert_eq!(src.family(), "uniform");
        assert_eq!(src.num_inputs(), 0);
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = NoiseSourceBlock::new(CarrierKind::Uniform, 1);
        let mut b = NoiseSourceBlock::new(CarrierKind::Uniform, 2);
        let sa: Vec<f64> = (0..8).map(|_| a.process(&[])).collect();
        let sb: Vec<f64> = (0..8).map(|_| b.process(&[])).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn reset_replays_stream() {
        let mut src = NoiseSourceBlock::new(CarrierKind::Rtw, 5);
        let first: Vec<f64> = (0..16).map(|_| src.process(&[])).collect();
        src.reset();
        let second: Vec<f64> = (0..16).map(|_| src.process(&[])).collect();
        assert_eq!(first, second);
    }
}
