//! Wideband amplifiers.

use crate::block::AnalogBlock;

/// A wideband amplifier modelled as a gain stage with an optional single-pole
/// bandwidth limit and supply-rail saturation.
///
/// The paper proposes generating basis noise bits by amplifying a resistor's
/// thermal noise with a wideband amplifier; this block models that stage. With
/// `bandwidth_fraction = 1.0` (default) the amplifier is ideal and memoryless.
///
/// ```
/// use nbl_analog::{AnalogBlock, WidebandAmplifier};
/// let mut amp = WidebandAmplifier::new(20.0);
/// assert_eq!(amp.process(&[0.05]), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WidebandAmplifier {
    gain: f64,
    /// Normalized bandwidth in (0, 1]: 1.0 = ideal wideband, smaller values
    /// low-pass the output with a single pole at that fraction of Nyquist.
    bandwidth_fraction: f64,
    saturation: Option<f64>,
    state: f64,
}

impl WidebandAmplifier {
    /// Creates an ideal amplifier with the given voltage gain.
    ///
    /// # Panics
    ///
    /// Panics if `gain` is not finite.
    pub fn new(gain: f64) -> Self {
        assert!(gain.is_finite(), "gain must be finite");
        WidebandAmplifier {
            gain,
            bandwidth_fraction: 1.0,
            saturation: None,
            state: 0.0,
        }
    }

    /// Limits the amplifier's bandwidth to a fraction of the simulation
    /// Nyquist rate via a single-pole IIR response.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    pub fn with_bandwidth_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "bandwidth fraction must be in (0, 1]"
        );
        self.bandwidth_fraction = fraction;
        self
    }

    /// Clips the output to ±`limit` (supply rails).
    ///
    /// # Panics
    ///
    /// Panics if `limit` is not strictly positive.
    pub fn with_saturation(mut self, limit: f64) -> Self {
        assert!(limit > 0.0, "saturation limit must be positive");
        self.saturation = Some(limit);
        self
    }

    /// The amplifier's voltage gain.
    pub fn gain(&self) -> f64 {
        self.gain
    }
}

impl AnalogBlock for WidebandAmplifier {
    fn num_inputs(&self) -> usize {
        1
    }

    fn process(&mut self, inputs: &[f64]) -> f64 {
        assert_eq!(inputs.len(), 1, "amplifier takes exactly one input");
        let amplified = self.gain * inputs[0];
        let mut out = if self.bandwidth_fraction >= 1.0 {
            amplified
        } else {
            // Single-pole low-pass: y[k] = y[k-1] + α (x[k] − y[k-1])
            self.state += self.bandwidth_fraction * (amplified - self.state);
            self.state
        };
        if let Some(limit) = self.saturation {
            out = out.clamp(-limit, limit);
        }
        out
    }

    fn reset(&mut self) {
        self.state = 0.0;
    }

    fn name(&self) -> &'static str {
        "wideband_amplifier"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_gain() {
        let mut amp = WidebandAmplifier::new(-3.0);
        assert_eq!(amp.process(&[2.0]), -6.0);
        assert_eq!(amp.gain(), -3.0);
        assert_eq!(amp.num_inputs(), 1);
    }

    #[test]
    fn saturation_clips() {
        let mut amp = WidebandAmplifier::new(100.0).with_saturation(1.0);
        assert_eq!(amp.process(&[1.0]), 1.0);
        assert_eq!(amp.process(&[-1.0]), -1.0);
    }

    #[test]
    fn band_limited_amplifier_settles_to_dc_gain() {
        let mut amp = WidebandAmplifier::new(2.0).with_bandwidth_fraction(0.2);
        let mut last = 0.0;
        for _ in 0..200 {
            last = amp.process(&[1.0]);
        }
        assert!((last - 2.0).abs() < 1e-6);
        amp.reset();
        assert!(amp.process(&[1.0]) < 2.0);
    }

    #[test]
    fn band_limited_response_is_monotone_for_step() {
        let mut amp = WidebandAmplifier::new(1.0).with_bandwidth_fraction(0.5);
        let y1 = amp.process(&[1.0]);
        let y2 = amp.process(&[1.0]);
        let y3 = amp.process(&[1.0]);
        assert!(y1 < y2 && y2 < y3 && y3 < 1.0 + 1e-12);
    }

    #[test]
    #[should_panic]
    fn invalid_bandwidth_rejected() {
        let _ = WidebandAmplifier::new(1.0).with_bandwidth_fraction(0.0);
    }
}
