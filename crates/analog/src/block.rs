//! The [`AnalogBlock`] trait shared by every simulated component.

use std::fmt;

/// A discrete-time analog block.
///
/// Each call to [`AnalogBlock::process`] corresponds to one simulation time
/// step: the block reads its instantaneous input values and produces its
/// instantaneous output value. Stateful blocks (filters, correlators,
/// oscillators) update their internal state as a side effect.
pub trait AnalogBlock: fmt::Debug {
    /// Number of input ports the block expects.
    fn num_inputs(&self) -> usize;

    /// Processes one time step.
    ///
    /// # Panics
    ///
    /// Implementations panic if `inputs.len() != self.num_inputs()`.
    fn process(&mut self, inputs: &[f64]) -> f64;

    /// Resets internal state to the initial condition.
    fn reset(&mut self);

    /// Short human-readable component name (for netlist dumps).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Passthrough;

    impl AnalogBlock for Passthrough {
        fn num_inputs(&self) -> usize {
            1
        }
        fn process(&mut self, inputs: &[f64]) -> f64 {
            inputs[0]
        }
        fn reset(&mut self) {}
        fn name(&self) -> &'static str {
            "passthrough"
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let mut block: Box<dyn AnalogBlock> = Box::new(Passthrough);
        assert_eq!(block.num_inputs(), 1);
        assert_eq!(block.process(&[3.5]), 3.5);
        assert_eq!(block.name(), "passthrough");
        block.reset();
    }
}
