//! Analog multipliers.

use crate::block::AnalogBlock;

/// An analog multiplier (Gilbert-cell style four-quadrant multiplier in a real
/// implementation), with an optional scale factor and saturation limit.
///
/// Multipliers implement the conjunctions of the NBL construction: products of
/// basis sources inside minterms, and the clause-by-clause product Σ_N · τ_N.
///
/// ```
/// use nbl_analog::{AnalogBlock, Multiplier};
/// let mut m = Multiplier::new();
/// assert_eq!(m.process(&[-0.5, 0.5]), -0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Multiplier {
    num_inputs: usize,
    scale: f64,
    saturation: Option<f64>,
}

impl Multiplier {
    /// Creates an ideal two-input multiplier.
    pub fn new() -> Self {
        Multiplier {
            num_inputs: 2,
            scale: 1.0,
            saturation: None,
        }
    }

    /// Creates an ideal multiplier with `num_inputs` inputs (a product chain).
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs < 2`.
    pub fn with_inputs(num_inputs: usize) -> Self {
        assert!(num_inputs >= 2, "multiplier needs at least two inputs");
        Multiplier {
            num_inputs,
            scale: 1.0,
            saturation: None,
        }
    }

    /// Applies a gain factor to the product (real multipliers have a 1/V
    /// scale constant).
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Clips the output to ±`limit`, modelling supply-rail saturation.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is not strictly positive.
    pub fn with_saturation(mut self, limit: f64) -> Self {
        assert!(limit > 0.0, "saturation limit must be positive");
        self.saturation = Some(limit);
        self
    }
}

impl Default for Multiplier {
    fn default() -> Self {
        Multiplier::new()
    }
}

impl AnalogBlock for Multiplier {
    fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    fn process(&mut self, inputs: &[f64]) -> f64 {
        assert_eq!(inputs.len(), self.num_inputs, "input count mismatch");
        let mut out = self.scale * inputs.iter().product::<f64>();
        if let Some(limit) = self.saturation {
            out = out.clamp(-limit, limit);
        }
        out
    }

    fn reset(&mut self) {}

    fn name(&self) -> &'static str {
        "multiplier"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_input_product() {
        let mut m = Multiplier::new();
        assert_eq!(m.process(&[3.0, -2.0]), -6.0);
        assert_eq!(m.num_inputs(), 2);
    }

    #[test]
    fn chain_product() {
        let mut m = Multiplier::with_inputs(4);
        assert_eq!(m.process(&[1.0, 2.0, 3.0, 0.5]), 3.0);
    }

    #[test]
    fn scale_and_saturation() {
        let mut m = Multiplier::new().with_scale(10.0).with_saturation(5.0);
        assert_eq!(m.process(&[1.0, 1.0]), 5.0);
        assert_eq!(m.process(&[-1.0, 1.0]), -5.0);
        assert!((m.process(&[0.1, 0.1]) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn single_input_rejected() {
        let _ = Multiplier::with_inputs(1);
    }

    #[test]
    #[should_panic]
    fn wrong_arity_panics() {
        let mut m = Multiplier::new();
        let _ = m.process(&[1.0, 2.0, 3.0]);
    }
}
