//! Discrete-time simulation of the analog blocks an NBL-SAT engine would be
//! built from.
//!
//! Section V of the NBL-SAT paper argues that a hardware engine needs only
//! widely available components: wideband amplifiers (to amplify a resistor's
//! thermal noise into basis carriers), analog adders, analog multipliers,
//! low-pass filters and a correlator. This crate models each of those blocks
//! as an ideal (or optionally non-ideal) discrete-time transfer function and
//! lets them be composed into a netlist, so that the NBL-SAT datapath can be
//! simulated at the block level rather than only at the mathematical level.
//!
//! # Example: a multiply-and-average correlator datapath
//!
//! ```
//! use nbl_analog::{AnalogBlock, Multiplier, CorrelatorBlock};
//!
//! let mut mult = Multiplier::new();
//! let mut corr = CorrelatorBlock::new();
//! for _ in 0..100 {
//!     let product = mult.process(&[0.5, 0.5]);
//!     corr.process(&[product]);
//! }
//! assert!((corr.output() - 0.25).abs() < 1e-12);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod amplifier;
pub mod block;
pub mod correlator;
pub mod filter;
pub mod multiplier;
pub mod netlist;
pub mod noise_source;
pub mod nonideal;
pub mod summer;
pub mod thermal;

pub use amplifier::WidebandAmplifier;
pub use block::AnalogBlock;
pub use correlator::CorrelatorBlock;
pub use filter::LowPassFilter;
pub use multiplier::Multiplier;
pub use netlist::{BlockId, Netlist, NetlistError};
pub use noise_source::NoiseSourceBlock;
pub use nonideal::{NonIdealBlock, Nonideality, Quantizer};
pub use summer::Summer;
pub use thermal::{Oscillator, ThermalNoiseSource, BOLTZMANN_J_PER_K};
