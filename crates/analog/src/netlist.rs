//! Block-level netlists: composition of analog blocks into a datapath.

use crate::block::AnalogBlock;
use std::fmt;

/// Identifier of a block inside a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(usize);

impl BlockId {
    /// The block's index inside its netlist.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Errors raised when building or simulating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A referenced block does not exist.
    UnknownBlock(usize),
    /// A connection targeted an input port beyond the block's arity.
    PortOutOfRange {
        /// The target block index.
        block: usize,
        /// The requested port.
        port: usize,
        /// The block's number of input ports.
        arity: usize,
    },
    /// An input port received two driving connections.
    PortAlreadyDriven {
        /// The target block index.
        block: usize,
        /// The port that is already driven.
        port: usize,
    },
    /// Some input port was left unconnected when simulation started.
    UnconnectedPort {
        /// The block with a floating input.
        block: usize,
        /// The floating port.
        port: usize,
    },
    /// The connection graph contains a combinational cycle.
    CombinationalCycle,
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownBlock(b) => write!(f, "unknown block index {b}"),
            NetlistError::PortOutOfRange { block, port, arity } => write!(
                f,
                "port {port} out of range for block {block} with {arity} inputs"
            ),
            NetlistError::PortAlreadyDriven { block, port } => {
                write!(f, "input port {port} of block {block} is already driven")
            }
            NetlistError::UnconnectedPort { block, port } => {
                write!(f, "input port {port} of block {block} is unconnected")
            }
            NetlistError::CombinationalCycle => {
                write!(f, "netlist contains a combinational cycle")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// A directed acyclic netlist of analog blocks evaluated once per time step.
///
/// ```
/// use nbl_analog::{Netlist, NoiseSourceBlock, Multiplier, CorrelatorBlock};
/// use nbl_noise::CarrierKind;
///
/// let mut net = Netlist::new();
/// let a = net.add_block(Box::new(NoiseSourceBlock::new(CarrierKind::Uniform, 1)));
/// let b = net.add_block(Box::new(NoiseSourceBlock::new(CarrierKind::Uniform, 2)));
/// let mult = net.add_block(Box::new(Multiplier::new()));
/// let corr = net.add_block(Box::new(CorrelatorBlock::new()));
/// net.connect(a, mult, 0)?;
/// net.connect(b, mult, 1)?;
/// net.connect(mult, corr, 0)?;
/// for _ in 0..1000 { net.step()?; }
/// // Independent noise sources correlate to ~zero.
/// assert!(net.output(corr)?.abs() < 0.05);
/// # Ok::<(), nbl_analog::NetlistError>(())
/// ```
#[derive(Debug, Default)]
pub struct Netlist {
    blocks: Vec<Box<dyn AnalogBlock>>,
    /// For each block, the driver of each input port: `drivers[block][port]`.
    drivers: Vec<Vec<Option<BlockId>>>,
    /// Last output value of each block.
    outputs: Vec<f64>,
    /// Cached topological evaluation order (invalidated on edits).
    order: Option<Vec<usize>>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Adds a block and returns its identifier.
    pub fn add_block(&mut self, block: Box<dyn AnalogBlock>) -> BlockId {
        let id = BlockId(self.blocks.len());
        self.drivers.push(vec![None; block.num_inputs()]);
        self.outputs.push(0.0);
        self.blocks.push(block);
        self.order = None;
        id
    }

    /// Connects the output of `from` to input port `port` of `to`.
    ///
    /// # Errors
    ///
    /// Fails if either block is unknown, the port is out of range, or the
    /// port already has a driver.
    pub fn connect(&mut self, from: BlockId, to: BlockId, port: usize) -> Result<(), NetlistError> {
        if from.0 >= self.blocks.len() {
            return Err(NetlistError::UnknownBlock(from.0));
        }
        if to.0 >= self.blocks.len() {
            return Err(NetlistError::UnknownBlock(to.0));
        }
        let arity = self.blocks[to.0].num_inputs();
        if port >= arity {
            return Err(NetlistError::PortOutOfRange {
                block: to.0,
                port,
                arity,
            });
        }
        if self.drivers[to.0][port].is_some() {
            return Err(NetlistError::PortAlreadyDriven { block: to.0, port });
        }
        self.drivers[to.0][port] = Some(from);
        self.order = None;
        Ok(())
    }

    /// Number of blocks in the netlist.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Returns the most recent output value of a block.
    ///
    /// # Errors
    ///
    /// Fails if the block is unknown.
    pub fn output(&self, id: BlockId) -> Result<f64, NetlistError> {
        self.outputs
            .get(id.0)
            .copied()
            .ok_or(NetlistError::UnknownBlock(id.0))
    }

    fn compute_order(&self) -> Result<Vec<usize>, NetlistError> {
        // Check all ports are driven, then Kahn's algorithm.
        for (b, ports) in self.drivers.iter().enumerate() {
            for (p, d) in ports.iter().enumerate() {
                if d.is_none() {
                    return Err(NetlistError::UnconnectedPort { block: b, port: p });
                }
            }
        }
        let n = self.blocks.len();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (b, ports) in self.drivers.iter().enumerate() {
            for d in ports.iter().flatten() {
                indegree[b] += 1;
                dependents[d.0].push(b);
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(b) = queue.pop() {
            order.push(b);
            for &dep in &dependents[b] {
                indegree[dep] -= 1;
                if indegree[dep] == 0 {
                    queue.push(dep);
                }
            }
        }
        if order.len() != n {
            return Err(NetlistError::CombinationalCycle);
        }
        Ok(order)
    }

    /// Advances the whole netlist by one time step.
    ///
    /// # Errors
    ///
    /// Fails if an input port is unconnected or the graph has a cycle.
    pub fn step(&mut self) -> Result<(), NetlistError> {
        if self.order.is_none() {
            self.order = Some(self.compute_order()?);
        }
        let order = self.order.clone().expect("order computed above");
        let mut inputs = Vec::new();
        for b in order {
            inputs.clear();
            for d in &self.drivers[b] {
                inputs.push(self.outputs[d.expect("validated").0]);
            }
            self.outputs[b] = self.blocks[b].process(&inputs);
        }
        Ok(())
    }

    /// Runs `steps` time steps and returns the final output of `probe`.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`Netlist::step`] or [`Netlist::output`].
    pub fn run(&mut self, steps: u64, probe: BlockId) -> Result<f64, NetlistError> {
        for _ in 0..steps {
            self.step()?;
        }
        self.output(probe)
    }

    /// Resets every block and clears the recorded outputs.
    pub fn reset(&mut self) {
        for b in &mut self.blocks {
            b.reset();
        }
        for o in &mut self.outputs {
            *o = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlator::CorrelatorBlock;
    use crate::multiplier::Multiplier;
    use crate::noise_source::NoiseSourceBlock;
    use crate::summer::Summer;
    use nbl_noise::CarrierKind;

    fn noise(seed: u64) -> Box<dyn AnalogBlock> {
        Box::new(NoiseSourceBlock::new(CarrierKind::Uniform, seed))
    }

    #[test]
    fn self_correlation_is_positive_cross_is_zero() {
        // ⟨N1·N1⟩ ≈ 1/12, ⟨N1·N2⟩ ≈ 0: the fundamental NBL readout distinction.
        let mut net = Netlist::new();
        let n1 = net.add_block(noise(1));
        let n2 = net.add_block(noise(2));
        let self_mult = net.add_block(Box::new(Multiplier::new()));
        let cross_mult = net.add_block(Box::new(Multiplier::new()));
        let self_corr = net.add_block(Box::new(CorrelatorBlock::new()));
        let cross_corr = net.add_block(Box::new(CorrelatorBlock::new()));
        net.connect(n1, self_mult, 0).unwrap();
        net.connect(n1, self_mult, 1).unwrap();
        net.connect(n1, cross_mult, 0).unwrap();
        net.connect(n2, cross_mult, 1).unwrap();
        net.connect(self_mult, self_corr, 0).unwrap();
        net.connect(cross_mult, cross_corr, 0).unwrap();
        for _ in 0..30_000 {
            net.step().unwrap();
        }
        let self_mean = net.output(self_corr).unwrap();
        let cross_mean = net.output(cross_corr).unwrap();
        assert!((self_mean - 1.0 / 12.0).abs() < 0.01, "{self_mean}");
        assert!(cross_mean.abs() < 0.01, "{cross_mean}");
    }

    #[test]
    fn superposition_datapath() {
        // (N1 + N2) · N1 should correlate to ⟨N1²⟩ ≈ 1/12.
        let mut net = Netlist::new();
        let n1 = net.add_block(noise(10));
        let n2 = net.add_block(noise(20));
        let sum = net.add_block(Box::new(Summer::new(2)));
        let mult = net.add_block(Box::new(Multiplier::new()));
        let corr = net.add_block(Box::new(CorrelatorBlock::new()));
        net.connect(n1, sum, 0).unwrap();
        net.connect(n2, sum, 1).unwrap();
        net.connect(sum, mult, 0).unwrap();
        net.connect(n1, mult, 1).unwrap();
        net.connect(mult, corr, 0).unwrap();
        let mean = net.run(30_000, corr).unwrap();
        assert!((mean - 1.0 / 12.0).abs() < 0.01, "{mean}");
    }

    #[test]
    fn error_unknown_block_and_port() {
        let mut net = Netlist::new();
        let a = net.add_block(noise(1));
        let m = net.add_block(Box::new(Multiplier::new()));
        assert_eq!(
            net.connect(BlockId(99), m, 0),
            Err(NetlistError::UnknownBlock(99))
        );
        assert!(matches!(
            net.connect(a, m, 5),
            Err(NetlistError::PortOutOfRange { .. })
        ));
        net.connect(a, m, 0).unwrap();
        assert!(matches!(
            net.connect(a, m, 0),
            Err(NetlistError::PortAlreadyDriven { .. })
        ));
        assert!(matches!(
            net.output(BlockId(42)),
            Err(NetlistError::UnknownBlock(42))
        ));
    }

    #[test]
    fn unconnected_port_detected() {
        let mut net = Netlist::new();
        let _a = net.add_block(noise(1));
        let _m = net.add_block(Box::new(Multiplier::new()));
        assert!(matches!(
            net.step(),
            Err(NetlistError::UnconnectedPort { .. })
        ));
    }

    #[test]
    fn cycle_detected() {
        let mut net = Netlist::new();
        let m1 = net.add_block(Box::new(Multiplier::new()));
        let m2 = net.add_block(Box::new(Multiplier::new()));
        net.connect(m1, m2, 0).unwrap();
        net.connect(m1, m2, 1).unwrap();
        net.connect(m2, m1, 0).unwrap();
        net.connect(m2, m1, 1).unwrap();
        assert_eq!(net.step(), Err(NetlistError::CombinationalCycle));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut net = Netlist::new();
        let n1 = net.add_block(noise(5));
        let corr = net.add_block(Box::new(CorrelatorBlock::new()));
        net.connect(n1, corr, 0).unwrap();
        let first = net.run(100, corr).unwrap();
        net.reset();
        let second = net.run(100, corr).unwrap();
        assert_eq!(first, second);
        assert_eq!(net.num_blocks(), 2);
    }

    #[test]
    fn error_display() {
        let e = NetlistError::UnconnectedPort { block: 1, port: 0 };
        assert!(e.to_string().contains("unconnected"));
    }
}
