//! Physically parameterized noise and oscillator sources.
//!
//! §V of the paper proposes two concrete carrier generators: wideband
//! amplifiers boosting a resistor's thermal (Johnson–Nyquist) noise, and
//! on-chip sinusoidal oscillators (standing-wave resonant oscillators in the
//! cited work). These blocks model those generators with physical parameters
//! so that experiments can reason about realistic carrier amplitudes.

use crate::block::AnalogBlock;
use nbl_noise::{RandomSource, Xoshiro256StarStar};

/// Boltzmann constant in J/K.
pub const BOLTZMANN_J_PER_K: f64 = 1.380_649e-23;

/// A resistor's thermal noise followed by a wideband amplifier.
///
/// The RMS open-circuit noise voltage of a resistor over bandwidth `B` is
/// `sqrt(4 k_B T R B)`; the block emits zero-mean Gaussian samples with that
/// RMS, multiplied by the amplifier gain.
///
/// ```
/// use nbl_analog::{AnalogBlock, ThermalNoiseSource};
/// // 1 kΩ at 300 K over 1 GHz (≈ 0.13 mV RMS), amplified by 60 dB (×1000).
/// let mut src = ThermalNoiseSource::new(1e3, 300.0, 1e9, 1e3, 7);
/// let v = src.process(&[]);
/// assert!(v.abs() < 1.5);
/// assert!(src.rms_output_volts() > 0.05 && src.rms_output_volts() < 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct ThermalNoiseSource {
    rng: Xoshiro256StarStar,
    seed: u64,
    rms_output: f64,
    resistance_ohms: f64,
    temperature_kelvin: f64,
    bandwidth_hz: f64,
    gain: f64,
}

impl ThermalNoiseSource {
    /// Creates a thermal noise source.
    ///
    /// # Panics
    ///
    /// Panics if the resistance, temperature, bandwidth or gain is not
    /// strictly positive and finite.
    pub fn new(
        resistance_ohms: f64,
        temperature_kelvin: f64,
        bandwidth_hz: f64,
        gain: f64,
        seed: u64,
    ) -> Self {
        for (name, v) in [
            ("resistance", resistance_ohms),
            ("temperature", temperature_kelvin),
            ("bandwidth", bandwidth_hz),
            ("gain", gain),
        ] {
            assert!(
                v.is_finite() && v > 0.0,
                "{name} must be positive and finite"
            );
        }
        let rms_input =
            (4.0 * BOLTZMANN_J_PER_K * temperature_kelvin * resistance_ohms * bandwidth_hz).sqrt();
        ThermalNoiseSource {
            rng: Xoshiro256StarStar::new(seed),
            seed,
            rms_output: rms_input * gain,
            resistance_ohms,
            temperature_kelvin,
            bandwidth_hz,
            gain,
        }
    }

    /// RMS noise voltage at the resistor terminals (before amplification).
    pub fn rms_input_volts(&self) -> f64 {
        self.rms_output / self.gain
    }

    /// RMS output voltage after amplification.
    pub fn rms_output_volts(&self) -> f64 {
        self.rms_output
    }

    /// The modelled resistance in ohms.
    pub fn resistance_ohms(&self) -> f64 {
        self.resistance_ohms
    }

    /// The modelled temperature in kelvin.
    pub fn temperature_kelvin(&self) -> f64 {
        self.temperature_kelvin
    }

    /// The modelled noise bandwidth in hertz.
    pub fn bandwidth_hz(&self) -> f64 {
        self.bandwidth_hz
    }
}

impl AnalogBlock for ThermalNoiseSource {
    fn num_inputs(&self) -> usize {
        0
    }

    fn process(&mut self, inputs: &[f64]) -> f64 {
        assert!(inputs.is_empty(), "thermal noise source takes no inputs");
        self.rng.next_gaussian() * self.rms_output
    }

    fn reset(&mut self) {
        self.rng = Xoshiro256StarStar::new(self.seed);
    }

    fn name(&self) -> &'static str {
        "thermal_noise_source"
    }
}

/// An on-chip sinusoidal oscillator with a programmable frequency, amplitude
/// and phase (the carrier generator of the sinusoid-based-logic variant).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Oscillator {
    amplitude: f64,
    /// Frequency as a fraction of the simulation sample rate.
    normalized_frequency: f64,
    phase_radians: f64,
    step: u64,
}

impl Oscillator {
    /// Creates an oscillator.
    ///
    /// # Panics
    ///
    /// Panics if the amplitude is not positive or the normalized frequency is
    /// outside `(0, 0.5]` (Nyquist).
    pub fn new(amplitude: f64, normalized_frequency: f64, phase_radians: f64) -> Self {
        assert!(amplitude > 0.0, "amplitude must be positive");
        assert!(
            normalized_frequency > 0.0 && normalized_frequency <= 0.5,
            "normalized frequency must be in (0, 0.5]"
        );
        Oscillator {
            amplitude,
            normalized_frequency,
            phase_radians,
            step: 0,
        }
    }

    /// The oscillator frequency as a fraction of the sample rate.
    pub fn normalized_frequency(&self) -> f64 {
        self.normalized_frequency
    }
}

impl AnalogBlock for Oscillator {
    fn num_inputs(&self) -> usize {
        0
    }

    fn process(&mut self, inputs: &[f64]) -> f64 {
        assert!(inputs.is_empty(), "oscillator takes no inputs");
        let value = self.amplitude
            * (std::f64::consts::TAU * self.normalized_frequency * self.step as f64
                + self.phase_radians)
                .cos();
        self.step += 1;
        value
    }

    fn reset(&mut self) {
        self.step = 0;
    }

    fn name(&self) -> &'static str {
        "oscillator"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbl_noise::RunningStats;

    #[test]
    fn johnson_noise_rms_matches_formula() {
        // 1 kΩ at 300 K over 1 Hz: ~4.07 nV RMS.
        let src = ThermalNoiseSource::new(1e3, 300.0, 1.0, 1.0, 0);
        assert!((src.rms_input_volts() - 4.07e-9).abs() < 0.1e-9);
        assert_eq!(src.resistance_ohms(), 1e3);
        assert_eq!(src.temperature_kelvin(), 300.0);
        assert_eq!(src.bandwidth_hz(), 1.0);
    }

    #[test]
    fn empirical_rms_matches_declared_rms() {
        let mut src = ThermalNoiseSource::new(50.0, 300.0, 1e9, 1e4, 3);
        let mut stats = RunningStats::new();
        for _ in 0..50_000 {
            stats.push(src.process(&[]));
        }
        assert!(stats.mean().abs() < 0.02 * src.rms_output_volts());
        assert!((stats.std_dev() - src.rms_output_volts()).abs() < 0.05 * src.rms_output_volts());
        src.reset();
        let first = src.process(&[]);
        src.reset();
        assert_eq!(src.process(&[]), first);
    }

    #[test]
    fn hotter_or_larger_resistors_are_noisier() {
        let base = ThermalNoiseSource::new(1e3, 300.0, 1e6, 1.0, 0);
        let hot = ThermalNoiseSource::new(1e3, 600.0, 1e6, 1.0, 0);
        let big = ThermalNoiseSource::new(4e3, 300.0, 1e6, 1.0, 0);
        assert!(hot.rms_input_volts() > base.rms_input_volts());
        assert!((big.rms_input_volts() / base.rms_input_volts() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn oscillator_period_and_orthogonality() {
        let mut osc1 = Oscillator::new(1.0, 0.05, 0.0);
        let mut osc2 = Oscillator::new(1.0, 0.10, 0.3);
        let mut cross = RunningStats::new();
        let mut power = RunningStats::new();
        for _ in 0..10_000 {
            let a = osc1.process(&[]);
            let b = osc2.process(&[]);
            cross.push(a * b);
            power.push(a * a);
        }
        assert!(cross.mean().abs() < 1e-3);
        assert!((power.mean() - 0.5).abs() < 1e-3);
        assert_eq!(osc1.normalized_frequency(), 0.05);
        osc1.reset();
        assert_eq!(osc1.process(&[]), 1.0);
    }

    #[test]
    #[should_panic]
    fn nyquist_violation_rejected() {
        let _ = Oscillator::new(1.0, 0.75, 0.0);
    }

    #[test]
    #[should_panic]
    fn non_positive_resistance_rejected() {
        let _ = ThermalNoiseSource::new(0.0, 300.0, 1.0, 1.0, 0);
    }
}
