//! Analog adders (summing junctions).

use crate::block::AnalogBlock;

/// An ideal analog summing junction with a configurable number of inputs and
/// optional per-input gains.
///
/// The NBL construction uses adders to build the additive superpositions
/// `(N_xi + N_x̄i)` of Eq. (1) and the per-clause superpositions of Σ_N.
///
/// ```
/// use nbl_analog::{AnalogBlock, Summer};
/// let mut s = Summer::new(3);
/// assert_eq!(s.process(&[1.0, 2.0, 3.0]), 6.0);
/// let mut weighted = Summer::with_gains(vec![1.0, -1.0]);
/// assert_eq!(weighted.process(&[5.0, 2.0]), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summer {
    gains: Vec<f64>,
}

impl Summer {
    /// Creates an ideal summer with `num_inputs` unity-gain inputs.
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs == 0`.
    pub fn new(num_inputs: usize) -> Self {
        assert!(num_inputs > 0, "summer needs at least one input");
        Summer {
            gains: vec![1.0; num_inputs],
        }
    }

    /// Creates a summer with explicit per-input gains (e.g. `-1.0` to model a
    /// subtracting input).
    ///
    /// # Panics
    ///
    /// Panics if `gains` is empty.
    pub fn with_gains(gains: Vec<f64>) -> Self {
        assert!(!gains.is_empty(), "summer needs at least one input");
        Summer { gains }
    }

    /// The per-input gains.
    pub fn gains(&self) -> &[f64] {
        &self.gains
    }
}

impl AnalogBlock for Summer {
    fn num_inputs(&self) -> usize {
        self.gains.len()
    }

    fn process(&mut self, inputs: &[f64]) -> f64 {
        assert_eq!(inputs.len(), self.gains.len(), "input count mismatch");
        inputs.iter().zip(&self.gains).map(|(x, g)| x * g).sum()
    }

    fn reset(&mut self) {}

    fn name(&self) -> &'static str {
        "summer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unity_gain_sum() {
        let mut s = Summer::new(2);
        assert_eq!(s.process(&[0.25, -0.75]), -0.5);
        assert_eq!(s.num_inputs(), 2);
        assert_eq!(s.name(), "summer");
    }

    #[test]
    fn weighted_sum() {
        let mut s = Summer::with_gains(vec![2.0, 0.5, -1.0]);
        assert_eq!(s.process(&[1.0, 4.0, 3.0]), 1.0);
        assert_eq!(s.gains(), &[2.0, 0.5, -1.0]);
    }

    #[test]
    #[should_panic]
    fn zero_inputs_rejected() {
        let _ = Summer::new(0);
    }

    #[test]
    #[should_panic]
    fn wrong_arity_panics() {
        let mut s = Summer::new(2);
        let _ = s.process(&[1.0]);
    }
}
