//! Low-pass filters.

use crate::block::AnalogBlock;

/// A first-order (single-pole) low-pass filter, optionally cascaded to a
/// higher order.
///
/// In the NBL-SAT engine the low-pass filter extracts the DC component of the
/// product waveform S_N = τ_N · Σ_N: its steady-state output approaches the
/// running mean that Algorithm 1 thresholds. The paper also notes that a
/// sinusoid-based engine with tight carrier spacing needs high-order filters;
/// the `order` parameter models that cascade.
///
/// ```
/// use nbl_analog::{AnalogBlock, LowPassFilter};
/// let mut lp = LowPassFilter::new(0.1);
/// let mut y = 0.0;
/// for _ in 0..200 { y = lp.process(&[1.0]); }
/// assert!((y - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LowPassFilter {
    alpha: f64,
    states: Vec<f64>,
}

impl LowPassFilter {
    /// Creates a first-order filter with smoothing coefficient `alpha` in
    /// `(0, 1]` (larger = wider bandwidth).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        Self::with_order(alpha, 1)
    }

    /// Creates a cascade of `order` identical single-pole sections.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1]` or `order == 0`.
    pub fn with_order(alpha: f64, order: usize) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(order > 0, "filter order must be at least 1");
        LowPassFilter {
            alpha,
            states: vec![0.0; order],
        }
    }

    /// Creates a filter whose -3 dB cutoff sits at `cutoff_fraction` of the
    /// sampling rate (approximation `alpha = 2π f / (2π f + 1)`).
    ///
    /// # Panics
    ///
    /// Panics if `cutoff_fraction` is not in `(0, 0.5]`.
    pub fn from_cutoff(cutoff_fraction: f64, order: usize) -> Self {
        assert!(
            cutoff_fraction > 0.0 && cutoff_fraction <= 0.5,
            "cutoff must be in (0, 0.5] of the sample rate"
        );
        let omega = std::f64::consts::TAU * cutoff_fraction;
        Self::with_order(omega / (omega + 1.0), order)
    }

    /// The filter order (number of cascaded poles).
    pub fn order(&self) -> usize {
        self.states.len()
    }

    /// The per-section smoothing coefficient.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The current output without advancing time.
    pub fn output(&self) -> f64 {
        *self.states.last().expect("order >= 1")
    }
}

impl AnalogBlock for LowPassFilter {
    fn num_inputs(&self) -> usize {
        1
    }

    fn process(&mut self, inputs: &[f64]) -> f64 {
        assert_eq!(inputs.len(), 1, "filter takes exactly one input");
        let mut x = inputs[0];
        for state in &mut self.states {
            *state += self.alpha * (x - *state);
            x = *state;
        }
        x
    }

    fn reset(&mut self) {
        for s in &mut self.states {
            *s = 0.0;
        }
    }

    fn name(&self) -> &'static str {
        "low_pass_filter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_response_settles_to_input() {
        for order in [1, 2, 4] {
            let mut lp = LowPassFilter::with_order(0.2, order);
            let mut y = 0.0;
            for _ in 0..500 {
                y = lp.process(&[0.7]);
            }
            assert!((y - 0.7).abs() < 1e-6, "order {order}");
        }
    }

    #[test]
    fn higher_order_attenuates_ripple_more() {
        // Feed a zero-mean square wave; the higher-order filter should show a
        // smaller peak-to-peak output ripple once settled.
        let ripple = |order: usize| {
            let mut lp = LowPassFilter::with_order(0.1, order);
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for i in 0..2000 {
                let x = if (i / 5) % 2 == 0 { 1.0 } else { -1.0 };
                let y = lp.process(&[x]);
                if i > 1000 {
                    min = min.min(y);
                    max = max.max(y);
                }
            }
            max - min
        };
        assert!(ripple(3) < ripple(1));
    }

    #[test]
    fn dc_extraction_approximates_mean() {
        // A signal with DC offset 0.25 plus alternating ±1 ripple.
        let mut lp = LowPassFilter::with_order(0.05, 2);
        let mut y = 0.0;
        for i in 0..5000 {
            let x = 0.25 + if i % 2 == 0 { 1.0 } else { -1.0 };
            y = lp.process(&[x]);
        }
        assert!((y - 0.25).abs() < 0.05);
        assert!((lp.output() - y).abs() < 1e-15);
    }

    #[test]
    fn cutoff_constructor() {
        let lp = LowPassFilter::from_cutoff(0.05, 2);
        assert_eq!(lp.order(), 2);
        assert!(lp.alpha() > 0.0 && lp.alpha() < 1.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut lp = LowPassFilter::new(0.5);
        lp.process(&[10.0]);
        assert!(lp.output() > 0.0);
        lp.reset();
        assert_eq!(lp.output(), 0.0);
    }

    #[test]
    #[should_panic]
    fn invalid_alpha_rejected() {
        let _ = LowPassFilter::new(1.5);
    }

    #[test]
    #[should_panic]
    fn zero_order_rejected() {
        let _ = LowPassFilter::with_order(0.5, 0);
    }
}
