//! The `nbl-satd` wire protocol: a line-delimited text codec.
//!
//! Every frame is one line of UTF-8 text terminated by `\n` (a trailing `\r`
//! is tolerated), except `SOLVE`, whose header line announces how many raw
//! DIMACS body lines follow it. The same [`Frame`] enum models both
//! directions; servers and clients simply never emit the other side's verbs.
//!
//! # Grammar
//!
//! Client → server:
//!
//! ```text
//! SOLVE <backend> seed=<u64> priority=<low|normal|high> artifacts=<verdict|model>
//!       [wall-ms=<u64>] [samples=<u64>] [checks=<u64>] [stats=<true|false>]
//!       body-lines=<n>
//! <n raw DIMACS lines>
//! CANCEL <job-id>
//! STATUS <job-id>
//! REFILL [samples=<u64>] [checks=<u64>] [wall-ms=<u64>]     (at least one key)
//! PING
//! HELLO
//! SHUTDOWN
//! SESSION OPEN backend=<name>
//! SESSION ADDCLAUSES <session-id> body-lines=<n>
//! <n raw DIMACS lines>
//! SESSION ASSUME <session-id> [lits=<l1,l2,...>] [wall-ms=<u64>]
//!         [samples=<u64>] [checks=<u64>]
//! SESSION POP <session-id>
//! SESSION CLOSE <session-id>
//! METRICS
//! ```
//!
//! (The `SOLVE` header is a single line; it is wrapped above for readability.
//! `body-lines` is mandatory and must be the last key. The same rule applies
//! to `SESSION ADDCLAUSES`. `SESSION ASSUME` literals are DIMACS-signed,
//! comma-separated, never zero; an absent `lits` key means no assumptions.)
//!
//! Server → client:
//!
//! ```text
//! QUEUED <job-id>
//! v <job-id> [<lit> ...] 0
//! f <job-id> [<lit> ...] 0
//! STATS <job-id> decisions=<u64> conflicts=<u64> propagations=<u64>
//!       restarts=<u64> learned=<u64> tried=<u64> flips=<u64> checks=<u64>
//!       samples=<u64> wall-us=<u64> cache-hits=<u64> pre-vars-removed=<u64>
//!       clauses-exported=<u64> clauses-imported=<u64>
//! RESULT <job-id> s <SATISFIABLE|UNSATISFIABLE|UNKNOWN <cause>>
//! INFO <job-id> <queued|running|finished> [queue-depth=<u64>
//!      backlog-high=<u64> backlog-normal=<u64> backlog-low=<u64>]
//! SESSIONOK <session-id> depth=<u64>
//! CAPS sessions=<true|false>
//! OK refill
//! PONG
//! BYE
//! ERR <job-id|-> <message>
//! METRICS queue-depth=<u64> backlog-high=<u64> backlog-normal=<u64>
//!         backlog-low=<u64> cache-hits=<u64> cache-misses=<u64>
//!         cache-evictions=<u64> cache-entries=<u64> pre-vars-removed=<u64>
//!         pre-clauses-removed=<u64> pre-solved=<u64>
//!         budget-samples-spent=<u64> budget-checks-spent=<u64>
//!         clauses-exported=<u64> clauses-imported=<u64> body-lines=<n>
//! <n lines: backend <name> count=<u64> total-us=<u64> max-us=<u64>>
//! ```
//!
//! # Observability
//!
//! A bare `METRICS` line from the client asks the server for a point-in-time
//! snapshot of its solve pipeline; the server answers with the `METRICS`
//! response frame above (the verb is shared — direction disambiguates: the
//! request carries no keys, the response always does). The header gauges are
//! the live queue depth and per-priority backlog plus the verdict-cache and
//! preprocessing counters; each body line carries one backend's dispatch
//! count and latency aggregate. `INFO` answers append the same queue gauges
//! after the lifecycle token; the keys are optional on the wire, so `INFO`
//! frames from servers predating them still parse (the backlog reads absent).
//!
//! # Incremental sessions
//!
//! `SESSION OPEN` pins a persistent incremental solver to the connection and
//! answers `SESSIONOK` with the server-assigned session id. `ADDCLAUSES`
//! pushes a frame of clauses (acked by `SESSIONOK` carrying the new depth),
//! `POP` retracts the most recent frame, `CLOSE` releases the solver.
//! `ASSUME` queues one solve under the given assumption literals and is
//! answered like `SOLVE`: a `QUEUED` ack (session jobs draw ids from a
//! dedicated high range so they never collide with one-shot jobs), then the
//! completion group — the model `v`-line when satisfiable, the
//! failed-assumption-core `f`-line when unsatisfiable under assumptions
//! (empty core = the clause database itself is unsatisfiable), then
//! `RESULT`. `HELLO` lets a client probe whether the server speaks this
//! extension before relying on it (`CAPS sessions=true`).
//!
//! A job's model `v`-line (present only when the job requested
//! `artifacts=model` and was satisfiable) and its `STATS` line (present only
//! when the job asked `stats=true` — the frame is opt-in so pre-existing
//! clients never see an unexpected verb) are written *before* its `RESULT`
//! line, so the `RESULT` frame is always the completion marker of a job.
//! `STATS` keys may be any subset (absent counters read 0); the single-line
//! wrap above is for readability. Causes are `cancelled`, `incomplete`,
//! `budget-wall-clock`, `budget-samples` and `budget-checks`.
//!
//! # Strictness
//!
//! The parser is strict: unknown verbs, unknown or duplicate keys, missing
//! mandatory keys, trailing tokens, non-UTF-8 bytes, numbers that do not
//! parse, and oversized lines or bodies are all [`ProtocolError`]s — never
//! panics. Errors distinguish recoverable [`ProtocolError::Malformed`] frames
//! (the stream is still line-synchronised, the connection can continue) from
//! [`ProtocolError::Desync`] conditions (framing is lost, the connection
//! should close).

use nbl_sat_core::{
    Artifacts, Budget, ExhaustedResource, JobPriority, JobStatus, MetricsSnapshot, SolveStats,
    UnknownCause,
};
use std::fmt;
use std::io::{BufRead, Read, Write};
use std::time::Duration;

/// Longest accepted frame line, in bytes (excluding the newline).
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Largest accepted `body-lines` count of a `SOLVE` frame.
pub const MAX_BODY_LINES: usize = 1 << 20;

/// Errors produced while reading or parsing frames.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The frame violated the grammar, but the stream is still synchronised
    /// on line boundaries; the connection can answer `ERR` and continue.
    Malformed(String),
    /// Framing was lost (an oversized line or body declaration); the
    /// connection cannot be re-synchronised and should close.
    Desync(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "i/o error: {e}"),
            ProtocolError::Malformed(message) => write!(f, "malformed frame: {message}"),
            ProtocolError::Desync(message) => write!(f, "protocol desync: {message}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

impl ProtocolError {
    /// Returns `true` when the connection can keep reading frames after this
    /// error (the stream is still synchronised on line boundaries).
    pub fn is_recoverable(&self) -> bool {
        matches!(self, ProtocolError::Malformed(_))
    }
}

fn malformed(message: impl Into<String>) -> ProtocolError {
    ProtocolError::Malformed(message.into())
}

/// Scheduling priority on the wire. Mirrors [`JobPriority`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WirePriority {
    /// `priority=low`
    Low,
    /// `priority=normal`
    #[default]
    Normal,
    /// `priority=high`
    High,
}

impl WirePriority {
    fn token(self) -> &'static str {
        match self {
            WirePriority::Low => "low",
            WirePriority::Normal => "normal",
            WirePriority::High => "high",
        }
    }

    fn parse(token: &str) -> Result<Self, ProtocolError> {
        match token {
            "low" => Ok(WirePriority::Low),
            "normal" => Ok(WirePriority::Normal),
            "high" => Ok(WirePriority::High),
            other => Err(malformed(format!("unknown priority '{other}'"))),
        }
    }
}

impl From<WirePriority> for JobPriority {
    fn from(priority: WirePriority) -> Self {
        match priority {
            WirePriority::Low => JobPriority::Low,
            WirePriority::Normal => JobPriority::Normal,
            WirePriority::High => JobPriority::High,
        }
    }
}

impl From<JobPriority> for WirePriority {
    fn from(priority: JobPriority) -> Self {
        match priority {
            JobPriority::Low => WirePriority::Low,
            JobPriority::Normal => WirePriority::Normal,
            JobPriority::High => WirePriority::High,
        }
    }
}

/// Requested artifacts on the wire. Only the verdict and the model can be
/// streamed back, so `artifacts=cube` is not part of the grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WireArtifacts {
    /// `artifacts=verdict` — only the `RESULT` line.
    #[default]
    Verdict,
    /// `artifacts=model` — a `v`-line precedes the `RESULT` line when
    /// satisfiable.
    Model,
}

impl WireArtifacts {
    fn token(self) -> &'static str {
        match self {
            WireArtifacts::Verdict => "verdict",
            WireArtifacts::Model => "model",
        }
    }

    fn parse(token: &str) -> Result<Self, ProtocolError> {
        match token {
            "verdict" => Ok(WireArtifacts::Verdict),
            "model" => Ok(WireArtifacts::Model),
            other => Err(malformed(format!("unknown artifacts '{other}'"))),
        }
    }
}

impl From<WireArtifacts> for Artifacts {
    fn from(artifacts: WireArtifacts) -> Self {
        match artifacts {
            WireArtifacts::Verdict => Artifacts::Verdict,
            WireArtifacts::Model => Artifacts::Model,
        }
    }
}

/// A job's lifecycle stage as reported by `INFO`. Mirrors [`JobStatus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireJobStatus {
    /// Waiting in the service queue.
    Queued,
    /// Claimed by a worker.
    Running,
    /// The `RESULT` frame is available (or already delivered).
    Finished,
}

impl WireJobStatus {
    fn token(self) -> &'static str {
        match self {
            WireJobStatus::Queued => "queued",
            WireJobStatus::Running => "running",
            WireJobStatus::Finished => "finished",
        }
    }

    fn parse(token: &str) -> Result<Self, ProtocolError> {
        match token {
            "queued" => Ok(WireJobStatus::Queued),
            "running" => Ok(WireJobStatus::Running),
            "finished" => Ok(WireJobStatus::Finished),
            other => Err(malformed(format!("unknown job status '{other}'"))),
        }
    }
}

impl From<JobStatus> for WireJobStatus {
    fn from(status: JobStatus) -> Self {
        match status {
            JobStatus::Queued => WireJobStatus::Queued,
            JobStatus::Running => WireJobStatus::Running,
            JobStatus::Finished => WireJobStatus::Finished,
        }
    }
}

/// Why a `RESULT` was `UNKNOWN`. Mirrors [`UnknownCause`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireCause {
    /// The job was cancelled (per-job `CANCEL`, server abort).
    Cancelled,
    /// An incomplete backend gave up within its own limits.
    Incomplete,
    /// The wall-clock allowance ran out.
    BudgetWallClock,
    /// The noise-sample allowance ran out.
    BudgetSamples,
    /// The coprocessor-check allowance ran out.
    BudgetChecks,
}

impl WireCause {
    fn token(self) -> &'static str {
        match self {
            WireCause::Cancelled => "cancelled",
            WireCause::Incomplete => "incomplete",
            WireCause::BudgetWallClock => "budget-wall-clock",
            WireCause::BudgetSamples => "budget-samples",
            WireCause::BudgetChecks => "budget-checks",
        }
    }

    fn parse(token: &str) -> Result<Self, ProtocolError> {
        match token {
            "cancelled" => Ok(WireCause::Cancelled),
            "incomplete" => Ok(WireCause::Incomplete),
            "budget-wall-clock" => Ok(WireCause::BudgetWallClock),
            "budget-samples" => Ok(WireCause::BudgetSamples),
            "budget-checks" => Ok(WireCause::BudgetChecks),
            other => Err(malformed(format!("unknown cause '{other}'"))),
        }
    }
}

impl From<UnknownCause> for WireCause {
    fn from(cause: UnknownCause) -> Self {
        match cause {
            UnknownCause::Cancelled => WireCause::Cancelled,
            UnknownCause::Incomplete => WireCause::Incomplete,
            UnknownCause::BudgetExhausted(ExhaustedResource::WallClock) => {
                WireCause::BudgetWallClock
            }
            UnknownCause::BudgetExhausted(ExhaustedResource::Samples) => WireCause::BudgetSamples,
            UnknownCause::BudgetExhausted(ExhaustedResource::CoprocessorChecks) => {
                WireCause::BudgetChecks
            }
        }
    }
}

/// The three-valued verdict of a `RESULT` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireVerdict {
    /// `s SATISFIABLE`
    Satisfiable,
    /// `s UNSATISFIABLE`
    Unsatisfiable,
    /// `s UNKNOWN <cause>`
    Unknown(WireCause),
}

impl WireVerdict {
    /// Returns `true` for `s SATISFIABLE`.
    pub fn is_sat(self) -> bool {
        self == WireVerdict::Satisfiable
    }

    /// Returns `true` for `s UNSATISFIABLE`.
    pub fn is_unsat(self) -> bool {
        self == WireVerdict::Unsatisfiable
    }

    /// The conventional SAT-competition exit code of this verdict: 10 for
    /// SATISFIABLE, 20 for UNSATISFIABLE, 0 for UNKNOWN.
    pub fn exit_code(self) -> i32 {
        match self {
            WireVerdict::Satisfiable => 10,
            WireVerdict::Unsatisfiable => 20,
            WireVerdict::Unknown(_) => 0,
        }
    }
}

impl fmt::Display for WireVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireVerdict::Satisfiable => write!(f, "s SATISFIABLE"),
            WireVerdict::Unsatisfiable => write!(f, "s UNSATISFIABLE"),
            WireVerdict::Unknown(cause) => write!(f, "s UNKNOWN {}", cause.token()),
        }
    }
}

/// Search-statistics counters carried by a `STATS` frame. Mirrors the wire
/// subset of [`SolveStats`] (the non-numeric fields — winner attribution, the
/// sampled engine's estimate — stay server-side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct WireStats {
    /// `decisions=` — branching decisions.
    pub decisions: u64,
    /// `conflicts=` — conflicts hit.
    pub conflicts: u64,
    /// `propagations=` — unit propagations.
    pub propagations: u64,
    /// `restarts=` — restarts taken.
    pub restarts: u64,
    /// `learned=` — clauses learned.
    pub learned: u64,
    /// `tried=` — complete assignments tried.
    pub tried: u64,
    /// `flips=` — local-search flips.
    pub flips: u64,
    /// `checks=` — NBL coprocessor checks.
    pub checks: u64,
    /// `samples=` — noise samples drawn.
    pub samples: u64,
    /// `wall-us=` — wall-clock microseconds spent solving.
    pub wall_us: u64,
    /// `cache-hits=` — verdict-cache hits that answered this job.
    pub cache_hits: u64,
    /// `pre-vars-removed=` — variables the preprocessor eliminated before
    /// dispatch.
    pub pre_vars_removed: u64,
    /// `clauses-exported=` — clauses published into the cooperative
    /// portfolio's shared pool.
    pub clauses_exported: u64,
    /// `clauses-imported=` — clauses consumed from the cooperative
    /// portfolio's shared pool.
    pub clauses_imported: u64,
}

impl WireStats {
    /// Converts back into a [`SolveStats`] (non-wire fields default).
    pub fn to_solve_stats(self) -> SolveStats {
        SolveStats {
            decisions: self.decisions,
            conflicts: self.conflicts,
            propagations: self.propagations,
            restarts: self.restarts,
            learned_clauses: self.learned,
            assignments_tried: self.tried,
            flips: self.flips,
            coprocessor_checks: self.checks,
            samples: self.samples,
            wall_time: Duration::from_micros(self.wall_us),
            cache_hits: self.cache_hits,
            preprocessed_vars_removed: self.pre_vars_removed,
            clauses_exported: self.clauses_exported,
            clauses_imported: self.clauses_imported,
            ..SolveStats::default()
        }
    }
}

impl From<&SolveStats> for WireStats {
    fn from(stats: &SolveStats) -> Self {
        WireStats {
            decisions: stats.decisions,
            conflicts: stats.conflicts,
            propagations: stats.propagations,
            restarts: stats.restarts,
            learned: stats.learned_clauses,
            tried: stats.assignments_tried,
            flips: stats.flips,
            checks: stats.coprocessor_checks,
            samples: stats.samples,
            wall_us: u64::try_from(stats.wall_time.as_micros()).unwrap_or(u64::MAX),
            cache_hits: stats.cache_hits,
            pre_vars_removed: stats.preprocessed_vars_removed,
            clauses_exported: stats.clauses_exported,
            clauses_imported: stats.clauses_imported,
        }
    }
}

/// One queried job's live queue gauges, appended to `INFO` answers. The keys
/// are optional on the wire (frames from servers predating them parse to
/// `None`); current servers always send all four.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct WireBacklog {
    /// `queue-depth=` — jobs queued and not yet picked up, all priorities.
    pub queue_depth: u64,
    /// `backlog-high=` — queued high-priority jobs.
    pub high: u64,
    /// `backlog-normal=` — queued normal-priority jobs.
    pub normal: u64,
    /// `backlog-low=` — queued low-priority jobs.
    pub low: u64,
}

/// One backend's dispatch-latency aggregate, carried as a `METRICS` body
/// line: `backend <name> count=<u64> total-us=<u64> max-us=<u64>`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct WireBackendLatency {
    /// The backend's registry name.
    pub name: String,
    /// Jobs dispatched to this backend.
    pub count: u64,
    /// Total wall-clock microseconds spent in this backend.
    pub total_us: u64,
    /// Slowest single dispatch, in microseconds.
    pub max_us: u64,
}

impl WireBackendLatency {
    /// Mean dispatch latency in microseconds (0 when nothing ran).
    pub fn mean_us(&self) -> u64 {
        self.total_us.checked_div(self.count).unwrap_or(0)
    }
}

/// The server's point-in-time pipeline snapshot answering a `METRICS`
/// request: queue gauges, verdict-cache and preprocessing counters, budget
/// spend, and one [`WireBackendLatency`] body line per backend that has
/// dispatched at least one job. Mirrors the wire subset of
/// [`MetricsSnapshot`] (latency histograms stay server-side; the body lines
/// carry the count/total/max aggregate).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireMetrics {
    /// `queue-depth=` — jobs queued and not yet picked up.
    pub queue_depth: u64,
    /// `backlog-high=` — queued high-priority jobs.
    pub backlog_high: u64,
    /// `backlog-normal=` — queued normal-priority jobs.
    pub backlog_normal: u64,
    /// `backlog-low=` — queued low-priority jobs.
    pub backlog_low: u64,
    /// `cache-hits=` — verdict-cache hits.
    pub cache_hits: u64,
    /// `cache-misses=` — verdict-cache misses.
    pub cache_misses: u64,
    /// `cache-evictions=` — entries evicted to stay under capacity.
    pub cache_evictions: u64,
    /// `cache-entries=` — entries currently resident.
    pub cache_entries: u64,
    /// `pre-vars-removed=` — variables eliminated by preprocessing.
    pub pre_vars_removed: u64,
    /// `pre-clauses-removed=` — clauses eliminated by preprocessing.
    pub pre_clauses_removed: u64,
    /// `pre-solved=` — submissions preprocessing answered outright.
    pub pre_solved: u64,
    /// `budget-samples-spent=` — noise samples charged across all dispatches.
    pub budget_samples_spent: u64,
    /// `budget-checks-spent=` — coprocessor checks charged across all
    /// dispatches.
    pub budget_checks_spent: u64,
    /// `clauses-exported=` — clauses published into cooperative-portfolio
    /// pools across all dispatches.
    pub clauses_exported: u64,
    /// `clauses-imported=` — clauses consumed from cooperative-portfolio
    /// pools across all dispatches.
    pub clauses_imported: u64,
    /// Per-backend dispatch-latency aggregates (the body lines).
    pub backends: Vec<WireBackendLatency>,
}

impl From<&MetricsSnapshot> for WireMetrics {
    fn from(snapshot: &MetricsSnapshot) -> Self {
        WireMetrics {
            queue_depth: snapshot.queue_depth,
            backlog_high: snapshot.backlog_high,
            backlog_normal: snapshot.backlog_normal,
            backlog_low: snapshot.backlog_low,
            cache_hits: snapshot.cache_hits,
            cache_misses: snapshot.cache_misses,
            cache_evictions: snapshot.cache_evictions,
            cache_entries: snapshot.cache_entries,
            pre_vars_removed: snapshot.pre_vars_removed,
            pre_clauses_removed: snapshot.pre_clauses_removed,
            pre_solved: snapshot.pre_solved,
            budget_samples_spent: snapshot.budget_samples_spent,
            budget_checks_spent: snapshot.budget_checks_spent,
            clauses_exported: snapshot.clauses_exported,
            clauses_imported: snapshot.clauses_imported,
            backends: snapshot
                .backends
                .iter()
                .map(|(name, latency)| WireBackendLatency {
                    name: name.clone(),
                    count: latency.count,
                    total_us: latency.total_us,
                    max_us: latency.max_us,
                })
                .collect(),
        }
    }
}

/// The payload of a `SOLVE` frame: everything a [`nbl_sat_core::SolveRequest`]
/// needs, plus the inline DIMACS body.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SolveFrame {
    /// Registry name of the backend to run (`cdcl`, `nbl-sampled`, ...).
    pub backend: String,
    /// Deterministic seed handed to stochastic backends.
    pub seed: u64,
    /// Scheduling priority.
    pub priority: WirePriority,
    /// Requested artifacts.
    pub artifacts: WireArtifacts,
    /// Wall-clock budget cap in milliseconds, if any.
    pub wall_ms: Option<u64>,
    /// Noise-sample budget cap, if any.
    pub max_samples: Option<u64>,
    /// Coprocessor-check budget cap, if any.
    pub max_checks: Option<u64>,
    /// `stats=true` — ask the server to stream a `STATS` frame before this
    /// job's `RESULT`. Off by default (the frame is opt-in on the wire).
    pub stats: bool,
    /// The DIMACS body, one entry per raw line (no newlines inside).
    pub body: Vec<String>,
}

impl SolveFrame {
    /// A model-requesting frame for `backend` over the given DIMACS text.
    pub fn new(backend: impl Into<String>, dimacs: &str) -> Self {
        SolveFrame {
            backend: backend.into(),
            artifacts: WireArtifacts::Model,
            body: dimacs.lines().map(str::to_owned).collect(),
            ..SolveFrame::default()
        }
    }

    /// The DIMACS body as one string, lines joined with `\n`.
    pub fn dimacs(&self) -> String {
        self.body.join("\n")
    }

    /// The [`Budget`] the frame's caps describe.
    pub fn budget(&self) -> Budget {
        let mut budget = Budget::unlimited();
        if let Some(ms) = self.wall_ms {
            budget = budget.with_wall_time(Duration::from_millis(ms));
        }
        if let Some(samples) = self.max_samples {
            budget = budget.with_max_samples(samples);
        }
        if let Some(checks) = self.max_checks {
            budget = budget.with_max_checks(checks);
        }
        budget
    }
}

/// One protocol frame, either direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client: submit a job.
    Solve(SolveFrame),
    /// Client: cancel a job by id.
    Cancel {
        /// The job to cancel.
        job: u64,
    },
    /// Client: ask where a job is in its lifecycle.
    Status {
        /// The job to report on.
        job: u64,
    },
    /// Client: return spent allowance to the server's shared budget pool.
    Refill {
        /// Samples to return, if any.
        samples: Option<u64>,
        /// Checks to return, if any.
        checks: Option<u64>,
        /// Milliseconds to push the pool deadline out by, if any.
        wall_ms: Option<u64>,
    },
    /// Client: liveness probe.
    Ping,
    /// Client: capability probe, answered by `CAPS`.
    Hello,
    /// Client: wind the server down gracefully (drain, then exit).
    Shutdown,
    /// Client: open an incremental solving session.
    SessionOpen {
        /// Registry name of the incremental backend to pin.
        backend: String,
    },
    /// Client: push a frame of clauses into a session; the header line
    /// announces how many raw DIMACS body lines follow, like `SOLVE`.
    SessionAddClauses {
        /// The session to push into.
        session: u64,
        /// The DIMACS body, one entry per raw line.
        body: Vec<String>,
    },
    /// Client: solve a session under assumption literals. Queued like
    /// `SOLVE`; the completion frames reference the `QUEUED` job id.
    SessionAssume {
        /// The session to solve.
        session: u64,
        /// DIMACS-signed assumption literals, in decision order (never 0).
        literals: Vec<i64>,
        /// Wall-clock budget cap in milliseconds for this call, if any.
        wall_ms: Option<u64>,
        /// Noise-sample budget cap for this call, if any.
        max_samples: Option<u64>,
        /// Coprocessor-check budget cap for this call, if any.
        max_checks: Option<u64>,
    },
    /// Client: pop the most recent clause frame of a session.
    SessionPop {
        /// The session to pop.
        session: u64,
    },
    /// Client: close a session, releasing its pinned solver.
    SessionClose {
        /// The session to close.
        session: u64,
    },
    /// Client: ask for the server's pipeline metrics snapshot, answered by
    /// the `Metrics` response frame. A bare `METRICS` line on the wire.
    MetricsRequest,
    /// Server: the job was accepted under this id.
    Queued {
        /// The service-assigned job id.
        job: u64,
    },
    /// Server: a job's satisfying assignment (precedes its `RESULT`).
    Model {
        /// The job the model belongs to.
        job: u64,
        /// DIMACS-signed literals, without the terminating `0`.
        literals: Vec<i64>,
    },
    /// Server: a job's search statistics (precedes its `RESULT`; sent only
    /// when the `SOLVE` asked `stats=true`).
    Stats {
        /// The job the statistics belong to.
        job: u64,
        /// The counters.
        stats: WireStats,
    },
    /// Server: a job's final verdict — the completion marker.
    Result {
        /// The finished job.
        job: u64,
        /// Its verdict.
        verdict: WireVerdict,
    },
    /// Server: an UNSAT-under-assumptions job's failed-assumption core
    /// (precedes its `RESULT`). An empty core means the session's clause
    /// database is unsatisfiable on its own.
    FailedAssumptions {
        /// The job the core belongs to.
        job: u64,
        /// DIMACS-signed assumption literals, without the terminating `0`.
        literals: Vec<i64>,
    },
    /// Server: answer to `STATUS`.
    Info {
        /// The queried job.
        job: u64,
        /// Its lifecycle stage.
        status: WireJobStatus,
        /// The service's live queue gauges at answer time. Optional on the
        /// wire for compatibility with older servers; always sent by this
        /// one.
        backlog: Option<WireBacklog>,
    },
    /// Server: pipeline metrics snapshot answering `METRICS`. The header
    /// line carries the gauges and counters; `body-lines=<n>` announces the
    /// per-backend latency lines that follow.
    Metrics(WireMetrics),
    /// Server: a session operation was applied; reports the session's
    /// current push depth.
    SessionOk {
        /// The session the acknowledged operation targeted.
        session: u64,
        /// The session's push depth after the operation.
        depth: u64,
    },
    /// Server: capability summary answering `HELLO`.
    Caps {
        /// Whether the server speaks the `SESSION` extension.
        sessions: bool,
    },
    /// Server: `REFILL` was applied.
    OkRefill,
    /// Server: answer to `PING`.
    Pong,
    /// Server: acknowledges `SHUTDOWN`; no further frames follow.
    Bye,
    /// Server: the request failed; the connection stays open.
    Error {
        /// The job the error belongs to, when it is job-scoped.
        job: Option<u64>,
        /// Human-readable description (single line).
        message: String,
    },
}

impl Frame {
    /// Serialises the frame to its exact wire text, including newlines.
    pub fn encode(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        match self {
            Frame::Solve(solve) => {
                let _ = write!(
                    out,
                    "SOLVE {} seed={} priority={} artifacts={}",
                    solve.backend,
                    solve.seed,
                    solve.priority.token(),
                    solve.artifacts.token()
                );
                if let Some(ms) = solve.wall_ms {
                    let _ = write!(out, " wall-ms={ms}");
                }
                if let Some(samples) = solve.max_samples {
                    let _ = write!(out, " samples={samples}");
                }
                if let Some(checks) = solve.max_checks {
                    let _ = write!(out, " checks={checks}");
                }
                if solve.stats {
                    out.push_str(" stats=true");
                }
                let _ = writeln!(out, " body-lines={}", solve.body.len());
                for line in &solve.body {
                    let _ = writeln!(out, "{line}");
                }
            }
            Frame::Cancel { job } => {
                let _ = writeln!(out, "CANCEL {job}");
            }
            Frame::Status { job } => {
                let _ = writeln!(out, "STATUS {job}");
            }
            Frame::Refill {
                samples,
                checks,
                wall_ms,
            } => {
                let _ = write!(out, "REFILL");
                if let Some(samples) = samples {
                    let _ = write!(out, " samples={samples}");
                }
                if let Some(checks) = checks {
                    let _ = write!(out, " checks={checks}");
                }
                if let Some(ms) = wall_ms {
                    let _ = write!(out, " wall-ms={ms}");
                }
                out.push('\n');
            }
            Frame::Ping => out.push_str("PING\n"),
            Frame::Hello => out.push_str("HELLO\n"),
            Frame::Shutdown => out.push_str("SHUTDOWN\n"),
            Frame::SessionOpen { backend } => {
                let _ = writeln!(out, "SESSION OPEN backend={backend}");
            }
            Frame::SessionAddClauses { session, body } => {
                let _ = writeln!(
                    out,
                    "SESSION ADDCLAUSES {session} body-lines={}",
                    body.len()
                );
                for line in body {
                    let _ = writeln!(out, "{line}");
                }
            }
            Frame::SessionAssume {
                session,
                literals,
                wall_ms,
                max_samples,
                max_checks,
            } => {
                let _ = write!(out, "SESSION ASSUME {session}");
                if !literals.is_empty() {
                    let _ = write!(out, " lits=");
                    for (index, lit) in literals.iter().enumerate() {
                        if index > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{lit}");
                    }
                }
                if let Some(ms) = wall_ms {
                    let _ = write!(out, " wall-ms={ms}");
                }
                if let Some(samples) = max_samples {
                    let _ = write!(out, " samples={samples}");
                }
                if let Some(checks) = max_checks {
                    let _ = write!(out, " checks={checks}");
                }
                out.push('\n');
            }
            Frame::SessionPop { session } => {
                let _ = writeln!(out, "SESSION POP {session}");
            }
            Frame::SessionClose { session } => {
                let _ = writeln!(out, "SESSION CLOSE {session}");
            }
            Frame::MetricsRequest => out.push_str("METRICS\n"),
            Frame::Metrics(metrics) => {
                let _ = writeln!(
                    out,
                    "METRICS queue-depth={} backlog-high={} backlog-normal={} backlog-low={} \
                     cache-hits={} cache-misses={} cache-evictions={} cache-entries={} \
                     pre-vars-removed={} pre-clauses-removed={} pre-solved={} \
                     budget-samples-spent={} budget-checks-spent={} \
                     clauses-exported={} clauses-imported={} body-lines={}",
                    metrics.queue_depth,
                    metrics.backlog_high,
                    metrics.backlog_normal,
                    metrics.backlog_low,
                    metrics.cache_hits,
                    metrics.cache_misses,
                    metrics.cache_evictions,
                    metrics.cache_entries,
                    metrics.pre_vars_removed,
                    metrics.pre_clauses_removed,
                    metrics.pre_solved,
                    metrics.budget_samples_spent,
                    metrics.budget_checks_spent,
                    metrics.clauses_exported,
                    metrics.clauses_imported,
                    metrics.backends.len()
                );
                for backend in &metrics.backends {
                    let _ = writeln!(
                        out,
                        "backend {} count={} total-us={} max-us={}",
                        backend.name, backend.count, backend.total_us, backend.max_us
                    );
                }
            }
            Frame::Queued { job } => {
                let _ = writeln!(out, "QUEUED {job}");
            }
            Frame::Model { job, literals } => {
                let _ = write!(out, "v {job}");
                for lit in literals {
                    let _ = write!(out, " {lit}");
                }
                out.push_str(" 0\n");
            }
            Frame::Stats { job, stats } => {
                let _ = writeln!(
                    out,
                    "STATS {job} decisions={} conflicts={} propagations={} restarts={} \
                     learned={} tried={} flips={} checks={} samples={} wall-us={} \
                     cache-hits={} pre-vars-removed={} clauses-exported={} \
                     clauses-imported={}",
                    stats.decisions,
                    stats.conflicts,
                    stats.propagations,
                    stats.restarts,
                    stats.learned,
                    stats.tried,
                    stats.flips,
                    stats.checks,
                    stats.samples,
                    stats.wall_us,
                    stats.cache_hits,
                    stats.pre_vars_removed,
                    stats.clauses_exported,
                    stats.clauses_imported
                );
            }
            Frame::Result { job, verdict } => {
                let _ = writeln!(out, "RESULT {job} {verdict}");
            }
            Frame::FailedAssumptions { job, literals } => {
                let _ = write!(out, "f {job}");
                for lit in literals {
                    let _ = write!(out, " {lit}");
                }
                out.push_str(" 0\n");
            }
            Frame::Info {
                job,
                status,
                backlog,
            } => {
                let _ = write!(out, "INFO {job} {}", status.token());
                if let Some(backlog) = backlog {
                    let _ = write!(
                        out,
                        " queue-depth={} backlog-high={} backlog-normal={} backlog-low={}",
                        backlog.queue_depth, backlog.high, backlog.normal, backlog.low
                    );
                }
                out.push('\n');
            }
            Frame::SessionOk { session, depth } => {
                let _ = writeln!(out, "SESSIONOK {session} depth={depth}");
            }
            Frame::Caps { sessions } => {
                let _ = writeln!(out, "CAPS sessions={sessions}");
            }
            Frame::OkRefill => out.push_str("OK refill\n"),
            Frame::Pong => out.push_str("PONG\n"),
            Frame::Bye => out.push_str("BYE\n"),
            Frame::Error { job, message } => {
                match job {
                    Some(job) => {
                        let _ = write!(out, "ERR {job} ");
                    }
                    None => out.push_str("ERR - "),
                }
                let _ = writeln!(out, "{message}");
            }
        }
        out
    }

    /// Writes the frame to `writer` (one `write_all`, so concurrent writers
    /// holding a lock around this call interleave whole frames, never bytes).
    pub fn write_to<W: Write>(&self, writer: &mut W) -> std::io::Result<()> {
        writer.write_all(self.encode().as_bytes())?;
        writer.flush()
    }

    /// Reads the next frame off `reader`. Answers `Ok(None)` on a clean EOF
    /// at a frame boundary.
    pub fn read_from<R: BufRead>(reader: &mut R) -> Result<Option<Frame>, ProtocolError> {
        let line = match read_limited_line(reader)? {
            Some(line) => line,
            None => return Ok(None),
        };
        let text = decode_utf8(line)?;
        parse_header(&text, reader)
    }
}

/// Reads one `\n`-terminated line of at most [`MAX_LINE_BYTES`] bytes (the
/// newline is stripped, a trailing `\r` too). `Ok(None)` on EOF before any
/// byte.
fn read_limited_line<R: BufRead>(reader: &mut R) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut line = Vec::new();
    let mut limited = reader.take(MAX_LINE_BYTES as u64 + 1);
    let n = limited.read_until(b'\n', &mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if line.last() == Some(&b'\n') {
        line.pop();
        if line.last() == Some(&b'\r') {
            line.pop();
        }
    } else if line.len() > MAX_LINE_BYTES {
        return Err(ProtocolError::Desync(format!(
            "line exceeds {MAX_LINE_BYTES} bytes"
        )));
    }
    // A final line without a newline (EOF mid-frame) is still parsed; the
    // next read answers EOF.
    Ok(Some(line))
}

fn decode_utf8(line: Vec<u8>) -> Result<String, ProtocolError> {
    String::from_utf8(line).map_err(|_| malformed("frame is not valid UTF-8"))
}

fn parse_u64(token: &str, what: &str) -> Result<u64, ProtocolError> {
    // Reject signs and leading plus explicitly: only ASCII digits.
    if token.is_empty() || !token.bytes().all(|b| b.is_ascii_digit()) {
        return Err(malformed(format!("invalid {what} '{token}'")));
    }
    token
        .parse()
        .map_err(|_| malformed(format!("{what} '{token}' out of range")))
}

fn parse_i64(token: &str) -> Result<i64, ProtocolError> {
    let digits = token.strip_prefix('-').unwrap_or(token);
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return Err(malformed(format!("invalid literal '{token}'")));
    }
    token
        .parse()
        .map_err(|_| malformed(format!("literal '{token}' out of range")))
}

fn expect_end<'a, I: Iterator<Item = &'a str>>(
    mut tokens: I,
    verb: &str,
) -> Result<(), ProtocolError> {
    match tokens.next() {
        None => Ok(()),
        Some(extra) => Err(malformed(format!(
            "unexpected trailing token '{extra}' after {verb}"
        ))),
    }
}

fn valid_backend_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

/// Splits `key=value`, erroring when there is no `=`.
fn split_key_value(token: &str) -> Result<(&str, &str), ProtocolError> {
    token
        .split_once('=')
        .ok_or_else(|| malformed(format!("expected key=value, got '{token}'")))
}

/// Stores `value` into `slot`, erroring on a duplicate key.
fn store_once(slot: &mut Option<u64>, key: &str, value: u64) -> Result<(), ProtocolError> {
    if slot.replace(value).is_some() {
        return Err(malformed(format!("duplicate key '{key}'")));
    }
    Ok(())
}

fn parse_header<R: BufRead>(line: &str, reader: &mut R) -> Result<Option<Frame>, ProtocolError> {
    let mut tokens = line.split_ascii_whitespace();
    let verb = tokens.next().ok_or_else(|| malformed("empty frame line"))?;
    let frame = match verb {
        "SOLVE" => return parse_solve(tokens, reader).map(Some),
        "CANCEL" => {
            let job = parse_u64(
                tokens
                    .next()
                    .ok_or_else(|| malformed("CANCEL needs a job id"))?,
                "job id",
            )?;
            expect_end(tokens, "CANCEL")?;
            Frame::Cancel { job }
        }
        "STATUS" => {
            let job = parse_u64(
                tokens
                    .next()
                    .ok_or_else(|| malformed("STATUS needs a job id"))?,
                "job id",
            )?;
            expect_end(tokens, "STATUS")?;
            Frame::Status { job }
        }
        "REFILL" => {
            let mut samples = None;
            let mut checks = None;
            let mut wall_ms = None;
            for token in tokens {
                let (key, value) = split_key_value(token)?;
                let value = parse_u64(value, key)?;
                match key {
                    "samples" => store_once(&mut samples, key, value)?,
                    "checks" => store_once(&mut checks, key, value)?,
                    "wall-ms" => store_once(&mut wall_ms, key, value)?,
                    other => return Err(malformed(format!("unknown REFILL key '{other}'"))),
                }
            }
            if samples.is_none() && checks.is_none() && wall_ms.is_none() {
                return Err(malformed(
                    "REFILL needs at least one of samples/checks/wall-ms",
                ));
            }
            Frame::Refill {
                samples,
                checks,
                wall_ms,
            }
        }
        "PING" => {
            expect_end(tokens, "PING")?;
            Frame::Ping
        }
        "HELLO" => {
            expect_end(tokens, "HELLO")?;
            Frame::Hello
        }
        "SHUTDOWN" => {
            expect_end(tokens, "SHUTDOWN")?;
            Frame::Shutdown
        }
        "SESSION" => return parse_session(tokens, reader).map(Some),
        "METRICS" => return parse_metrics(tokens, reader).map(Some),
        "QUEUED" => {
            let job = parse_u64(
                tokens
                    .next()
                    .ok_or_else(|| malformed("QUEUED needs a job id"))?,
                "job id",
            )?;
            expect_end(tokens, "QUEUED")?;
            Frame::Queued { job }
        }
        "v" => {
            let job = parse_u64(
                tokens.next().ok_or_else(|| malformed("v needs a job id"))?,
                "job id",
            )?;
            let mut literals = Vec::new();
            let mut terminated = false;
            for token in tokens.by_ref() {
                let lit = parse_i64(token)?;
                if lit == 0 {
                    terminated = true;
                    break;
                }
                literals.push(lit);
            }
            if !terminated {
                return Err(malformed("v-line missing terminating 0"));
            }
            expect_end(tokens, "the v-line terminator")?;
            Frame::Model { job, literals }
        }
        "f" => {
            let job = parse_u64(
                tokens.next().ok_or_else(|| malformed("f needs a job id"))?,
                "job id",
            )?;
            let mut literals = Vec::new();
            let mut terminated = false;
            for token in tokens.by_ref() {
                let lit = parse_i64(token)?;
                if lit == 0 {
                    terminated = true;
                    break;
                }
                literals.push(lit);
            }
            if !terminated {
                return Err(malformed("f-line missing terminating 0"));
            }
            expect_end(tokens, "the f-line terminator")?;
            Frame::FailedAssumptions { job, literals }
        }
        "SESSIONOK" => {
            let session = parse_u64(
                tokens
                    .next()
                    .ok_or_else(|| malformed("SESSIONOK needs a session id"))?,
                "session id",
            )?;
            let (key, value) = split_key_value(
                tokens
                    .next()
                    .ok_or_else(|| malformed("SESSIONOK needs a depth key"))?,
            )?;
            if key != "depth" {
                return Err(malformed(format!("unknown SESSIONOK key '{key}'")));
            }
            let depth = parse_u64(value, key)?;
            expect_end(tokens, "SESSIONOK")?;
            Frame::SessionOk { session, depth }
        }
        "CAPS" => {
            let (key, value) = split_key_value(
                tokens
                    .next()
                    .ok_or_else(|| malformed("CAPS needs a sessions key"))?,
            )?;
            if key != "sessions" {
                return Err(malformed(format!("unknown CAPS key '{key}'")));
            }
            let sessions = match value {
                "true" => true,
                "false" => false,
                other => return Err(malformed(format!("invalid sessions value '{other}'"))),
            };
            expect_end(tokens, "CAPS")?;
            Frame::Caps { sessions }
        }
        "STATS" => {
            let job = parse_u64(
                tokens
                    .next()
                    .ok_or_else(|| malformed("STATS needs a job id"))?,
                "job id",
            )?;
            let mut slots: [Option<u64>; 14] = [None; 14];
            const KEYS: [&str; 14] = [
                "decisions",
                "conflicts",
                "propagations",
                "restarts",
                "learned",
                "tried",
                "flips",
                "checks",
                "samples",
                "wall-us",
                "cache-hits",
                "pre-vars-removed",
                "clauses-exported",
                "clauses-imported",
            ];
            for token in tokens {
                let (key, value) = split_key_value(token)?;
                let index = KEYS
                    .iter()
                    .position(|&k| k == key)
                    .ok_or_else(|| malformed(format!("unknown STATS key '{key}'")))?;
                store_once(&mut slots[index], key, parse_u64(value, key)?)?;
            }
            let counter = |index: usize| slots[index].unwrap_or(0);
            Frame::Stats {
                job,
                stats: WireStats {
                    decisions: counter(0),
                    conflicts: counter(1),
                    propagations: counter(2),
                    restarts: counter(3),
                    learned: counter(4),
                    tried: counter(5),
                    flips: counter(6),
                    checks: counter(7),
                    samples: counter(8),
                    wall_us: counter(9),
                    cache_hits: counter(10),
                    pre_vars_removed: counter(11),
                    clauses_exported: counter(12),
                    clauses_imported: counter(13),
                },
            }
        }
        "RESULT" => {
            let job = parse_u64(
                tokens
                    .next()
                    .ok_or_else(|| malformed("RESULT needs a job id"))?,
                "job id",
            )?;
            match tokens.next() {
                Some("s") => {}
                other => return Err(malformed(format!("RESULT expects 's', got {other:?}"))),
            }
            let verdict = match tokens.next() {
                Some("SATISFIABLE") => WireVerdict::Satisfiable,
                Some("UNSATISFIABLE") => WireVerdict::Unsatisfiable,
                Some("UNKNOWN") => {
                    let cause = WireCause::parse(
                        tokens
                            .next()
                            .ok_or_else(|| malformed("UNKNOWN needs a cause"))?,
                    )?;
                    WireVerdict::Unknown(cause)
                }
                other => return Err(malformed(format!("unknown verdict {other:?}"))),
            };
            expect_end(tokens, "RESULT")?;
            Frame::Result { job, verdict }
        }
        "INFO" => {
            let job = parse_u64(
                tokens
                    .next()
                    .ok_or_else(|| malformed("INFO needs a job id"))?,
                "job id",
            )?;
            let status = WireJobStatus::parse(
                tokens
                    .next()
                    .ok_or_else(|| malformed("INFO needs a status"))?,
            )?;
            let mut queue_depth = None;
            let mut high = None;
            let mut normal = None;
            let mut low = None;
            for token in tokens {
                let (key, value) = split_key_value(token)?;
                match key {
                    "queue-depth" => store_once(&mut queue_depth, key, parse_u64(value, key)?)?,
                    "backlog-high" => store_once(&mut high, key, parse_u64(value, key)?)?,
                    "backlog-normal" => store_once(&mut normal, key, parse_u64(value, key)?)?,
                    "backlog-low" => store_once(&mut low, key, parse_u64(value, key)?)?,
                    other => return Err(malformed(format!("unknown INFO key '{other}'"))),
                }
            }
            let any_gauge =
                queue_depth.is_some() || high.is_some() || normal.is_some() || low.is_some();
            let backlog = any_gauge.then(|| WireBacklog {
                queue_depth: queue_depth.unwrap_or(0),
                high: high.unwrap_or(0),
                normal: normal.unwrap_or(0),
                low: low.unwrap_or(0),
            });
            Frame::Info {
                job,
                status,
                backlog,
            }
        }
        "OK" => {
            match tokens.next() {
                Some("refill") => {}
                other => return Err(malformed(format!("unknown OK payload {other:?}"))),
            }
            expect_end(tokens, "OK")?;
            Frame::OkRefill
        }
        "PONG" => {
            expect_end(tokens, "PONG")?;
            Frame::Pong
        }
        "BYE" => {
            expect_end(tokens, "BYE")?;
            Frame::Bye
        }
        "ERR" => {
            let scope = tokens
                .next()
                .ok_or_else(|| malformed("ERR needs a scope"))?;
            let job = if scope == "-" {
                None
            } else {
                Some(parse_u64(scope, "job id")?)
            };
            // The message is the rest of the line, whitespace-normalised by
            // the tokenizer-free slice: find the scope token and take what
            // follows it.
            let rest: Vec<&str> = tokens.collect();
            if rest.is_empty() {
                return Err(malformed("ERR needs a message"));
            }
            Frame::Error {
                job,
                message: rest.join(" "),
            }
        }
        other => return Err(malformed(format!("unknown verb '{other}'"))),
    };
    Ok(Some(frame))
}

fn parse_solve<'a, R: BufRead, I: Iterator<Item = &'a str>>(
    mut tokens: I,
    reader: &mut R,
) -> Result<Frame, ProtocolError> {
    let backend = tokens
        .next()
        .ok_or_else(|| malformed("SOLVE needs a backend name"))?;
    if !valid_backend_name(backend) {
        return Err(malformed(format!("invalid backend name '{backend}'")));
    }
    let mut seed = None;
    let mut priority = None;
    let mut artifacts = None;
    let mut wall_ms = None;
    let mut max_samples = None;
    let mut max_checks = None;
    let mut stats: Option<bool> = None;
    let mut body_lines: Option<usize> = None;
    for token in tokens {
        if body_lines.is_some() {
            return Err(malformed("body-lines must be the last SOLVE key"));
        }
        let (key, value) = split_key_value(token)?;
        match key {
            "seed" => store_once(&mut seed, key, parse_u64(value, key)?)?,
            "stats" => {
                let value = match value {
                    "true" => true,
                    "false" => false,
                    other => return Err(malformed(format!("invalid stats value '{other}'"))),
                };
                if stats.replace(value).is_some() {
                    return Err(malformed("duplicate key 'stats'"));
                }
            }
            "priority" => {
                if priority.replace(WirePriority::parse(value)?).is_some() {
                    return Err(malformed("duplicate key 'priority'"));
                }
            }
            "artifacts" => {
                if artifacts.replace(WireArtifacts::parse(value)?).is_some() {
                    return Err(malformed("duplicate key 'artifacts'"));
                }
            }
            "wall-ms" => store_once(&mut wall_ms, key, parse_u64(value, key)?)?,
            "samples" => store_once(&mut max_samples, key, parse_u64(value, key)?)?,
            "checks" => store_once(&mut max_checks, key, parse_u64(value, key)?)?,
            "body-lines" => {
                let count = parse_u64(value, key)?;
                // Compare in u64 before narrowing: `as usize` would wrap
                // huge counts into the accepted range on 32-bit targets.
                if count > MAX_BODY_LINES as u64 {
                    return Err(ProtocolError::Desync(format!(
                        "body-lines={count} exceeds the {MAX_BODY_LINES}-line cap"
                    )));
                }
                body_lines = Some(count as usize);
            }
            other => return Err(malformed(format!("unknown SOLVE key '{other}'"))),
        }
    }
    let body_lines =
        body_lines.ok_or_else(|| malformed("SOLVE needs a trailing body-lines key"))?;
    let mut body = Vec::with_capacity(body_lines.min(1024));
    for _ in 0..body_lines {
        let line = read_limited_line(reader)?
            .ok_or_else(|| ProtocolError::Desync("connection closed inside a SOLVE body".into()))?;
        body.push(decode_utf8(line)?);
    }
    Ok(Frame::Solve(SolveFrame {
        backend: backend.to_string(),
        seed: seed.unwrap_or(0),
        priority: priority.unwrap_or_default(),
        artifacts: artifacts.unwrap_or_default(),
        wall_ms,
        max_samples,
        max_checks,
        stats: stats.unwrap_or(false),
        body,
    }))
}

/// Parses a `METRICS` line: bare (the client's request) or keyed (the
/// server's snapshot response, whose `body-lines=` count announces the
/// per-backend latency lines that follow).
fn parse_metrics<'a, R: BufRead, I: Iterator<Item = &'a str>>(
    tokens: I,
    reader: &mut R,
) -> Result<Frame, ProtocolError> {
    // Counter keys may be any subset (absent reads 0), like STATS; only the
    // trailing body-lines key distinguishes the response and is mandatory
    // there.
    let mut slots: [Option<u64>; 15] = [None; 15];
    const KEYS: [&str; 15] = [
        "queue-depth",
        "backlog-high",
        "backlog-normal",
        "backlog-low",
        "cache-hits",
        "cache-misses",
        "cache-evictions",
        "cache-entries",
        "pre-vars-removed",
        "pre-clauses-removed",
        "pre-solved",
        "budget-samples-spent",
        "budget-checks-spent",
        "clauses-exported",
        "clauses-imported",
    ];
    let mut body_lines: Option<usize> = None;
    let mut any_key = false;
    for token in tokens {
        if body_lines.is_some() {
            return Err(malformed("body-lines must be the last METRICS key"));
        }
        any_key = true;
        let (key, value) = split_key_value(token)?;
        if key == "body-lines" {
            let count = parse_u64(value, key)?;
            if count > MAX_BODY_LINES as u64 {
                return Err(ProtocolError::Desync(format!(
                    "body-lines={count} exceeds the {MAX_BODY_LINES}-line cap"
                )));
            }
            body_lines = Some(count as usize);
            continue;
        }
        let index = KEYS
            .iter()
            .position(|&k| k == key)
            .ok_or_else(|| malformed(format!("unknown METRICS key '{key}'")))?;
        store_once(&mut slots[index], key, parse_u64(value, key)?)?;
    }
    if !any_key {
        return Ok(Frame::MetricsRequest);
    }
    let body_lines =
        body_lines.ok_or_else(|| malformed("METRICS response needs a trailing body-lines key"))?;
    let mut backends = Vec::with_capacity(body_lines.min(1024));
    for _ in 0..body_lines {
        let line = read_limited_line(reader)?.ok_or_else(|| {
            ProtocolError::Desync("connection closed inside a METRICS body".into())
        })?;
        backends.push(parse_metrics_backend(&decode_utf8(line)?)?);
    }
    let counter = |index: usize| slots[index].unwrap_or(0);
    Ok(Frame::Metrics(WireMetrics {
        queue_depth: counter(0),
        backlog_high: counter(1),
        backlog_normal: counter(2),
        backlog_low: counter(3),
        cache_hits: counter(4),
        cache_misses: counter(5),
        cache_evictions: counter(6),
        cache_entries: counter(7),
        pre_vars_removed: counter(8),
        pre_clauses_removed: counter(9),
        pre_solved: counter(10),
        budget_samples_spent: counter(11),
        budget_checks_spent: counter(12),
        clauses_exported: counter(13),
        clauses_imported: counter(14),
        backends,
    }))
}

/// Parses one `METRICS` body line:
/// `backend <name> count=<u64> total-us=<u64> max-us=<u64>`.
fn parse_metrics_backend(line: &str) -> Result<WireBackendLatency, ProtocolError> {
    let mut tokens = line.split_ascii_whitespace();
    match tokens.next() {
        Some("backend") => {}
        other => {
            return Err(malformed(format!(
                "METRICS body line must start with 'backend', got {other:?}"
            )))
        }
    }
    let name = tokens
        .next()
        .ok_or_else(|| malformed("METRICS body line needs a backend name"))?;
    if !valid_backend_name(name) {
        return Err(malformed(format!("invalid backend name '{name}'")));
    }
    let mut count = None;
    let mut total_us = None;
    let mut max_us = None;
    for token in tokens {
        let (key, value) = split_key_value(token)?;
        match key {
            "count" => store_once(&mut count, key, parse_u64(value, key)?)?,
            "total-us" => store_once(&mut total_us, key, parse_u64(value, key)?)?,
            "max-us" => store_once(&mut max_us, key, parse_u64(value, key)?)?,
            other => return Err(malformed(format!("unknown METRICS body key '{other}'"))),
        }
    }
    Ok(WireBackendLatency {
        name: name.to_string(),
        count: count.unwrap_or(0),
        total_us: total_us.unwrap_or(0),
        max_us: max_us.unwrap_or(0),
    })
}

/// Parses the comma-separated DIMACS literals of a `lits=` value.
fn parse_lit_list(value: &str) -> Result<Vec<i64>, ProtocolError> {
    let mut literals = Vec::new();
    for token in value.split(',') {
        let lit = parse_i64(token)?;
        if lit == 0 {
            return Err(malformed("assumption literal must be non-zero"));
        }
        literals.push(lit);
    }
    Ok(literals)
}

fn parse_session<'a, R: BufRead, I: Iterator<Item = &'a str>>(
    mut tokens: I,
    reader: &mut R,
) -> Result<Frame, ProtocolError> {
    let subverb = tokens
        .next()
        .ok_or_else(|| malformed("SESSION needs a subverb"))?;
    let frame = match subverb {
        "OPEN" => {
            let (key, value) = split_key_value(
                tokens
                    .next()
                    .ok_or_else(|| malformed("SESSION OPEN needs a backend key"))?,
            )?;
            if key != "backend" {
                return Err(malformed(format!("unknown SESSION OPEN key '{key}'")));
            }
            if !valid_backend_name(value) {
                return Err(malformed(format!("invalid backend name '{value}'")));
            }
            expect_end(tokens, "SESSION OPEN")?;
            Frame::SessionOpen {
                backend: value.to_string(),
            }
        }
        "ADDCLAUSES" => {
            let session = parse_u64(
                tokens
                    .next()
                    .ok_or_else(|| malformed("SESSION ADDCLAUSES needs a session id"))?,
                "session id",
            )?;
            let (key, value) = split_key_value(
                tokens
                    .next()
                    .ok_or_else(|| malformed("SESSION ADDCLAUSES needs a body-lines key"))?,
            )?;
            if key != "body-lines" {
                return Err(malformed(format!("unknown SESSION ADDCLAUSES key '{key}'")));
            }
            let count = parse_u64(value, key)?;
            if count > MAX_BODY_LINES as u64 {
                return Err(ProtocolError::Desync(format!(
                    "body-lines={count} exceeds the {MAX_BODY_LINES}-line cap"
                )));
            }
            expect_end(tokens, "SESSION ADDCLAUSES")?;
            let count = count as usize;
            let mut body = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                let line = read_limited_line(reader)?.ok_or_else(|| {
                    ProtocolError::Desync("connection closed inside an ADDCLAUSES body".into())
                })?;
                body.push(decode_utf8(line)?);
            }
            Frame::SessionAddClauses { session, body }
        }
        "ASSUME" => {
            let session = parse_u64(
                tokens
                    .next()
                    .ok_or_else(|| malformed("SESSION ASSUME needs a session id"))?,
                "session id",
            )?;
            let mut literals: Option<Vec<i64>> = None;
            let mut wall_ms = None;
            let mut max_samples = None;
            let mut max_checks = None;
            for token in tokens {
                let (key, value) = split_key_value(token)?;
                match key {
                    "lits" => {
                        if literals.replace(parse_lit_list(value)?).is_some() {
                            return Err(malformed("duplicate key 'lits'"));
                        }
                    }
                    "wall-ms" => store_once(&mut wall_ms, key, parse_u64(value, key)?)?,
                    "samples" => store_once(&mut max_samples, key, parse_u64(value, key)?)?,
                    "checks" => store_once(&mut max_checks, key, parse_u64(value, key)?)?,
                    other => {
                        return Err(malformed(format!("unknown SESSION ASSUME key '{other}'")))
                    }
                }
            }
            Frame::SessionAssume {
                session,
                literals: literals.unwrap_or_default(),
                wall_ms,
                max_samples,
                max_checks,
            }
        }
        "POP" => {
            let session = parse_u64(
                tokens
                    .next()
                    .ok_or_else(|| malformed("SESSION POP needs a session id"))?,
                "session id",
            )?;
            expect_end(tokens, "SESSION POP")?;
            Frame::SessionPop { session }
        }
        "CLOSE" => {
            let session = parse_u64(
                tokens
                    .next()
                    .ok_or_else(|| malformed("SESSION CLOSE needs a session id"))?,
                "session id",
            )?;
            expect_end(tokens, "SESSION CLOSE")?;
            Frame::SessionClose { session }
        }
        other => return Err(malformed(format!("unknown SESSION subverb '{other}'"))),
    };
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(frame: Frame) {
        let text = frame.encode();
        let mut cursor = Cursor::new(text.clone());
        let parsed = Frame::read_from(&mut cursor)
            .unwrap_or_else(|e| panic!("parse failed for {text:?}: {e}"))
            .expect("one frame");
        assert_eq!(parsed, frame, "round-trip mismatch for {text:?}");
        // The whole encoding was consumed.
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), None);
    }

    #[test]
    fn every_verb_round_trips() {
        roundtrip(Frame::Solve(SolveFrame::new(
            "cdcl",
            "p cnf 2 2\n1 2 0\n-1 -2 0",
        )));
        roundtrip(Frame::Solve(SolveFrame {
            backend: "parallel-portfolio".into(),
            seed: u64::MAX,
            priority: WirePriority::High,
            artifacts: WireArtifacts::Verdict,
            wall_ms: Some(5000),
            max_samples: Some(0),
            max_checks: Some(64),
            stats: true,
            body: vec![],
        }));
        roundtrip(Frame::Cancel { job: 7 });
        roundtrip(Frame::Status { job: 0 });
        roundtrip(Frame::Refill {
            samples: Some(10),
            checks: None,
            wall_ms: Some(1),
        });
        roundtrip(Frame::Ping);
        roundtrip(Frame::Shutdown);
        roundtrip(Frame::Queued { job: 3 });
        roundtrip(Frame::Model {
            job: 3,
            literals: vec![1, -2, 3],
        });
        roundtrip(Frame::Model {
            job: 9,
            literals: vec![],
        });
        roundtrip(Frame::Stats {
            job: 6,
            stats: WireStats {
                decisions: 12,
                conflicts: 3,
                propagations: 40,
                restarts: 1,
                learned: 3,
                tried: 0,
                flips: 0,
                checks: 9,
                samples: 512,
                wall_us: 1234,
                cache_hits: 1,
                pre_vars_removed: 4,
                clauses_exported: 7,
                clauses_imported: 2,
            },
        });
        roundtrip(Frame::Stats {
            job: 0,
            stats: WireStats::default(),
        });
        roundtrip(Frame::Result {
            job: 3,
            verdict: WireVerdict::Satisfiable,
        });
        roundtrip(Frame::Result {
            job: 4,
            verdict: WireVerdict::Unknown(WireCause::BudgetSamples),
        });
        roundtrip(Frame::Info {
            job: 5,
            status: WireJobStatus::Running,
            backlog: None,
        });
        roundtrip(Frame::Info {
            job: 5,
            status: WireJobStatus::Queued,
            backlog: Some(WireBacklog {
                queue_depth: 6,
                high: 1,
                normal: 4,
                low: 1,
            }),
        });
        roundtrip(Frame::OkRefill);
        roundtrip(Frame::Pong);
        roundtrip(Frame::Bye);
        roundtrip(Frame::Error {
            job: Some(12),
            message: "unknown backend 'minisat'".into(),
        });
        roundtrip(Frame::Error {
            job: None,
            message: "unknown verb 'FROB'".into(),
        });
    }

    #[test]
    fn session_frames_round_trip() {
        roundtrip(Frame::Hello);
        roundtrip(Frame::Caps { sessions: true });
        roundtrip(Frame::Caps { sessions: false });
        roundtrip(Frame::SessionOpen {
            backend: "cdcl".into(),
        });
        roundtrip(Frame::SessionAddClauses {
            session: 3,
            body: vec!["p cnf 2 2".into(), "1 2 0".into(), "-1 -2 0".into()],
        });
        roundtrip(Frame::SessionAddClauses {
            session: 0,
            body: vec![],
        });
        roundtrip(Frame::SessionAssume {
            session: 3,
            literals: vec![1, -2, 7],
            wall_ms: Some(250),
            max_samples: None,
            max_checks: Some(9),
        });
        roundtrip(Frame::SessionAssume {
            session: 3,
            literals: vec![],
            wall_ms: None,
            max_samples: None,
            max_checks: None,
        });
        roundtrip(Frame::SessionPop { session: 3 });
        roundtrip(Frame::SessionClose { session: 3 });
        roundtrip(Frame::SessionOk {
            session: 3,
            depth: 2,
        });
        roundtrip(Frame::FailedAssumptions {
            job: 9,
            literals: vec![-2, 7],
        });
        roundtrip(Frame::FailedAssumptions {
            job: 9,
            literals: vec![],
        });
    }

    #[test]
    fn session_parser_is_strict() {
        let bad = [
            "SESSION\n",
            "SESSION FROB 1\n",
            "SESSION OPEN\n",
            "SESSION OPEN cdcl\n",
            "SESSION OPEN backend=bad name\n",
            "SESSION OPEN backend=\n",
            "SESSION ADDCLAUSES 1\n",
            "SESSION ADDCLAUSES 1 lines=0\n",
            "SESSION ADDCLAUSES x body-lines=0\n",
            "SESSION ASSUME\n",
            "SESSION ASSUME 1 lits=0\n",
            "SESSION ASSUME 1 lits=1,,2\n",
            "SESSION ASSUME 1 lits=1 lits=2\n",
            "SESSION ASSUME 1 wall-ms=1 wall-ms=2\n",
            "SESSION ASSUME 1 frobs=2\n",
            "SESSION POP\n",
            "SESSION POP 1 2\n",
            "SESSION CLOSE -1\n",
            "SESSIONOK 1\n",
            "SESSIONOK 1 depth=x\n",
            "SESSIONOK 1 depth=0 extra\n",
            "CAPS\n",
            "CAPS sessions=maybe\n",
            "CAPS frobs=true\n",
            "HELLO there\n",
            "f 1 2 3\n",
            "f 1 2 0 4\n",
        ];
        for text in bad {
            let mut cursor = Cursor::new(text.to_string());
            let error = Frame::read_from(&mut cursor)
                .err()
                .unwrap_or_else(|| panic!("{text:?} must not parse"));
            assert!(error.is_recoverable(), "{text:?} should stay synchronised");
        }
        // An over-long ADDCLAUSES body declaration loses framing.
        let text = format!("SESSION ADDCLAUSES 1 body-lines={}\n", MAX_BODY_LINES + 1);
        let mut cursor = Cursor::new(text);
        assert!(matches!(
            Frame::read_from(&mut cursor),
            Err(ProtocolError::Desync(_))
        ));
        // A body cut off by EOF loses framing too.
        let mut cursor = Cursor::new("SESSION ADDCLAUSES 1 body-lines=2\np cnf 1 1\n".to_string());
        assert!(matches!(
            Frame::read_from(&mut cursor),
            Err(ProtocolError::Desync(_))
        ));
    }

    #[test]
    fn streams_of_frames_parse_in_order() {
        let mut text = String::new();
        let frames = vec![
            Frame::Ping,
            Frame::Solve(SolveFrame::new("dpll", "p cnf 1 1\n1 0")),
            Frame::Cancel { job: 1 },
        ];
        for frame in &frames {
            text.push_str(&frame.encode());
        }
        let mut cursor = Cursor::new(text);
        for frame in &frames {
            assert_eq!(Frame::read_from(&mut cursor).unwrap().as_ref(), Some(frame));
        }
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), None);
    }

    #[test]
    fn crlf_and_missing_final_newline_are_tolerated() {
        let mut cursor = Cursor::new("PING\r\n".to_string());
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), Some(Frame::Ping));
        let mut cursor = Cursor::new("PONG".to_string());
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), Some(Frame::Pong));
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), None);
    }

    #[test]
    fn solve_budget_mapping() {
        let frame = SolveFrame {
            wall_ms: Some(1500),
            max_samples: Some(7),
            ..SolveFrame::new("cdcl", "")
        };
        let budget = frame.budget();
        assert_eq!(budget.wall_time, Some(Duration::from_millis(1500)));
        assert_eq!(budget.max_samples, Some(7));
        assert_eq!(budget.max_checks, None);
        assert!(SolveFrame::new("cdcl", "").budget().is_unlimited());
    }

    #[test]
    fn stats_keys_may_be_any_subset_but_never_duplicate_or_unknown() {
        let mut cursor = Cursor::new("STATS 4 flips=17 wall-us=9\n".to_string());
        let frame = Frame::read_from(&mut cursor).unwrap().unwrap();
        assert_eq!(
            frame,
            Frame::Stats {
                job: 4,
                stats: WireStats {
                    flips: 17,
                    wall_us: 9,
                    ..WireStats::default()
                },
            }
        );
        let mut cursor = Cursor::new("STATS 4 flips=1 flips=2\n".to_string());
        assert!(Frame::read_from(&mut cursor).is_err());
        let mut cursor = Cursor::new("STATS 4 wat=1\n".to_string());
        assert!(Frame::read_from(&mut cursor).is_err());
        let mut cursor = Cursor::new("STATS 4 flips=-1\n".to_string());
        assert!(Frame::read_from(&mut cursor).is_err());
    }

    #[test]
    fn solve_stats_key_is_strict_and_off_by_default() {
        let plain = SolveFrame::new("cdcl", "p cnf 1 1\n1 0");
        assert!(!plain.stats);
        assert!(!Frame::Solve(plain).encode().contains("stats="));
        let mut cursor = Cursor::new("SOLVE cdcl stats=true body-lines=0\n".to_string());
        match Frame::read_from(&mut cursor).unwrap().unwrap() {
            Frame::Solve(solve) => assert!(solve.stats),
            other => panic!("expected SOLVE, got {other:?}"),
        }
        let mut cursor = Cursor::new("SOLVE cdcl stats=false body-lines=0\n".to_string());
        match Frame::read_from(&mut cursor).unwrap().unwrap() {
            Frame::Solve(solve) => assert!(!solve.stats),
            other => panic!("expected SOLVE, got {other:?}"),
        }
        let mut cursor = Cursor::new("SOLVE cdcl stats=yes body-lines=0\n".to_string());
        assert!(Frame::read_from(&mut cursor).is_err());
        let mut cursor = Cursor::new("SOLVE cdcl stats=true stats=true body-lines=0\n".to_string());
        assert!(Frame::read_from(&mut cursor).is_err());
    }

    #[test]
    fn wire_stats_round_trips_through_solve_stats() {
        let stats = SolveStats {
            decisions: 5,
            conflicts: 2,
            propagations: 11,
            restarts: 1,
            learned_clauses: 2,
            assignments_tried: 64,
            flips: 7,
            coprocessor_checks: 3,
            samples: 100,
            wall_time: Duration::from_micros(4321),
            cache_hits: 1,
            preprocessed_vars_removed: 6,
            clauses_exported: 9,
            clauses_imported: 4,
            ..SolveStats::default()
        };
        let wire = WireStats::from(&stats);
        assert_eq!(wire.cache_hits, 1);
        assert_eq!(wire.pre_vars_removed, 6);
        assert_eq!(wire.clauses_exported, 9);
        assert_eq!(wire.clauses_imported, 4);
        assert_eq!(wire.to_solve_stats(), stats);
    }

    #[test]
    fn metrics_frames_round_trip() {
        // A bare METRICS line is the client's request...
        roundtrip(Frame::MetricsRequest);
        // ...and a keyed one is the server's snapshot response.
        roundtrip(Frame::Metrics(WireMetrics {
            queue_depth: 6,
            backlog_high: 1,
            backlog_normal: 4,
            backlog_low: 1,
            cache_hits: 17,
            cache_misses: 40,
            cache_evictions: 2,
            cache_entries: 38,
            pre_vars_removed: 120,
            pre_clauses_removed: 64,
            pre_solved: 9,
            budget_samples_spent: 100_000,
            budget_checks_spent: 4_096,
            clauses_exported: 512,
            clauses_imported: 301,
            backends: vec![
                WireBackendLatency {
                    name: "cdcl".into(),
                    count: 31,
                    total_us: 88_000,
                    max_us: 12_000,
                },
                WireBackendLatency {
                    name: "nbl-sampled".into(),
                    count: 9,
                    total_us: 4_500,
                    max_us: 900,
                },
            ],
        }));
        roundtrip(Frame::Metrics(WireMetrics::default()));
    }

    #[test]
    fn metrics_parser_is_strict() {
        let bad = [
            // Counter keys without the mandatory trailing body-lines.
            "METRICS cache-hits=3\n",
            // body-lines must come last.
            "METRICS body-lines=0 cache-hits=3\n",
            "METRICS wat=1 body-lines=0\n",
            "METRICS cache-hits=1 cache-hits=2 body-lines=0\n",
            "METRICS cache-hits=-1 body-lines=0\n",
            // Malformed body lines.
            "METRICS body-lines=1\nfrob cdcl count=1\n",
            "METRICS body-lines=1\nbackend\n",
            "METRICS body-lines=1\nbackend bad name count=1\n",
            "METRICS body-lines=1\nbackend cdcl count=1 count=2\n",
            "METRICS body-lines=1\nbackend cdcl wat=1\n",
        ];
        for text in bad {
            let mut cursor = Cursor::new(text.to_string());
            assert!(
                Frame::read_from(&mut cursor).is_err(),
                "{text:?} must not parse"
            );
        }
        // Body-line counter keys may be any subset; absent counters read 0.
        let mut cursor = Cursor::new("METRICS body-lines=1\nbackend cdcl count=5\n".to_string());
        match Frame::read_from(&mut cursor).unwrap().unwrap() {
            Frame::Metrics(metrics) => {
                assert_eq!(metrics.backends.len(), 1);
                assert_eq!(metrics.backends[0].count, 5);
                assert_eq!(metrics.backends[0].total_us, 0);
                assert_eq!(metrics.cache_hits, 0);
            }
            other => panic!("expected METRICS, got {other:?}"),
        }
        // A body cut off by EOF loses framing.
        let mut cursor = Cursor::new("METRICS body-lines=2\nbackend cdcl count=1\n".to_string());
        assert!(matches!(
            Frame::read_from(&mut cursor),
            Err(ProtocolError::Desync(_))
        ));
    }

    #[test]
    fn info_backlog_keys_are_optional_and_strict() {
        // A bare INFO (an older server) parses with no backlog.
        let mut cursor = Cursor::new("INFO 5 running\n".to_string());
        assert_eq!(
            Frame::read_from(&mut cursor).unwrap().unwrap(),
            Frame::Info {
                job: 5,
                status: WireJobStatus::Running,
                backlog: None,
            }
        );
        // Any gauge key present yields a backlog (absent gauges read 0).
        let mut cursor = Cursor::new("INFO 5 queued backlog-normal=3\n".to_string());
        match Frame::read_from(&mut cursor).unwrap().unwrap() {
            Frame::Info {
                backlog: Some(backlog),
                ..
            } => {
                assert_eq!(backlog.normal, 3);
                assert_eq!(backlog.queue_depth, 0);
            }
            other => panic!("expected INFO with backlog, got {other:?}"),
        }
        let mut cursor = Cursor::new("INFO 5 running wat=1\n".to_string());
        assert!(Frame::read_from(&mut cursor).is_err());
        let mut cursor = Cursor::new("INFO 5 running queue-depth=1 queue-depth=2\n".to_string());
        assert!(Frame::read_from(&mut cursor).is_err());
    }

    #[test]
    fn exit_codes_follow_the_sat_competition_convention() {
        assert_eq!(WireVerdict::Satisfiable.exit_code(), 10);
        assert_eq!(WireVerdict::Unsatisfiable.exit_code(), 20);
        assert_eq!(WireVerdict::Unknown(WireCause::Cancelled).exit_code(), 0);
    }

    #[test]
    fn recoverability_classification() {
        assert!(malformed("x").is_recoverable());
        assert!(!ProtocolError::Desync("x".into()).is_recoverable());
        assert!(!ProtocolError::Io(std::io::Error::other("x")).is_recoverable());
    }
}
