//! `nbl-sat-client` — solve a DIMACS `.cnf` file on a remote `nbl-satd`.
//!
//! ```text
//! nbl-sat-client [--addr HOST:PORT] [--backend NAME] [--seed N]
//!                [--wall-ms N] [--samples N] [--checks N]
//!                [--session] [--assume L1,L2,...]
//!                [--metrics] [--shutdown] [FILE.cnf]
//! ```
//!
//! Connects (retrying for a few seconds so scripts can race the server's
//! startup), submits the file, prints conventional DIMACS solver output
//! (`c`/`s`/`v` lines) and exits with the SAT-competition code: 10 for
//! SATISFIABLE, 20 for UNSATISFIABLE, 0 for UNKNOWN. With `--shutdown` the
//! server is asked to drain and exit after the solve (or immediately when no
//! file is given).
//!
//! With `--session` the file is solved through the incremental `SESSION`
//! extension instead of a one-shot `SOLVE`: the client probes `HELLO`,
//! opens a session, pushes the file as one clause frame, solves it under
//! the `--assume` literals (UNSAT answers also print the failed-assumption
//! core as an `f`-line), then pops the frame and closes the session — a
//! full `OPEN → ADDCLAUSES → ASSUME → POP → CLOSE` round trip.
//!
//! With `--metrics` the client asks the server for its pipeline metrics
//! snapshot after any solve and prints the raw `METRICS` response frame to
//! stdout (machine-parseable: feed it back through the codec, or scrape the
//! `key=value` gauges directly).

use nbl_net::{Frame, NblSatClient, SolveFrame, WireArtifacts, WireVerdict};
use std::time::Duration;

/// How long connect attempts retry before giving up.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

fn usage() -> ! {
    eprintln!(
        "usage: nbl-sat-client [--addr HOST:PORT] [--backend NAME] [--seed N] \
         [--wall-ms N] [--samples N] [--checks N] [--session] [--assume L1,L2,...] \
         [--metrics] [--shutdown] [FILE.cnf]"
    );
    std::process::exit(2);
}

fn parse_u64_arg(value: Option<String>) -> u64 {
    match value.and_then(|v| v.parse().ok()) {
        Some(n) => n,
        None => usage(),
    }
}

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut addr = String::from("127.0.0.1:7878");
    let mut backend = String::from("cdcl");
    let mut seed = 2012u64;
    let mut wall_ms = None;
    let mut samples = None;
    let mut checks = None;
    let mut shutdown = false;
    let mut session = false;
    let mut metrics = false;
    let mut assumptions: Vec<i64> = Vec::new();
    let mut file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(value) => addr = value,
                None => usage(),
            },
            "--backend" => match args.next() {
                Some(value) => backend = value,
                None => usage(),
            },
            "--seed" => seed = parse_u64_arg(args.next()),
            "--wall-ms" => wall_ms = Some(parse_u64_arg(args.next())),
            "--samples" => samples = Some(parse_u64_arg(args.next())),
            "--checks" => checks = Some(parse_u64_arg(args.next())),
            "--session" => session = true,
            "--assume" => match args.next() {
                Some(value) => {
                    for token in value.split(',').filter(|t| !t.is_empty()) {
                        match token.parse::<i64>() {
                            Ok(lit) if lit != 0 => assumptions.push(lit),
                            _ => usage(),
                        }
                    }
                }
                None => usage(),
            },
            "--metrics" => metrics = true,
            "--shutdown" => shutdown = true,
            "--help" | "-h" => usage(),
            _ if file.is_none() && !arg.starts_with('-') => file = Some(arg),
            _ => usage(),
        }
    }

    let client = match NblSatClient::connect_with_retries(addr.as_str(), CONNECT_TIMEOUT) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("nbl-sat-client: cannot connect to {addr}: {e}");
            return 1;
        }
    };

    let mut exit = 0;
    if let Some(path) = file {
        let dimacs = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("nbl-sat-client: cannot read {path}: {e}");
                return 1;
            }
        };
        if session {
            let mut exit = run_session(&client, &addr, &backend, &dimacs, &assumptions);
            if metrics && !print_metrics(&client) && exit == 0 {
                exit = 1;
            }
            if shutdown {
                if let Err(e) = client.shutdown_server() {
                    eprintln!("nbl-sat-client: shutdown failed: {e}");
                } else {
                    println!("c server acknowledged shutdown");
                }
            }
            return exit;
        }
        println!("c solving {path} remotely on {addr} with backend {backend}");
        let mut frame = SolveFrame::new(&backend, &dimacs);
        frame.seed = seed;
        frame.artifacts = WireArtifacts::Model;
        frame.wall_ms = wall_ms;
        frame.max_samples = samples;
        frame.max_checks = checks;
        let outcome = client.submit(frame).and_then(|job| {
            println!("c queued as job {}", job.id());
            job.wait()
        });
        exit = match outcome {
            Ok(outcome) => {
                match outcome.verdict {
                    WireVerdict::Satisfiable => println!("s SATISFIABLE"),
                    WireVerdict::Unsatisfiable => println!("s UNSATISFIABLE"),
                    WireVerdict::Unknown(cause) => {
                        println!("c verdict cause: {cause:?}");
                        println!("s UNKNOWN");
                    }
                }
                if let Some(model) = &outcome.model {
                    print!("v");
                    for lit in model {
                        print!(" {lit}");
                    }
                    println!(" 0");
                }
                // SAT-competition convention: 10 SAT, 20 UNSAT, 0 UNKNOWN.
                outcome.verdict.exit_code()
            }
            Err(e) => {
                eprintln!("nbl-sat-client: {e}");
                1
            }
        };
    }
    if metrics && !print_metrics(&client) && exit == 0 {
        exit = 1;
    }
    if shutdown {
        if let Err(e) = client.shutdown_server() {
            eprintln!("nbl-sat-client: shutdown failed: {e}");
            if exit == 0 {
                exit = 1;
            }
        } else {
            println!("c server acknowledged shutdown");
        }
    }
    exit
}

/// Fetches the server's pipeline metrics snapshot and prints the raw
/// `METRICS` response frame (header plus per-backend body lines) to stdout.
/// Returns `false` when the request failed.
fn print_metrics(client: &NblSatClient) -> bool {
    match client.metrics() {
        Ok(metrics) => {
            print!("{}", Frame::Metrics(metrics).encode());
            true
        }
        Err(e) => {
            eprintln!("nbl-sat-client: metrics failed: {e}");
            false
        }
    }
}

/// Solves `dimacs` through a full incremental round trip:
/// `HELLO` → `SESSION OPEN` → `ADDCLAUSES` → `ASSUME` → `POP` → `CLOSE`.
fn run_session(
    client: &NblSatClient,
    addr: &str,
    backend: &str,
    dimacs: &str,
    assumptions: &[i64],
) -> i32 {
    macro_rules! try_net {
        ($step:literal, $expr:expr) => {
            match $expr {
                Ok(value) => value,
                Err(e) => {
                    eprintln!("nbl-sat-client: {}: {e}", $step);
                    return 1;
                }
            }
        };
    }
    match try_net!("hello", client.hello()) {
        true => println!("c {addr} speaks the SESSION extension"),
        false => {
            eprintln!("nbl-sat-client: {addr} does not support sessions");
            return 1;
        }
    }
    let session = try_net!("open session", client.open_session(backend));
    println!("c session {} open on backend {backend}", session.id());
    let depth = try_net!("push clauses", session.add_clauses(dimacs));
    println!("c pushed one clause frame, depth {depth}");
    print!("c assuming");
    for lit in assumptions {
        print!(" {lit}");
    }
    println!();
    let job = try_net!("queue assume", session.assume(assumptions));
    println!("c queued as job {}", job.id());
    let outcome = try_net!("wait", job.wait());
    match outcome.verdict {
        WireVerdict::Satisfiable => println!("s SATISFIABLE"),
        WireVerdict::Unsatisfiable => println!("s UNSATISFIABLE"),
        WireVerdict::Unknown(cause) => {
            println!("c verdict cause: {cause:?}");
            println!("s UNKNOWN");
        }
    }
    if let Some(model) = &outcome.model {
        print!("v");
        for lit in model {
            print!(" {lit}");
        }
        println!(" 0");
    }
    if let Some(core) = &outcome.failed {
        print!("f");
        for lit in core {
            print!(" {lit}");
        }
        println!(" 0");
    }
    let depth = try_net!("pop", session.pop());
    println!("c popped back to depth {depth}");
    try_net!("close", session.close());
    println!("c session closed");
    outcome.verdict.exit_code()
}
