//! `nbl-sat-client` — solve a DIMACS `.cnf` file on a remote `nbl-satd`.
//!
//! ```text
//! nbl-sat-client [--addr HOST:PORT] [--backend NAME] [--seed N]
//!                [--wall-ms N] [--samples N] [--checks N]
//!                [--shutdown] [FILE.cnf]
//! ```
//!
//! Connects (retrying for a few seconds so scripts can race the server's
//! startup), submits the file, prints conventional DIMACS solver output
//! (`c`/`s`/`v` lines) and exits with the SAT-competition code: 10 for
//! SATISFIABLE, 20 for UNSATISFIABLE, 0 for UNKNOWN. With `--shutdown` the
//! server is asked to drain and exit after the solve (or immediately when no
//! file is given).

use nbl_net::{NblSatClient, SolveFrame, WireArtifacts, WireVerdict};
use std::time::Duration;

/// How long connect attempts retry before giving up.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

fn usage() -> ! {
    eprintln!(
        "usage: nbl-sat-client [--addr HOST:PORT] [--backend NAME] [--seed N] \
         [--wall-ms N] [--samples N] [--checks N] [--shutdown] [FILE.cnf]"
    );
    std::process::exit(2);
}

fn parse_u64_arg(value: Option<String>) -> u64 {
    match value.and_then(|v| v.parse().ok()) {
        Some(n) => n,
        None => usage(),
    }
}

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut addr = String::from("127.0.0.1:7878");
    let mut backend = String::from("cdcl");
    let mut seed = 2012u64;
    let mut wall_ms = None;
    let mut samples = None;
    let mut checks = None;
    let mut shutdown = false;
    let mut file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(value) => addr = value,
                None => usage(),
            },
            "--backend" => match args.next() {
                Some(value) => backend = value,
                None => usage(),
            },
            "--seed" => seed = parse_u64_arg(args.next()),
            "--wall-ms" => wall_ms = Some(parse_u64_arg(args.next())),
            "--samples" => samples = Some(parse_u64_arg(args.next())),
            "--checks" => checks = Some(parse_u64_arg(args.next())),
            "--shutdown" => shutdown = true,
            "--help" | "-h" => usage(),
            _ if file.is_none() && !arg.starts_with('-') => file = Some(arg),
            _ => usage(),
        }
    }

    let client = match NblSatClient::connect_with_retries(addr.as_str(), CONNECT_TIMEOUT) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("nbl-sat-client: cannot connect to {addr}: {e}");
            return 1;
        }
    };

    let mut exit = 0;
    if let Some(path) = file {
        let dimacs = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("nbl-sat-client: cannot read {path}: {e}");
                return 1;
            }
        };
        println!("c solving {path} remotely on {addr} with backend {backend}");
        let mut frame = SolveFrame::new(&backend, &dimacs);
        frame.seed = seed;
        frame.artifacts = WireArtifacts::Model;
        frame.wall_ms = wall_ms;
        frame.max_samples = samples;
        frame.max_checks = checks;
        let outcome = client.submit(frame).and_then(|job| {
            println!("c queued as job {}", job.id());
            job.wait()
        });
        exit = match outcome {
            Ok(outcome) => {
                match outcome.verdict {
                    WireVerdict::Satisfiable => println!("s SATISFIABLE"),
                    WireVerdict::Unsatisfiable => println!("s UNSATISFIABLE"),
                    WireVerdict::Unknown(cause) => {
                        println!("c verdict cause: {cause:?}");
                        println!("s UNKNOWN");
                    }
                }
                if let Some(model) = &outcome.model {
                    print!("v");
                    for lit in model {
                        print!(" {lit}");
                    }
                    println!(" 0");
                }
                // SAT-competition convention: 10 SAT, 20 UNSAT, 0 UNKNOWN.
                outcome.verdict.exit_code()
            }
            Err(e) => {
                eprintln!("nbl-sat-client: {e}");
                1
            }
        };
    }
    if shutdown {
        if let Err(e) = client.shutdown_server() {
            eprintln!("nbl-sat-client: shutdown failed: {e}");
            if exit == 0 {
                exit = 1;
            }
        } else {
            println!("c server acknowledged shutdown");
        }
    }
    exit
}
