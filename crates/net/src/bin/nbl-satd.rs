//! `nbl-satd` — the out-of-process NBL-SAT solving server.
//!
//! ```text
//! nbl-satd [--addr HOST:PORT] [--workers N]
//! ```
//!
//! Binds (default `127.0.0.1:7878`; use port 0 for an ephemeral port), prints
//! one `listening on <addr>` line to stdout so scripts can scrape the bound
//! address, then serves until a client sends `SHUTDOWN`.

use nbl_net::{NblSatServer, ServerConfig};
use std::io::Write as _;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: nbl-satd [--addr HOST:PORT] [--workers N]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut addr = String::from("127.0.0.1:7878");
    let mut config = ServerConfig::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(value) => addr = value,
                None => usage(),
            },
            "--workers" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(workers) => config = config.workers(workers),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let server = match NblSatServer::bind(&addr, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("nbl-satd: cannot bind {addr}: {e}");
            return ExitCode::from(1);
        }
    };
    println!("listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    server.wait();
    println!("shutdown complete");
    ExitCode::SUCCESS
}
