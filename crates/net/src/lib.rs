//! `nbl-net`: the wire layer of the NBL-SAT reproduction — an out-of-process
//! front end for the [`nbl_sat_core::SolveService`] job queue.
//!
//! The paper frames the NBL engine as a *coprocessor* you hand formulas to
//! and get verdicts back; this crate gives that shape a network seam. It has
//! three parts, all std-only (no external dependencies, no async runtime):
//!
//! * [`protocol`] — the line-delimited text codec: the [`Frame`] enum, a
//!   strict parser and an exact encoder. `SOLVE` frames carry the backend
//!   name, seed, budget caps, priority and an inline DIMACS body; responses
//!   stream `QUEUED`, `v`-model lines and `RESULT` verdicts, plus
//!   `CANCEL`/`STATUS`/`REFILL`/`METRICS`/`SHUTDOWN` control verbs mapping
//!   1:1 onto the service API.
//! * [`server`] — [`NblSatServer`]: a [`std::net::TcpListener`] accept loop;
//!   each connection runs a reader thread plus one waiter thread per
//!   in-flight job, so a single connection multiplexes many jobs and streams
//!   completions out of submission order.
//! * [`client`] — [`NblSatClient`]: a blocking client whose background
//!   reader demultiplexes the response stream into per-job mailboxes
//!   ([`RemoteJob`] tickets), usable from many threads over one connection.
//!
//! The protocol also speaks IPASIR-style *incremental sessions*: `SESSION
//! OPEN/ADDCLAUSES/ASSUME/POP/CLOSE` verbs pin one solver per session on the
//! server ([`nbl_sat_core::SessionHandle`]) and [`RemoteSession`] drives it
//! from the client, with failed-assumption cores streamed back as `f`-lines.
//! `HELLO` → `CAPS` lets clients probe for the extension before using it.
//!
//! The `nbl-satd` and `nbl-sat-client` binaries in `src/bin/` wrap the two
//! ends into runnable processes; both follow the SAT-competition exit-code
//! convention (10 satisfiable, 20 unsatisfiable, 0 unknown).
//!
//! ```no_run
//! use nbl_net::{NblSatClient, NblSatServer, ServerConfig, SolveFrame};
//!
//! let server = NblSatServer::bind("127.0.0.1:0", ServerConfig::new())?;
//! let client = NblSatClient::connect(server.local_addr())?;
//! let job = client.submit(SolveFrame::new("cdcl", "p cnf 2 2\n1 2 0\n-1 -2 0\n"))?;
//! assert!(job.wait()?.verdict.is_sat());
//! client.shutdown_server()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{ClientConfig, NblSatClient, NetError, RemoteJob, RemoteOutcome, RemoteSession};
pub use protocol::{
    Frame, ProtocolError, SolveFrame, WireArtifacts, WireBackendLatency, WireBacklog, WireCause,
    WireJobStatus, WireMetrics, WirePriority, WireStats, WireVerdict, MAX_BODY_LINES,
    MAX_LINE_BYTES,
};
pub use server::{NblSatServer, ServerConfig};
