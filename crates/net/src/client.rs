//! A blocking client for the `nbl-satd` wire protocol.
//!
//! [`NblSatClient`] owns one TCP connection. A background reader thread
//! demultiplexes the server's frame stream — completions arrive in whatever
//! order the jobs finish — into per-job mailboxes, so any number of threads
//! can hold [`RemoteJob`] tickets against one connection and block on their
//! own outcomes concurrently. All waits are condition-variable based and are
//! woken by connection loss, so a dying server answers every pending wait
//! with [`NetError::ConnectionClosed`] instead of hanging.
//!
//! Deadlines are configurable via [`ClientConfig`]: a connect timeout bounds
//! the TCP handshake, and a read timeout bounds every blocking wait (acks,
//! control replies, [`RemoteJob::wait`]) with [`NetError::TimedOut`]. The
//! read deadline is enforced on the waiting side — the reader thread keeps
//! draining the socket, so a wait that times out abandons nothing and the
//! frame is still collectable later.

use crate::protocol::{
    Frame, SolveFrame, WireBacklog, WireJobStatus, WireMetrics, WireStats, WireVerdict,
};
use crate::server::shutdown_stream;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle as ThreadHandle};
use std::time::{Duration, Instant};

/// Errors surfaced by the client.
#[derive(Debug)]
pub enum NetError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The connection closed (EOF or protocol desync) before the awaited
    /// frame arrived.
    ConnectionClosed,
    /// The configured read timeout elapsed before the awaited frame arrived.
    /// The connection is still alive; the wait can be retried.
    TimedOut,
    /// The server answered `ERR` for this request.
    Remote(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::ConnectionClosed => write!(f, "connection closed"),
            NetError::TimedOut => write!(f, "read timed out"),
            NetError::Remote(message) => write!(f, "server error: {message}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// A finished remote job: the verdict, the model when one was streamed, and
/// the completion rank on this connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteOutcome {
    /// The verdict of the `RESULT` frame.
    pub verdict: WireVerdict,
    /// The model `v`-line's literals (DIMACS-signed), when the job requested
    /// a model and was satisfiable.
    pub model: Option<Vec<i64>>,
    /// The job's `STATS` counters, when the `SOLVE` asked `stats=true`.
    pub stats: Option<WireStats>,
    /// The `f`-line's failed-assumption core (DIMACS-signed), when a
    /// `SESSION ASSUME` answered UNSAT under its assumptions. An empty
    /// vector means the session's clause database is UNSAT on its own.
    pub failed: Option<Vec<i64>>,
    /// 0-based rank of this completion among all completions this connection
    /// has received — lets callers observe out-of-order completion.
    pub arrival: u64,
}

/// The control-channel replies (`PONG`, `OK refill`, `BYE`) a request/response
/// verb waits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ControlReply {
    Pong,
    OkRefill,
    Bye,
}

#[derive(Default)]
struct ClientState {
    /// `QUEUED` acks, FIFO — submission order is preserved because `SOLVE`
    /// frames are serialised under the submit lock.
    queued: VecDeque<u64>,
    /// Completed jobs, by id, until their ticket collects them.
    outcomes: HashMap<u64, RemoteOutcome>,
    /// Models staged until the job's `RESULT` (the completion marker) lands.
    staged_models: HashMap<u64, Vec<i64>>,
    /// `STATS` counters staged until the job's `RESULT` lands.
    staged_stats: HashMap<u64, WireStats>,
    /// Failed-assumption cores staged until the job's `RESULT` lands.
    staged_failed: HashMap<u64, Vec<i64>>,
    /// `SESSIONOK` acks as `(session, depth)`, FIFO — like `queued`, exact
    /// pairing holds because session requests are serialised under the
    /// request lock.
    session_oks: VecDeque<(u64, u64)>,
    /// `CAPS` replies (the `sessions` flag), FIFO.
    caps: VecDeque<bool>,
    /// `INFO` replies, by job id, with the server's live queue gauges.
    infos: HashMap<u64, VecDeque<(WireJobStatus, Option<WireBacklog>)>>,
    /// `METRICS` snapshot replies, FIFO — exact pairing holds because
    /// metrics requests are serialised under the request lock.
    metrics: VecDeque<WireMetrics>,
    /// Job-scoped `ERR` frames, by job id.
    job_errors: HashMap<u64, String>,
    /// Connection-scoped `ERR -` frames.
    connection_errors: VecDeque<String>,
    /// Control-channel replies, FIFO.
    control: VecDeque<ControlReply>,
    /// Completions seen so far (source of [`RemoteOutcome::arrival`]).
    arrivals: u64,
    /// Set once the reader thread exits; wakes and fails every pending wait.
    closed: bool,
}

struct ClientShared {
    state: Mutex<ClientState>,
    changed: Condvar,
}

impl ClientShared {
    fn lock(&self) -> MutexGuard<'_, ClientState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks until `take` answers `Some`, the connection closes, or (with a
    /// timeout) the deadline passes.
    fn wait_for<T>(
        &self,
        timeout: Option<Duration>,
        mut take: impl FnMut(&mut ClientState) -> Option<Result<T, NetError>>,
    ) -> Result<T, NetError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut state = self.lock();
        loop {
            if let Some(result) = take(&mut state) {
                return result;
            }
            if state.closed {
                return Err(NetError::ConnectionClosed);
            }
            state = match deadline {
                None => self
                    .changed
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(NetError::TimedOut);
                    }
                    self.changed
                        .wait_timeout(state, deadline - now)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0
                }
            };
        }
    }
}

/// Connection deadlines for [`NblSatClient`]. The default has no deadlines,
/// matching the pre-existing blocking behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientConfig {
    /// Bounds the TCP handshake of [`NblSatClient::connect_with_config`].
    pub connect_timeout: Option<Duration>,
    /// Default deadline applied to every blocking wait on the connection
    /// (submit acks, control replies, [`RemoteJob::wait`]); exceeded waits
    /// answer [`NetError::TimedOut`].
    pub read_timeout: Option<Duration>,
}

impl ClientConfig {
    /// A config with no deadlines.
    pub fn new() -> Self {
        ClientConfig::default()
    }

    /// Sets the connect timeout.
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = Some(timeout);
        self
    }

    /// Sets the read timeout.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = Some(timeout);
        self
    }
}

/// A blocking `nbl-satd` client over one TCP connection.
///
/// ```no_run
/// use nbl_net::{NblSatClient, SolveFrame};
///
/// let client = NblSatClient::connect("127.0.0.1:7878")?;
/// let job = client.submit(SolveFrame::new("cdcl", "p cnf 2 2\n1 2 0\n-1 -2 0\n"))?;
/// let outcome = job.wait()?;
/// assert!(outcome.verdict.is_sat());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct NblSatClient {
    stream: TcpStream,
    writer: Mutex<BufWriter<TcpStream>>,
    /// Serialises every request that awaits an *uncorrelated* reply
    /// (`SOLVE`→`QUEUED`, `PING`→`PONG`, `REFILL`→`OK`, `SHUTDOWN`→`BYE`,
    /// and the connection-scoped `ERR -` rejections): at most one such
    /// request is ever outstanding, so FIFO pairing is exact and two
    /// threads can never swap each other's replies. Job-scoped frames
    /// (`RESULT`, `v`, `INFO`, `ERR <id>`) carry their id and need no
    /// serialisation.
    request_lock: Mutex<()>,
    shared: Arc<ClientShared>,
    reader_thread: Mutex<Option<ThreadHandle<()>>>,
    read_timeout: Option<Duration>,
}

impl fmt::Debug for NblSatClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NblSatClient")
            .field("peer", &self.stream.peer_addr().ok())
            .finish_non_exhaustive()
    }
}

impl NblSatClient {
    /// Connects to a running server with no deadlines.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        Self::connect_with_config(addr, ClientConfig::default())
    }

    /// Connects with the given deadlines: the handshake is bounded by
    /// `config.connect_timeout`, and every later blocking wait on the
    /// connection by `config.read_timeout`.
    pub fn connect_with_config<A: ToSocketAddrs>(
        addr: A,
        config: ClientConfig,
    ) -> std::io::Result<Self> {
        Self::from_stream(open_stream(addr, config.connect_timeout)?, config)
    }

    /// Connects, retrying for up to `timeout` while the server is still
    /// coming up (connection refused / reset / timed out). Permanent-looking
    /// errors — an unresolvable host name, an unreachable network — fail
    /// immediately instead of burning the whole timeout. Useful for smoke
    /// scripts that race the server's bind.
    pub fn connect_with_retries<A: ToSocketAddrs + Clone>(
        addr: A,
        timeout: Duration,
    ) -> std::io::Result<Self> {
        Self::connect_with_retries_and_config(addr, timeout, ClientConfig::default())
    }

    /// [`NblSatClient::connect_with_retries`] with explicit deadlines: each
    /// attempt's handshake is bounded by `config.connect_timeout`, and the
    /// retry loop as a whole by `timeout`.
    pub fn connect_with_retries_and_config<A: ToSocketAddrs + Clone>(
        addr: A,
        timeout: Duration,
        config: ClientConfig,
    ) -> std::io::Result<Self> {
        use std::io::ErrorKind;
        let deadline = Instant::now() + timeout;
        loop {
            match open_stream(addr.clone(), config.connect_timeout) {
                Ok(stream) => return Self::from_stream(stream, config),
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::ConnectionRefused
                            | ErrorKind::ConnectionReset
                            | ErrorKind::ConnectionAborted
                            | ErrorKind::TimedOut
                            | ErrorKind::WouldBlock
                    ) && Instant::now() < deadline =>
                {
                    thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn from_stream(stream: TcpStream, config: ClientConfig) -> std::io::Result<Self> {
        stream.set_nodelay(true).ok();
        let reader_stream = stream.try_clone()?;
        let writer = Mutex::new(BufWriter::new(stream.try_clone()?));
        let shared = Arc::new(ClientShared {
            state: Mutex::new(ClientState::default()),
            changed: Condvar::new(),
        });
        let reader_shared = Arc::clone(&shared);
        let reader_thread = thread::spawn(move || {
            reader_loop(reader_stream, &reader_shared);
        });
        Ok(NblSatClient {
            stream,
            writer,
            request_lock: Mutex::new(()),
            shared,
            reader_thread: Mutex::new(Some(reader_thread)),
            read_timeout: config.read_timeout,
        })
    }

    fn send(&self, frame: &Frame) -> std::io::Result<()> {
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        frame.write_to(&mut *writer)
    }

    /// Submits a job and blocks until the server's `QUEUED` ack assigns its
    /// id. The returned ticket observes only this job.
    pub fn submit(&self, solve: SolveFrame) -> Result<RemoteJob<'_>, NetError> {
        let _serialised = self
            .request_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.send(&Frame::Solve(solve))?;
        let id = self.shared.wait_for(self.read_timeout, |state| {
            if let Some(id) = state.queued.pop_front() {
                return Some(Ok(id));
            }
            // A SOLVE can be rejected before queueing (bad DIMACS body):
            // surface the connection-scoped ERR as this submit's failure.
            state
                .connection_errors
                .pop_front()
                .map(|message| Err(NetError::Remote(message)))
        })?;
        Ok(RemoteJob { client: self, id })
    }

    /// Liveness probe: sends `PING`, blocks for `PONG`.
    pub fn ping(&self) -> Result<(), NetError> {
        let _serialised = self
            .request_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.send(&Frame::Ping)?;
        self.wait_control(ControlReply::Pong)
    }

    /// Returns spent allowance to the server's shared pool; blocks for the
    /// `OK refill` ack.
    pub fn refill(
        &self,
        samples: Option<u64>,
        checks: Option<u64>,
        wall_ms: Option<u64>,
    ) -> Result<(), NetError> {
        let _serialised = self
            .request_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.send(&Frame::Refill {
            samples,
            checks,
            wall_ms,
        })?;
        self.wait_control(ControlReply::OkRefill)
    }

    /// Asks the server to wind down gracefully; blocks for `BYE` (which the
    /// server sends only after draining this connection's in-flight jobs).
    pub fn shutdown_server(&self) -> Result<(), NetError> {
        let _serialised = self
            .request_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.send(&Frame::Shutdown)?;
        self.wait_control(ControlReply::Bye)
    }

    fn wait_control(&self, expected: ControlReply) -> Result<(), NetError> {
        self.shared.wait_for(self.read_timeout, |state| {
            if let Some(reply) = state.control.pop_front() {
                return Some(if reply == expected {
                    Ok(())
                } else {
                    Err(NetError::Remote(format!(
                        "expected {expected:?} reply, got {reply:?}"
                    )))
                });
            }
            if let Some(message) = state.connection_errors.pop_front() {
                return Some(Err(NetError::Remote(message)));
            }
            None
        })
    }

    /// Capability probe: sends `HELLO`, blocks for `CAPS`, and returns
    /// whether the server speaks the `SESSION` extension. Servers predating
    /// `HELLO` answer `ERR -`, which surfaces as `Ok(false)` — so this is
    /// safe to use as a feature probe against any protocol generation.
    pub fn hello(&self) -> Result<bool, NetError> {
        let _serialised = self
            .request_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.send(&Frame::Hello)?;
        self.shared.wait_for(self.read_timeout, |state| {
            if let Some(sessions) = state.caps.pop_front() {
                return Some(Ok(sessions));
            }
            state.connection_errors.pop_front().map(|_| Ok(false))
        })
    }

    /// Asks the server for a point-in-time snapshot of its solve-pipeline
    /// metrics (queue gauges, verdict-cache and preprocessing counters,
    /// per-backend latency aggregates); sends `METRICS`, blocks for the
    /// `METRICS` response frame.
    pub fn metrics(&self) -> Result<WireMetrics, NetError> {
        let _serialised = self
            .request_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.send(&Frame::MetricsRequest)?;
        self.shared.wait_for(self.read_timeout, |state| {
            if let Some(metrics) = state.metrics.pop_front() {
                return Some(Ok(metrics));
            }
            state
                .connection_errors
                .pop_front()
                .map(|message| Err(NetError::Remote(message)))
        })
    }

    /// Opens an incremental solving session pinned to `backend` on the
    /// server; blocks for the `SESSIONOK` ack that assigns the session id.
    pub fn open_session(&self, backend: &str) -> Result<RemoteSession<'_>, NetError> {
        let _serialised = self
            .request_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.send(&Frame::SessionOpen {
            backend: backend.to_owned(),
        })?;
        let (id, _depth) = self.shared.wait_for(self.read_timeout, |state| {
            if let Some(ack) = state.session_oks.pop_front() {
                return Some(Ok(ack));
            }
            state
                .connection_errors
                .pop_front()
                .map(|message| Err(NetError::Remote(message)))
        })?;
        Ok(RemoteSession { client: self, id })
    }

    /// Blocks for the `SESSIONOK` ack of a session operation and returns the
    /// acked depth. Callers hold the request lock, so FIFO pairing is exact;
    /// the session id is still verified defensively.
    fn wait_session_ok(&self, session: u64) -> Result<u64, NetError> {
        self.shared.wait_for(self.read_timeout, |state| {
            if let Some((sid, depth)) = state.session_oks.pop_front() {
                return Some(if sid == session {
                    Ok(depth)
                } else {
                    Err(NetError::Remote(format!(
                        "SESSIONOK for unexpected session {sid}"
                    )))
                });
            }
            state
                .connection_errors
                .pop_front()
                .map(|message| Err(NetError::Remote(message)))
        })
    }

    /// Pops the oldest unconsumed connection-scoped `ERR -` message, if any.
    pub fn take_connection_error(&self) -> Option<String> {
        self.shared.lock().connection_errors.pop_front()
    }

    /// Completions received on this connection so far.
    pub fn completions_seen(&self) -> u64 {
        self.shared.lock().arrivals
    }
}

impl Drop for NblSatClient {
    fn drop(&mut self) {
        shutdown_stream(&self.stream);
        if let Some(handle) = self
            .reader_thread
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            let _ = handle.join();
        }
    }
}

/// A ticket for one remote job on a [`NblSatClient`] connection.
#[derive(Debug)]
pub struct RemoteJob<'a> {
    client: &'a NblSatClient,
    id: u64,
}

impl RemoteJob<'_> {
    /// The server-assigned job id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the job's `RESULT` (or job-scoped `ERR`) arrives, bounded
    /// by the connection's configured read timeout, if any.
    pub fn wait(&self) -> Result<RemoteOutcome, NetError> {
        self.wait_bounded(self.client.read_timeout)
    }

    /// Blocks like [`RemoteJob::wait`], but with an explicit deadline that
    /// overrides the connection's read timeout. On [`NetError::TimedOut`] the
    /// job is still in flight and the wait can be retried.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<RemoteOutcome, NetError> {
        self.wait_bounded(Some(timeout))
    }

    fn wait_bounded(&self, timeout: Option<Duration>) -> Result<RemoteOutcome, NetError> {
        let id = self.id;
        self.client.shared.wait_for(timeout, |state| {
            if let Some(outcome) = state.outcomes.remove(&id) {
                return Some(Ok(outcome));
            }
            state
                .job_errors
                .remove(&id)
                .map(|message| Err(NetError::Remote(message)))
        })
    }

    /// Non-blocking check: `Some` once the completion arrived.
    pub fn poll(&self) -> Option<Result<RemoteOutcome, NetError>> {
        let id = self.id;
        let mut state = self.client.shared.lock();
        if let Some(outcome) = state.outcomes.remove(&id) {
            return Some(Ok(outcome));
        }
        if let Some(message) = state.job_errors.remove(&id) {
            return Some(Err(NetError::Remote(message)));
        }
        if state.closed {
            return Some(Err(NetError::ConnectionClosed));
        }
        None
    }

    /// Sends `CANCEL` for this job. Fire-and-forget: the observable effect is
    /// the job's `RESULT ... s UNKNOWN cancelled` completion.
    pub fn cancel(&self) -> Result<(), NetError> {
        self.client.send(&Frame::Cancel { job: self.id })?;
        Ok(())
    }

    /// Queries the job's lifecycle stage over the wire (`STATUS` → `INFO`).
    pub fn status(&self) -> Result<WireJobStatus, NetError> {
        self.status_detailed().map(|(status, _backlog)| status)
    }

    /// Like [`RemoteJob::status`], but also returns the server's live queue
    /// gauges from the `INFO` answer (`None` when talking to a server that
    /// predates them).
    pub fn status_detailed(&self) -> Result<(WireJobStatus, Option<WireBacklog>), NetError> {
        self.client.send(&Frame::Status { job: self.id })?;
        let id = self.id;
        self.client
            .shared
            .wait_for(self.client.read_timeout, |state| {
                if let Some(info) = state.infos.get_mut(&id).and_then(VecDeque::pop_front) {
                    return Some(Ok(info));
                }
                // Peek, don't consume: the job-scoped ERR also answers a later
                // wait() on this ticket.
                state
                    .job_errors
                    .get(&id)
                    .map(|message| Err(NetError::Remote(message.clone())))
            })
    }
}

/// A handle on one incremental solving session of a [`NblSatClient`]
/// connection, mirroring the in-process
/// [`SessionHandle`](nbl_sat_core::SessionHandle) over the wire.
///
/// Clause pushes and pops are blocking round-trips ([`SESSIONOK` acks
/// carry the new depth), while [`RemoteSession::assume`] queues a solve and
/// hands back a [`RemoteJob`] ticket like [`NblSatClient::submit`] does —
/// so a slow solve never blocks interleaved one-shot traffic. Dropping the
/// handle without [`RemoteSession::close`] leaves the session open on the
/// server until the connection closes.
///
/// ```no_run
/// use nbl_net::NblSatClient;
///
/// let client = NblSatClient::connect("127.0.0.1:7878")?;
/// let session = client.open_session("cdcl")?;
/// session.add_clauses("1 2 0\n-1 -2 0\n")?;
/// let outcome = session.assume(&[1])?.wait()?;
/// assert!(outcome.verdict.is_sat());
/// session.close()?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct RemoteSession<'a> {
    client: &'a NblSatClient,
    id: u64,
}

impl<'a> RemoteSession<'a> {
    /// The server-assigned session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Pushes one frame of clauses (raw DIMACS clause lines; the `p cnf`
    /// header is optional) and returns the session's new push depth.
    pub fn add_clauses(&self, dimacs: &str) -> Result<u64, NetError> {
        let _serialised = self
            .client
            .request_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.client.send(&Frame::SessionAddClauses {
            session: self.id,
            body: dimacs.lines().map(str::to_owned).collect(),
        })?;
        self.client.wait_session_ok(self.id)
    }

    /// Queues a solve of the session under the given DIMACS-signed assumption
    /// literals with no per-call budget caps; blocks only for the `QUEUED`
    /// ack. The outcome's [`RemoteOutcome::failed`] carries the
    /// failed-assumption core on UNSAT answers.
    pub fn assume(&self, literals: &[i64]) -> Result<RemoteJob<'a>, NetError> {
        self.assume_with_budget(literals, None, None, None)
    }

    /// [`RemoteSession::assume`] with per-call budget caps (wall-clock
    /// milliseconds, noise samples, coprocessor checks).
    pub fn assume_with_budget(
        &self,
        literals: &[i64],
        wall_ms: Option<u64>,
        max_samples: Option<u64>,
        max_checks: Option<u64>,
    ) -> Result<RemoteJob<'a>, NetError> {
        let _serialised = self
            .client
            .request_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.client.send(&Frame::SessionAssume {
            session: self.id,
            literals: literals.to_vec(),
            wall_ms,
            max_samples,
            max_checks,
        })?;
        let id = self
            .client
            .shared
            .wait_for(self.client.read_timeout, |state| {
                if let Some(id) = state.queued.pop_front() {
                    return Some(Ok(id));
                }
                state
                    .connection_errors
                    .pop_front()
                    .map(|message| Err(NetError::Remote(message)))
            })?;
        Ok(RemoteJob {
            client: self.client,
            id,
        })
    }

    /// Pops the most recent clause frame and returns the new depth. Popping
    /// an empty session is a remote error.
    pub fn pop(&self) -> Result<u64, NetError> {
        let _serialised = self
            .client
            .request_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.client.send(&Frame::SessionPop { session: self.id })?;
        self.client.wait_session_ok(self.id)
    }

    /// Closes the session, releasing its pinned solver on the server; blocks
    /// for the ack. A still-running `assume` of this session finishes (and
    /// its completion streams) before the ack arrives.
    pub fn close(self) -> Result<(), NetError> {
        let _serialised = self
            .client
            .request_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.client
            .send(&Frame::SessionClose { session: self.id })?;
        self.client.wait_session_ok(self.id).map(|_depth| ())
    }
}

/// Opens the TCP stream, trying every resolved address; with a timeout each
/// handshake attempt is individually bounded.
fn open_stream<A: ToSocketAddrs>(
    addr: A,
    connect_timeout: Option<Duration>,
) -> std::io::Result<TcpStream> {
    match connect_timeout {
        None => TcpStream::connect(addr),
        Some(timeout) => {
            let mut last_error = None;
            for candidate in addr.to_socket_addrs()? {
                match TcpStream::connect_timeout(&candidate, timeout) {
                    Ok(stream) => return Ok(stream),
                    Err(e) => last_error = Some(e),
                }
            }
            Err(last_error.unwrap_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "address resolved to no candidates",
                )
            }))
        }
    }
}

fn reader_loop(stream: TcpStream, shared: &ClientShared) {
    let mut reader = BufReader::new(stream);
    loop {
        let frame = match Frame::read_from(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => break,
            Err(error) => {
                if error.is_recoverable() {
                    // Not expected from a well-behaved server; record and
                    // keep the stream alive.
                    let mut state = shared.lock();
                    state
                        .connection_errors
                        .push_back(format!("unparseable server frame: {error}"));
                    shared.changed.notify_all();
                    continue;
                }
                break;
            }
        };
        let mut state = shared.lock();
        match frame {
            Frame::Queued { job } => state.queued.push_back(job),
            Frame::Model { job, literals } => {
                state.staged_models.insert(job, literals);
            }
            Frame::Stats { job, stats } => {
                state.staged_stats.insert(job, stats);
            }
            Frame::Result { job, verdict } => {
                let model = state.staged_models.remove(&job);
                let stats = state.staged_stats.remove(&job);
                let failed = state.staged_failed.remove(&job);
                let arrival = state.arrivals;
                state.arrivals += 1;
                state.outcomes.insert(
                    job,
                    RemoteOutcome {
                        verdict,
                        model,
                        stats,
                        failed,
                        arrival,
                    },
                );
            }
            Frame::FailedAssumptions { job, literals } => {
                state.staged_failed.insert(job, literals);
            }
            Frame::Info {
                job,
                status,
                backlog,
            } => {
                state
                    .infos
                    .entry(job)
                    .or_default()
                    .push_back((status, backlog));
            }
            Frame::Metrics(metrics) => state.metrics.push_back(metrics),
            Frame::SessionOk { session, depth } => {
                state.session_oks.push_back((session, depth));
            }
            Frame::Caps { sessions } => state.caps.push_back(sessions),
            Frame::Pong => state.control.push_back(ControlReply::Pong),
            Frame::OkRefill => state.control.push_back(ControlReply::OkRefill),
            Frame::Bye => state.control.push_back(ControlReply::Bye),
            Frame::Error {
                job: Some(job),
                message,
            } => {
                state.job_errors.insert(job, message);
            }
            Frame::Error { job: None, message } => {
                state.connection_errors.push_back(message);
            }
            // Client-direction verbs from the server would be a server bug;
            // drop them rather than wedge the stream.
            Frame::Solve(_)
            | Frame::Cancel { .. }
            | Frame::Status { .. }
            | Frame::Refill { .. }
            | Frame::Ping
            | Frame::Hello
            | Frame::SessionOpen { .. }
            | Frame::SessionAddClauses { .. }
            | Frame::SessionAssume { .. }
            | Frame::SessionPop { .. }
            | Frame::SessionClose { .. }
            | Frame::MetricsRequest
            | Frame::Shutdown => {}
        }
        shared.changed.notify_all();
        drop(state);
    }
    let mut state = shared.lock();
    state.closed = true;
    shared.changed.notify_all();
}
