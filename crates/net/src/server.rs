//! The `nbl-satd` TCP server: an accept loop in front of one shared
//! [`SolveService`].
//!
//! Every connection gets a dedicated reader thread that parses frames off the
//! socket and maps them 1:1 onto the service API: `SOLVE` →
//! [`SolveService::submit_with_priority`], `CANCEL` → [`JobHandle::cancel`],
//! `STATUS` → [`JobHandle::status`], `REFILL` → the service's budget refills,
//! `SHUTDOWN` → a graceful drain of the whole server. Each submitted job also
//! gets a lightweight waiter thread that blocks on [`JobHandle::wait_ref`]
//! and streams the job's `v`/`RESULT` frames back the moment the outcome
//! lands — so one connection multiplexes any number of in-flight jobs and
//! completions arrive out of submission order when a later job finishes
//! first. All writers share one per-connection lock and write whole frames
//! under it, so concurrent completions interleave frame-by-frame, never
//! byte-by-byte.
//!
//! Malformed frames are answered with `ERR - <reason>` and the connection
//! keeps going; only a lost framing (oversized line or body declaration) or
//! an I/O error closes the connection. A closing connection cancels its still
//! unfinished jobs — an out-of-process client that vanishes must not keep
//! burning the pool's budget.
//!
//! # Sessions
//!
//! `SESSION OPEN` maps onto [`SolveService::open_session`]: the connection
//! owns a map of [`SessionHandle`]s keyed by server-assigned session ids.
//! Structural operations (`ADDCLAUSES`, `POP`, `CLOSE`) are served on the
//! reader thread — they queue behind any in-flight solve of the same session
//! and are acked with `SESSIONOK` carrying the new depth. `ASSUME` queues a
//! solve like `SOLVE` does: the `QUEUED` ack assigns a job id from a
//! dedicated high range (so one-shot ids never collide), a waiter thread
//! streams the completion (`v`-line, failed-assumption `f`-line, `RESULT`),
//! and `CANCEL` of that id raises the call's cancellation token. A closing
//! connection drops its sessions, which releases each pinned solver.

use crate::protocol::{Frame, SolveFrame, WireBacklog, WireVerdict};
use cnf::{dimacs, Literal};
use nbl_sat_core::{
    BackendRegistry, Budget, JobHandle, SessionCall, SessionHandle, SolveOutcome, SolveRequest,
    SolveService, SolveVerdict, DEFAULT_CACHE_CAPACITY,
};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::{self, JoinHandle as ThreadHandle};
use std::time::Duration;

/// How often the accept loop polls the stop flag between accepts.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// First job id handed to `SESSION ASSUME` solves. One-shot ids count up from
/// 0 and session ids count up from here, so the two ranges cannot collide on
/// a connection's wire.
const SESSION_JOB_BASE: u64 = 1 << 63;

/// Configuration of a [`NblSatServer`].
#[derive(Debug)]
pub struct ServerConfig {
    registry: BackendRegistry,
    workers: Option<usize>,
    budget: Budget,
    cache_capacity: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            registry: BackendRegistry::default(),
            workers: None,
            budget: Budget::unlimited(),
            cache_capacity: Some(DEFAULT_CACHE_CAPACITY),
        }
    }
}

impl ServerConfig {
    /// A configuration with the default backend registry, one worker per
    /// CPU, an unlimited shared budget, and the verdict cache enabled at
    /// [`DEFAULT_CACHE_CAPACITY`] entries.
    pub fn new() -> Self {
        ServerConfig::default()
    }

    /// Serves backends from (a cheap clone of) `registry` instead of the
    /// default one.
    pub fn registry(mut self, registry: &BackendRegistry) -> Self {
        self.registry = registry.clone();
        self
    }

    /// Sets the solve-service worker-pool size.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Sets the shared budget pool every job is charged against
    /// (refillable over the wire via `REFILL`).
    pub fn shared_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Resizes the verdict/model cache isomorphic resubmissions are answered
    /// from (default [`DEFAULT_CACHE_CAPACITY`] entries).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Disables the verdict/model cache: every submission dispatches to a
    /// backend (preprocessing still runs).
    pub fn no_cache(mut self) -> Self {
        self.cache_capacity = None;
        self
    }
}

/// Everything the accept loop and the connection threads share.
struct ServerShared {
    service: SolveService,
    /// Raised by `SHUTDOWN` frames and [`NblSatServer::stop`].
    stop: AtomicBool,
    stopped: Condvar,
    stopped_lock: Mutex<bool>,
}

impl ServerShared {
    fn request_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        let mut stopped = self
            .stopped_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *stopped = true;
        self.stopped.notify_all();
    }
}

/// The out-of-process solving server: a [`TcpListener`] accept loop in front
/// of a [`SolveService`].
///
/// ```no_run
/// use nbl_net::{NblSatServer, ServerConfig};
///
/// let server = NblSatServer::bind("127.0.0.1:0", ServerConfig::new())?;
/// println!("listening on {}", server.local_addr());
/// server.wait(); // blocks until a client sends SHUTDOWN (or stop() is called)
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct NblSatServer {
    shared: Arc<ServerShared>,
    local_addr: SocketAddr,
    accept_thread: Mutex<Option<ThreadHandle<()>>>,
}

impl std::fmt::Debug for NblSatServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NblSatServer")
            .field("local_addr", &self.local_addr)
            .field("stopping", &self.shared.stop.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl NblSatServer {
    /// Binds the listener (use port 0 for an ephemeral port), starts the
    /// solve service and the accept loop, and returns immediately.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let mut builder = SolveService::builder(&config.registry).shared_budget(config.budget);
        if let Some(workers) = config.workers {
            builder = builder.workers(workers);
        }
        if let Some(capacity) = config.cache_capacity {
            builder = builder.cache_capacity(capacity);
        }
        let shared = Arc::new(ServerShared {
            service: builder.start(),
            stop: AtomicBool::new(false),
            stopped: Condvar::new(),
            stopped_lock: Mutex::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::spawn(move || accept_loop(&listener, &accept_shared));
        Ok(NblSatServer {
            shared,
            local_addr,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The address the server is listening on (resolves port 0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The underlying solve service, for in-process observability (pending
    /// jobs, shared budget) alongside the wire interface.
    pub fn service(&self) -> &SolveService {
        &self.shared.service
    }

    /// Returns `true` once a `SHUTDOWN` frame or [`NblSatServer::stop`] has
    /// been seen.
    pub fn is_stopping(&self) -> bool {
        self.shared.stop.load(Ordering::Relaxed)
    }

    /// Blocks until the server is asked to stop (by a client's `SHUTDOWN`
    /// frame or a concurrent [`NblSatServer::stop`]), then joins the accept
    /// loop and drains the solve service.
    pub fn wait(&self) {
        let mut stopped = self
            .shared
            .stopped_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while !*stopped {
            stopped = self
                .shared
                .stopped
                .wait(stopped)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(stopped);
        self.finish();
    }

    /// Stops the server: no new connections are accepted, the accept loop is
    /// joined, and the solve service drains its accepted jobs. Idempotent.
    pub fn stop(&self) {
        self.shared.request_stop();
        self.finish();
    }

    fn finish(&self) {
        if let Some(handle) = self
            .accept_thread
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            let _ = handle.join();
        }
        self.shared.service.shutdown();
    }
}

impl Drop for NblSatServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                thread::spawn(move || {
                    // A connection failing to set up or desyncing tears down
                    // only itself.
                    let _ = serve_connection(stream, &shared);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
            }
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

/// The per-connection state shared between the reader thread and the per-job
/// waiter threads.
struct Connection {
    writer: Mutex<BufWriter<TcpStream>>,
    /// Every job this connection submitted, by id; entries live until the
    /// connection closes so `STATUS`/`CANCEL` keep working after completion.
    jobs: Mutex<HashMap<u64, Arc<JobHandle>>>,
    /// Every session this connection opened, by server-assigned id.
    sessions: Mutex<HashMap<u64, SessionHandle>>,
    /// Cancellation flags of `SESSION ASSUME` solves, by job id; `CANCEL`
    /// falls through to this map when the id is not a one-shot job.
    session_cancels: Mutex<HashMap<u64, Arc<AtomicBool>>>,
    /// The next `SESSION OPEN` ack's session id.
    next_session: AtomicU64,
    /// Offset above [`SESSION_JOB_BASE`] of the next `SESSION ASSUME` job id.
    next_session_job: AtomicU64,
    /// Jobs whose completion frame has not been written yet. `SHUTDOWN`
    /// drains this to zero before answering `BYE`, so `BYE` really is the
    /// connection's last frame.
    inflight: Mutex<usize>,
    drained: Condvar,
}

impl Connection {
    /// Called by a waiter thread after it wrote (or failed to write) its
    /// job's completion.
    fn completion_written(&self) {
        let mut inflight = self.inflight.lock().unwrap_or_else(PoisonError::into_inner);
        *inflight = inflight.saturating_sub(1);
        if *inflight == 0 {
            self.drained.notify_all();
        }
    }

    /// Blocks until every submitted job's completion frame has been written.
    fn drain_completions(&self) {
        let mut inflight = self.inflight.lock().unwrap_or_else(PoisonError::into_inner);
        while *inflight > 0 {
            inflight = self
                .drained
                .wait(inflight)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
    /// Writes one frame atomically with respect to other writers.
    fn send(&self, frame: &Frame) -> std::io::Result<()> {
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        frame.write_to(&mut *writer)
    }

    /// Writes a job's completion: the model `v`-line (when there is one) and
    /// the `STATS` line (when the job asked for it) immediately followed by
    /// the `RESULT` line, under one lock so the group never interleaves with
    /// another job's frames.
    fn send_completion(
        &self,
        job: u64,
        outcome: &SolveOutcome,
        want_stats: bool,
    ) -> std::io::Result<()> {
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(model) = &outcome.model {
            let literals = model
                .iter()
                .map(|(var, value)| {
                    let dimacs = (var.index() + 1) as i64;
                    if value {
                        dimacs
                    } else {
                        -dimacs
                    }
                })
                .collect();
            Frame::Model { job, literals }.write_to(&mut *writer)?;
        }
        if want_stats {
            Frame::Stats {
                job,
                stats: (&outcome.stats).into(),
            }
            .write_to(&mut *writer)?;
        }
        if let Some(core) = &outcome.failed_assumptions {
            let literals = core.iter().map(|lit| lit.to_dimacs()).collect();
            Frame::FailedAssumptions { job, literals }.write_to(&mut *writer)?;
        }
        let verdict = match outcome.verdict {
            SolveVerdict::Satisfiable => WireVerdict::Satisfiable,
            SolveVerdict::Unsatisfiable => WireVerdict::Unsatisfiable,
            SolveVerdict::Unknown(cause) => WireVerdict::Unknown(cause.into()),
        };
        Frame::Result { job, verdict }.write_to(&mut *writer)
    }

    fn send_error(&self, job: Option<u64>, message: impl Into<String>) -> std::io::Result<()> {
        let mut message = message.into();
        // ERR is a single-line frame; collapse anything that would break it.
        message.retain(|c| c != '\n' && c != '\r');
        if message.is_empty() {
            message.push_str("error");
        }
        self.send(&Frame::Error { job, message })
    }
}

fn serve_connection(stream: TcpStream, shared: &Arc<ServerShared>) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let reader_stream = stream.try_clone()?;
    let connection = Arc::new(Connection {
        writer: Mutex::new(BufWriter::new(stream)),
        jobs: Mutex::new(HashMap::new()),
        sessions: Mutex::new(HashMap::new()),
        session_cancels: Mutex::new(HashMap::new()),
        next_session: AtomicU64::new(1),
        next_session_job: AtomicU64::new(0),
        inflight: Mutex::new(0),
        drained: Condvar::new(),
    });
    let served = read_loop(reader_stream, &connection, shared);
    // The client is gone (or told to go): stop spending budget on its
    // unfinished jobs. This must run no matter how the read loop ended —
    // a write failing on a vanished client's socket included.
    let jobs = connection
        .jobs
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    for handle in jobs.values() {
        if handle.status() != nbl_sat_core::JobStatus::Finished {
            handle.cancel();
        }
    }
    drop(jobs);
    // Same for sessions: raise every in-flight ASSUME's cancel flag, then
    // drop the handles without joining — the pinned solver threads notice
    // the disconnect and release themselves.
    for flag in connection
        .session_cancels
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .values()
    {
        flag.store(true, Ordering::Relaxed);
    }
    connection
        .sessions
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
    served
}

fn read_loop(
    reader_stream: TcpStream,
    connection: &Arc<Connection>,
    shared: &Arc<ServerShared>,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(reader_stream);
    loop {
        match Frame::read_from(&mut reader) {
            Ok(None) => return Ok(()),
            Ok(Some(frame)) => {
                if !handle_frame(frame, connection, shared)? {
                    return Ok(());
                }
            }
            Err(error) => {
                let recoverable = error.is_recoverable();
                connection.send_error(None, error.to_string())?;
                if !recoverable {
                    return Ok(());
                }
            }
        }
    }
}

/// Dispatches one parsed frame. Returns `false` when the connection should
/// close (after `SHUTDOWN`).
fn handle_frame(
    frame: Frame,
    connection: &Arc<Connection>,
    shared: &Arc<ServerShared>,
) -> std::io::Result<bool> {
    match frame {
        Frame::Solve(solve) => handle_solve(solve, connection, shared)?,
        Frame::Cancel { job } => {
            let jobs = connection
                .jobs
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match jobs.get(&job) {
                Some(handle) => handle.cancel(),
                None => {
                    drop(jobs);
                    let cancels = connection
                        .session_cancels
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    match cancels.get(&job) {
                        Some(flag) => flag.store(true, Ordering::Relaxed),
                        None => {
                            drop(cancels);
                            connection.send_error(Some(job), format!("unknown job {job}"))?;
                        }
                    }
                }
            }
        }
        Frame::Status { job } => {
            let jobs = connection
                .jobs
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match jobs.get(&job) {
                Some(handle) => {
                    let status = handle.status().into();
                    drop(jobs);
                    connection.send(&Frame::Info {
                        job,
                        status,
                        backlog: Some(live_backlog(&shared.service)),
                    })?;
                }
                None => {
                    drop(jobs);
                    connection.send_error(Some(job), format!("unknown job {job}"))?;
                }
            }
        }
        Frame::MetricsRequest => {
            let snapshot = shared.service.metrics_snapshot();
            connection.send(&Frame::Metrics((&snapshot).into()))?;
        }
        Frame::Refill {
            samples,
            checks,
            wall_ms,
        } => {
            if let Some(samples) = samples {
                shared.service.refill_samples(samples);
            }
            if let Some(checks) = checks {
                shared.service.refill_checks(checks);
            }
            if let Some(ms) = wall_ms {
                shared.service.extend_deadline(Duration::from_millis(ms));
            }
            connection.send(&Frame::OkRefill)?;
        }
        Frame::Ping => connection.send(&Frame::Pong)?,
        Frame::Hello => connection.send(&Frame::Caps { sessions: true })?,
        Frame::SessionOpen { backend } => handle_session_open(&backend, connection, shared)?,
        Frame::SessionAddClauses { session, body } => {
            handle_session_add(session, &body, connection)?;
        }
        Frame::SessionAssume {
            session,
            literals,
            wall_ms,
            max_samples,
            max_checks,
        } => {
            let mut budget = Budget::unlimited();
            if let Some(ms) = wall_ms {
                budget = budget.with_wall_time(Duration::from_millis(ms));
            }
            if let Some(samples) = max_samples {
                budget = budget.with_max_samples(samples);
            }
            if let Some(checks) = max_checks {
                budget = budget.with_max_checks(checks);
            }
            handle_session_assume(session, &literals, budget, connection)?;
        }
        Frame::SessionPop { session } => handle_session_pop(session, connection)?,
        Frame::SessionClose { session } => {
            let handle = connection
                .sessions
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .remove(&session);
            match handle {
                // `close` joins the pinned solver thread, so the ack really
                // means the solver is gone. An in-flight ASSUME of the same
                // session finishes (and streams its completion) first.
                Some(handle) => {
                    handle.close();
                    connection.send(&Frame::SessionOk { session, depth: 0 })?;
                }
                None => connection.send_error(None, format!("unknown session {session}"))?,
            }
        }
        Frame::Shutdown => {
            // Graceful drain: every job this connection already submitted
            // still streams its completion, then BYE closes the exchange.
            // The stop flag is raised before BYE so that a client observing
            // the ack also observes the server stopping.
            connection.drain_completions();
            shared.request_stop();
            connection.send(&Frame::Bye)?;
            return Ok(false);
        }
        // Server-side verbs arriving at the server are grammar-valid but
        // direction-invalid; answer ERR like any other bad frame.
        Frame::Queued { .. }
        | Frame::Model { .. }
        | Frame::Result { .. }
        | Frame::Info { .. }
        | Frame::Stats { .. }
        | Frame::FailedAssumptions { .. }
        | Frame::SessionOk { .. }
        | Frame::Caps { .. }
        | Frame::Metrics(_)
        | Frame::OkRefill
        | Frame::Pong
        | Frame::Bye
        | Frame::Error { .. } => {
            connection.send_error(None, "server-direction verb sent by client")?;
        }
    }
    Ok(true)
}

fn handle_solve(
    solve: SolveFrame,
    connection: &Arc<Connection>,
    shared: &Arc<ServerShared>,
) -> std::io::Result<()> {
    let formula = match dimacs::parse_str(&solve.dimacs()) {
        Ok(formula) => formula,
        Err(e) => {
            return connection.send_error(None, format!("dimacs: {e}"));
        }
    };
    let request = SolveRequest::new(&formula)
        .artifacts(solve.artifacts.into())
        .seed(solve.seed)
        .budget(solve.budget());
    let handle = Arc::new(shared.service.submit_with_priority(
        &solve.backend,
        &request,
        solve.priority.into(),
    ));
    let job = handle.id();
    let want_stats = solve.stats;
    connection
        .jobs
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(job, Arc::clone(&handle));
    *connection
        .inflight
        .lock()
        .unwrap_or_else(PoisonError::into_inner) += 1;
    connection.send(&Frame::Queued { job })?;
    // One waiter thread per in-flight job streams the completion back the
    // moment it lands, independently of submission order.
    let connection = Arc::clone(connection);
    thread::spawn(move || {
        let result = handle.wait_ref();
        let written = match &result {
            Ok(outcome) => connection.send_completion(job, outcome, want_stats),
            Err(error) => connection.send_error(Some(job), error.to_string()),
        };
        // A send failing means the client is gone; the reader thread notices
        // the same condition and cleans up, nothing to do here.
        let _ = written;
        connection.completion_written();
    });
    Ok(())
}

fn handle_session_open(
    backend: &str,
    connection: &Arc<Connection>,
    shared: &Arc<ServerShared>,
) -> std::io::Result<()> {
    let handle = match shared.service.open_session(backend) {
        Ok(handle) => handle,
        Err(e) => return connection.send_error(None, e.to_string()),
    };
    let session = connection.next_session.fetch_add(1, Ordering::Relaxed);
    connection
        .sessions
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(session, handle);
    connection.send(&Frame::SessionOk { session, depth: 0 })
}

fn handle_session_add(
    session: u64,
    body: &[String],
    connection: &Arc<Connection>,
) -> std::io::Result<()> {
    // The body is raw DIMACS clause lines; the `p cnf` header is optional.
    let formula = match dimacs::parse_str(&body.join("\n")) {
        Ok(formula) => formula,
        Err(e) => return connection.send_error(None, format!("dimacs: {e}")),
    };
    let sessions = connection
        .sessions
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let Some(handle) = sessions.get(&session) else {
        drop(sessions);
        return connection.send_error(None, format!("unknown session {session}"));
    };
    let pushed = handle.push(&formula);
    drop(sessions);
    match pushed {
        Ok(depth) => connection.send(&Frame::SessionOk {
            session,
            depth: depth as u64,
        }),
        Err(e) => connection.send_error(None, e.to_string()),
    }
}

fn handle_session_pop(session: u64, connection: &Arc<Connection>) -> std::io::Result<()> {
    let sessions = connection
        .sessions
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let Some(handle) = sessions.get(&session) else {
        drop(sessions);
        return connection.send_error(None, format!("unknown session {session}"));
    };
    let popped = handle.pop();
    let depth = handle.depth();
    drop(sessions);
    match (popped, depth) {
        (Ok(true), Ok(depth)) => connection.send(&Frame::SessionOk {
            session,
            depth: depth as u64,
        }),
        (Ok(false), _) => {
            connection.send_error(None, format!("session {session} has no frame to pop"))
        }
        (Err(e), _) | (_, Err(e)) => connection.send_error(None, e.to_string()),
    }
}

fn handle_session_assume(
    session: u64,
    literals: &[i64],
    budget: Budget,
    connection: &Arc<Connection>,
) -> std::io::Result<()> {
    let mut assumptions = Vec::with_capacity(literals.len());
    for &value in literals {
        match Literal::from_dimacs(value) {
            Ok(lit) => assumptions.push(lit),
            Err(e) => return connection.send_error(None, format!("lits: {e}")),
        }
    }
    let cancel = Arc::new(AtomicBool::new(false));
    let call = SessionCall::new()
        .assumptions(assumptions)
        .budget(budget)
        .cancel_token(Arc::clone(&cancel));
    let sessions = connection
        .sessions
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let Some(handle) = sessions.get(&session) else {
        drop(sessions);
        return connection.send_error(None, format!("unknown session {session}"));
    };
    // `start_solve` only enqueues, so the reader thread stays responsive
    // even while the pinned solver is busy; the waiter thread below blocks.
    let solve = match handle.start_solve(&call) {
        Ok(solve) => solve,
        Err(e) => {
            drop(sessions);
            return connection.send_error(None, e.to_string());
        }
    };
    drop(sessions);
    let job = SESSION_JOB_BASE + connection.next_session_job.fetch_add(1, Ordering::Relaxed);
    connection
        .session_cancels
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(job, cancel);
    *connection
        .inflight
        .lock()
        .unwrap_or_else(PoisonError::into_inner) += 1;
    connection.send(&Frame::Queued { job })?;
    let connection = Arc::clone(connection);
    thread::spawn(move || {
        let result = solve.wait();
        let written = match &result {
            // Session solves always report stats: incremental clients (the
            // shard coordinator in particular) merge them fleet-wide.
            Ok(outcome) => connection.send_completion(job, outcome, true),
            Err(error) => connection.send_error(Some(job), error.to_string()),
        };
        let _ = written;
        connection.completion_written();
    });
    Ok(())
}

/// The service's live queue gauges, for `INFO` answers.
fn live_backlog(service: &SolveService) -> WireBacklog {
    let [high, normal, low] = service.pending_by_priority();
    WireBacklog {
        queue_depth: (high + normal + low) as u64,
        high: high as u64,
        normal: normal as u64,
        low: low as u64,
    }
}

/// Closes both directions of a stream, tolerating already-closed sockets.
/// Used by the client to deterministically unblock its reader thread.
pub(crate) fn shutdown_stream(stream: &TcpStream) {
    let _ = stream.shutdown(Shutdown::Both);
}
