//! Property and table-driven tests for the wire-protocol codec:
//! `parse(encode(frame)) == frame` over generated frames, and a malformed
//! corpus proving the strict parser errors — it never panics — on truncated
//! frames, oversized bodies, bad verbs and non-UTF-8 input.

use nbl_net::{
    Frame, ProtocolError, SolveFrame, WireArtifacts, WireBackendLatency, WireBacklog, WireCause,
    WireJobStatus, WireMetrics, WirePriority, WireStats, WireVerdict,
};
use proptest::prelude::*;
use std::io::Cursor;

const BACKENDS: &[&str] = &[
    "cdcl",
    "dpll",
    "brute-force",
    "nbl-symbolic",
    "nbl-sampled",
    "parallel-portfolio",
    "hybrid_sampled",
    "x",
];

/// Raw body lines the generator draws from: DIMACS-ish, empty, comments,
/// junk — the codec transports them verbatim either way.
const BODY_LINES: &[&str] = &[
    "p cnf 3 2",
    "1 -2 0",
    "-1 2 3 0",
    "c a comment",
    "",
    "%",
    "not dimacs at all",
    "  leading and trailing  ",
];

const WORDS: &[&str] = &["unknown", "backend", "job", "budget", "'minisat'", "42"];

const PRIORITIES: &[WirePriority] = &[WirePriority::Low, WirePriority::Normal, WirePriority::High];
const ARTIFACTS: &[WireArtifacts] = &[WireArtifacts::Verdict, WireArtifacts::Model];
const CAUSES: &[WireCause] = &[
    WireCause::Cancelled,
    WireCause::Incomplete,
    WireCause::BudgetWallClock,
    WireCause::BudgetSamples,
    WireCause::BudgetChecks,
];
const STATUSES: &[WireJobStatus] = &[
    WireJobStatus::Queued,
    WireJobStatus::Running,
    WireJobStatus::Finished,
];

type OptU64 = (bool, u64);

fn opt(flagged: OptU64) -> Option<u64> {
    let (present, value) = flagged;
    present.then_some(value)
}

#[allow(clippy::too_many_arguments)]
fn build_frame(
    variant: u8,
    job: u64,
    seed: u64,
    lits: Vec<(u64, bool)>,
    body: Vec<usize>,
    caps: (OptU64, OptU64, OptU64),
    backend: usize,
    selector: usize,
    words: Vec<usize>,
    scoped: bool,
) -> Frame {
    let literals: Vec<i64> = lits
        .iter()
        .map(|&(magnitude, negative)| {
            let lit = magnitude as i64;
            if negative {
                -lit
            } else {
                lit
            }
        })
        .collect();
    let (wall, samples, checks) = caps;
    match variant {
        0 => Frame::Solve(SolveFrame {
            backend: BACKENDS[backend].to_string(),
            seed,
            priority: PRIORITIES[selector % PRIORITIES.len()],
            artifacts: ARTIFACTS[selector % ARTIFACTS.len()],
            wall_ms: opt(wall),
            max_samples: opt(samples),
            max_checks: opt(checks),
            stats: selector.is_multiple_of(3),
            body: body.iter().map(|&i| BODY_LINES[i].to_string()).collect(),
        }),
        1 => Frame::Cancel { job },
        2 => Frame::Status { job },
        3 => {
            // REFILL needs at least one key; force one when all flags are off.
            let mut samples = opt(samples);
            if samples.is_none() && opt(checks).is_none() && opt(wall).is_none() {
                samples = Some(seed % 1000);
            }
            Frame::Refill {
                samples,
                checks: opt(checks),
                wall_ms: opt(wall),
            }
        }
        4 => Frame::Ping,
        5 => Frame::Shutdown,
        6 => Frame::Queued { job },
        7 => Frame::Model { job, literals },
        8 => {
            let verdict = match selector % 3 {
                0 => WireVerdict::Satisfiable,
                1 => WireVerdict::Unsatisfiable,
                _ => WireVerdict::Unknown(CAUSES[selector % CAUSES.len()]),
            };
            Frame::Result { job, verdict }
        }
        9 => Frame::Info {
            job,
            status: STATUSES[selector % STATUSES.len()],
            backlog: selector.is_multiple_of(2).then_some(WireBacklog {
                queue_depth: seed % 64,
                high: job % 8,
                normal: seed % 32,
                low: job % 5,
            }),
        },
        10 => Frame::OkRefill,
        11 => Frame::Pong,
        12 => Frame::Bye,
        13 => Frame::Stats {
            job,
            stats: WireStats {
                decisions: seed % 1009,
                conflicts: job % 97,
                propagations: seed % 7919,
                restarts: selector as u64,
                learned: job % 13,
                tried: seed % 65537,
                flips: job % 29,
                checks: seed % 3,
                samples: job % 11,
                wall_us: seed % 1_000_003,
                cache_hits: job % 2,
                pre_vars_removed: seed % 17,
                clauses_exported: seed % 257,
                clauses_imported: job % 127,
            },
        },
        14 => Frame::MetricsRequest,
        15 => Frame::Metrics(WireMetrics {
            queue_depth: seed % 128,
            backlog_high: job % 8,
            backlog_normal: seed % 64,
            backlog_low: job % 5,
            cache_hits: seed % 1009,
            cache_misses: job % 997,
            cache_evictions: seed % 31,
            cache_entries: job % 1024,
            pre_vars_removed: seed % 211,
            pre_clauses_removed: job % 499,
            pre_solved: seed % 23,
            budget_samples_spent: seed % 1_000_003,
            budget_checks_spent: job % 65_537,
            clauses_exported: seed % 4099,
            clauses_imported: job % 2053,
            backends: body
                .iter()
                .enumerate()
                .map(|(rank, &i)| WireBackendLatency {
                    name: format!("{}-{rank}", BACKENDS[i % BACKENDS.len()]),
                    count: seed % 100,
                    total_us: seed % 50_000,
                    max_us: job % 9_000,
                })
                .collect(),
        }),
        _ => Frame::Error {
            job: scoped.then_some(job),
            message: words
                .iter()
                .map(|&i| WORDS[i])
                .collect::<Vec<_>>()
                .join(" "),
        },
    }
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        (0u8..17, 0u64..10_000_000, 0u64..u64::MAX),
        proptest::collection::vec((1u64..100, proptest::bool::ANY), 0..8),
        proptest::collection::vec(0usize..BODY_LINES.len(), 0..6),
        (
            (proptest::bool::ANY, 0u64..100_000),
            (proptest::bool::ANY, 0u64..100_000),
            (proptest::bool::ANY, 0u64..100_000),
        ),
        (
            0usize..BACKENDS.len(),
            0usize..30,
            proptest::collection::vec(0usize..WORDS.len(), 1..5),
            proptest::bool::ANY,
        ),
    )
        .prop_map(
            |((variant, job, seed), lits, body, caps, (backend, selector, words, scoped))| {
                build_frame(
                    variant, job, seed, lits, body, caps, backend, selector, words, scoped,
                )
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The round-trip law: parsing an encoding yields the original frame and
    /// consumes the whole encoding.
    #[test]
    fn parse_encode_round_trip(frame in arb_frame()) {
        let text = frame.encode();
        let mut cursor = Cursor::new(text.clone());
        let parsed = Frame::read_from(&mut cursor)
            .map_err(|e| TestCaseError::fail(format!("parse failed for {text:?}: {e}")))?;
        prop_assert_eq!(parsed.as_ref(), Some(&frame));
        let eof = Frame::read_from(&mut cursor)
            .map_err(|e| TestCaseError::fail(format!("trailing parse failed: {e}")))?;
        prop_assert_eq!(eof, None);
    }

    /// Concatenated encodings parse back as the same sequence — frames are
    /// self-delimiting.
    #[test]
    fn frame_streams_are_self_delimiting(frames in proptest::collection::vec(arb_frame(), 1..6)) {
        let mut text = String::new();
        for frame in &frames {
            text.push_str(&frame.encode());
        }
        let mut cursor = Cursor::new(text);
        for expected in &frames {
            let parsed = Frame::read_from(&mut cursor)
                .map_err(|e| TestCaseError::fail(format!("stream parse failed: {e}")))?;
            prop_assert_eq!(parsed.as_ref(), Some(expected));
        }
        let eof = Frame::read_from(&mut cursor)
            .map_err(|e| TestCaseError::fail(format!("stream EOF failed: {e}")))?;
        prop_assert_eq!(eof, None);
    }
}

/// Whether a malformed input must be recoverable (`Malformed`: the stream is
/// still line-synchronised) or fatal (`Desync`).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Expect {
    Recoverable,
    Fatal,
}

#[test]
fn malformed_inputs_error_instead_of_panicking() {
    use Expect::*;
    let oversized_line = {
        let mut line = vec![b'a'; nbl_net::MAX_LINE_BYTES + 10];
        line.push(b'\n');
        line
    };
    let cases: Vec<(&str, Vec<u8>, Expect)> = vec![
        ("empty line", b"\n".to_vec(), Recoverable),
        ("unknown verb", b"FROB 1\n".to_vec(), Recoverable),
        ("lowercase verb", b"ping\n".to_vec(), Recoverable),
        ("bare SOLVE", b"SOLVE\n".to_vec(), Recoverable),
        (
            "SOLVE missing body-lines",
            b"SOLVE cdcl seed=1\n".to_vec(),
            Recoverable,
        ),
        (
            "SOLVE bad backend charset",
            b"SOLVE bad/name body-lines=0\n".to_vec(),
            Recoverable,
        ),
        (
            "SOLVE keyless token",
            b"SOLVE cdcl nokey body-lines=0\n".to_vec(),
            Recoverable,
        ),
        (
            "SOLVE unknown key",
            b"SOLVE cdcl frob=1 body-lines=0\n".to_vec(),
            Recoverable,
        ),
        (
            "SOLVE duplicate key",
            b"SOLVE cdcl seed=1 seed=2 body-lines=0\n".to_vec(),
            Recoverable,
        ),
        (
            "SOLVE body-lines not last",
            b"SOLVE cdcl body-lines=0 seed=1\n".to_vec(),
            Recoverable,
        ),
        (
            "SOLVE negative seed",
            b"SOLVE cdcl seed=-1 body-lines=0\n".to_vec(),
            Recoverable,
        ),
        (
            "SOLVE seed overflow",
            b"SOLVE cdcl seed=99999999999999999999 body-lines=0\n".to_vec(),
            Recoverable,
        ),
        (
            "SOLVE bad priority",
            b"SOLVE cdcl priority=urgent body-lines=0\n".to_vec(),
            Recoverable,
        ),
        (
            "SOLVE bad artifacts",
            b"SOLVE cdcl artifacts=cube body-lines=0\n".to_vec(),
            Recoverable,
        ),
        (
            "SOLVE bad stats value",
            b"SOLVE cdcl stats=maybe body-lines=0\n".to_vec(),
            Recoverable,
        ),
        (
            "SOLVE duplicate stats key",
            b"SOLVE cdcl stats=true stats=false body-lines=0\n".to_vec(),
            Recoverable,
        ),
        ("STATS without id", b"STATS\n".to_vec(), Recoverable),
        (
            "STATS unknown key",
            b"STATS 3 frobs=1\n".to_vec(),
            Recoverable,
        ),
        (
            "STATS duplicate key",
            b"STATS 3 flips=1 flips=2\n".to_vec(),
            Recoverable,
        ),
        (
            "STATS keyless token",
            b"STATS 3 flips\n".to_vec(),
            Recoverable,
        ),
        (
            "STATS negative counter",
            b"STATS 3 decisions=-4\n".to_vec(),
            Recoverable,
        ),
        (
            "SOLVE truncated body",
            b"SOLVE cdcl body-lines=3\np cnf 1 1\n".to_vec(),
            Fatal,
        ),
        (
            "SOLVE oversized body declaration",
            b"SOLVE cdcl body-lines=99999999\n".to_vec(),
            Fatal,
        ),
        (
            "SOLVE non-UTF8 body line",
            [
                b"SOLVE cdcl body-lines=1\n".as_slice(),
                &[0xff, 0xfe, b'\n'],
            ]
            .concat(),
            Recoverable,
        ),
        ("CANCEL without id", b"CANCEL\n".to_vec(), Recoverable),
        ("CANCEL negative id", b"CANCEL -3\n".to_vec(), Recoverable),
        (
            "CANCEL non-numeric id",
            b"CANCEL seven\n".to_vec(),
            Recoverable,
        ),
        (
            "CANCEL trailing token",
            b"CANCEL 1 2\n".to_vec(),
            Recoverable,
        ),
        (
            "CANCEL id overflow",
            b"CANCEL 99999999999999999999999\n".to_vec(),
            Recoverable,
        ),
        ("STATUS without id", b"STATUS\n".to_vec(), Recoverable),
        ("REFILL without keys", b"REFILL\n".to_vec(), Recoverable),
        (
            "REFILL unknown key",
            b"REFILL frob=1\n".to_vec(),
            Recoverable,
        ),
        (
            "REFILL duplicate key",
            b"REFILL samples=1 samples=2\n".to_vec(),
            Recoverable,
        ),
        ("PING with payload", b"PING 1\n".to_vec(), Recoverable),
        (
            "SHUTDOWN with payload",
            b"SHUTDOWN now\n".to_vec(),
            Recoverable,
        ),
        ("QUEUED without id", b"QUEUED\n".to_vec(), Recoverable),
        ("v without terminator", b"v 3 1 2\n".to_vec(), Recoverable),
        (
            "v tokens after terminator",
            b"v 3 1 0 2\n".to_vec(),
            Recoverable,
        ),
        ("v bad literal", b"v 3 one 0\n".to_vec(), Recoverable),
        (
            "RESULT bad verdict",
            b"RESULT 3 s MAYBE\n".to_vec(),
            Recoverable,
        ),
        (
            "RESULT missing s",
            b"RESULT 3 SATISFIABLE\n".to_vec(),
            Recoverable,
        ),
        (
            "RESULT UNKNOWN without cause",
            b"RESULT 3 s UNKNOWN\n".to_vec(),
            Recoverable,
        ),
        (
            "RESULT unknown cause",
            b"RESULT 3 s UNKNOWN frob\n".to_vec(),
            Recoverable,
        ),
        (
            "RESULT trailing token",
            b"RESULT 3 s SATISFIABLE yes\n".to_vec(),
            Recoverable,
        ),
        (
            "INFO unknown status",
            b"INFO 3 paused\n".to_vec(),
            Recoverable,
        ),
        (
            "INFO unknown gauge key",
            b"INFO 3 running frob=1\n".to_vec(),
            Recoverable,
        ),
        (
            "INFO duplicate gauge key",
            b"INFO 3 running backlog-low=1 backlog-low=2\n".to_vec(),
            Recoverable,
        ),
        (
            "INFO negative gauge",
            b"INFO 3 running queue-depth=-1\n".to_vec(),
            Recoverable,
        ),
        (
            "METRICS response without body-lines",
            b"METRICS cache-hits=1\n".to_vec(),
            Recoverable,
        ),
        (
            "METRICS body-lines not last",
            b"METRICS body-lines=0 cache-hits=1\n".to_vec(),
            Recoverable,
        ),
        (
            "METRICS unknown key",
            b"METRICS frob=1 body-lines=0\n".to_vec(),
            Recoverable,
        ),
        (
            "METRICS duplicate key",
            b"METRICS cache-hits=1 cache-hits=2 body-lines=0\n".to_vec(),
            Recoverable,
        ),
        (
            "METRICS bad body line verb",
            b"METRICS body-lines=1\nfrob cdcl count=1\n".to_vec(),
            Recoverable,
        ),
        (
            "METRICS body line unknown key",
            b"METRICS body-lines=1\nbackend cdcl frob=1\n".to_vec(),
            Recoverable,
        ),
        (
            "METRICS truncated body",
            b"METRICS body-lines=2\nbackend cdcl count=1\n".to_vec(),
            Fatal,
        ),
        (
            "METRICS oversized body declaration",
            b"METRICS body-lines=99999999\n".to_vec(),
            Fatal,
        ),
        ("OK without payload", b"OK\n".to_vec(), Recoverable),
        ("OK unknown payload", b"OK frob\n".to_vec(), Recoverable),
        ("BYE with payload", b"BYE bye\n".to_vec(), Recoverable),
        ("ERR without scope", b"ERR\n".to_vec(), Recoverable),
        ("ERR without message", b"ERR -\n".to_vec(), Recoverable),
        ("ERR bad scope", b"ERR x message\n".to_vec(), Recoverable),
        ("non-UTF8 frame line", vec![0xc3, 0x28, b'\n'], Recoverable),
        ("oversized line", oversized_line, Fatal),
    ];
    for (label, bytes, expect) in cases {
        let mut cursor = Cursor::new(bytes);
        let result = Frame::read_from(&mut cursor);
        let error = match result {
            Err(error) => error,
            Ok(frame) => panic!("{label}: expected an error, parsed {frame:?}"),
        };
        match expect {
            Expect::Recoverable => assert!(
                error.is_recoverable(),
                "{label}: expected recoverable, got {error}"
            ),
            Expect::Fatal => assert!(
                matches!(error, ProtocolError::Desync(_)),
                "{label}: expected desync, got {error}"
            ),
        }
    }
}

/// After a recoverable malformed line, the next frame on the stream parses
/// normally — the parser really is line-synchronised.
#[test]
fn parser_resynchronises_after_recoverable_errors() {
    let mut cursor = Cursor::new(b"FROB 1\nPING\n".to_vec());
    assert!(Frame::read_from(&mut cursor).unwrap_err().is_recoverable());
    assert_eq!(Frame::read_from(&mut cursor).unwrap(), Some(Frame::Ping));
    assert_eq!(Frame::read_from(&mut cursor).unwrap(), None);
}
