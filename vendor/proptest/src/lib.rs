//! Offline vendored stub of the `proptest` API subset this workspace uses.
//!
//! The build environment cannot reach crates.io, so this crate re-implements
//! just enough of proptest for the workspace's property tests: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, integer-range and
//! tuple strategies, [`collection::vec`], [`bool::ANY`], the [`proptest!`]
//! macro, `prop_assert!` family macros, and [`ProptestConfig`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case is reported with its case index and
//!   the seed, which is enough to reproduce it deterministically.
//! * **Fixed seeding.** Every run draws cases from a fixed per-runner seed,
//!   so statistical assertions in the test suite never flake.

#![deny(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Fixed base seed for every test runner: deterministic across runs and
/// platforms (satisfying this repo's "seed deterministic RNG in proptest
/// tests" requirement).
const BASE_SEED: u64 = 0x4E42_4C53_4154_2012; // "NBLSAT" ++ year of the DAC paper

/// The error type carried by a failing property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Result type returned by each property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator: the core abstraction of property testing.
///
/// Unlike real proptest there is no value tree / shrinking; a strategy simply
/// produces one value per case from the runner's deterministic RNG.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Produces one value for the current case.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Uses each generated value to build a second strategy, then draws from
    /// that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size bound for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy generating vectors whose length lies in `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drives a property over many generated cases, mirroring
/// `proptest::test_runner::TestRunner` (without shrinking).
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner with the given configuration.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `test` against `config.cases` generated inputs, panicking (with
    /// the case index and seed) on the first failure.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> TestCaseResult,
    {
        for case in 0..self.config.cases {
            // Derive a fresh, case-indexed RNG so each case is independently
            // reproducible from (BASE_SEED, case).
            let mut rng =
                StdRng::seed_from_u64(BASE_SEED ^ (case as u64).wrapping_mul(0x9E37_79B9));
            // Burn a word so consecutive case streams decorrelate.
            let _ = rng.next_u64();
            let value = strategy.generate(&mut rng);
            if let Err(err) = test(value) {
                panic!(
                    "proptest case {case}/{} failed (base seed {BASE_SEED:#x}): {err}",
                    self.config.cases
                );
            }
        }
    }
}

/// Everything a property test normally imports, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::bool as prop_bool;
    pub use crate::collection as prop_collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult, TestRunner,
    };
}

/// Asserts a condition inside a property test, returning a
/// [`TestCaseError`](crate::TestCaseError) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two values are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Asserts two values are not equal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Declares a block of property tests, mirroring `proptest::proptest!`.
///
/// Supports an optional leading `#![proptest_config(...)]` attribute and any
/// number of `fn name(pattern in strategy) { body }` items, each carrying its
/// own outer attributes (`#[test]`, doc comments, ...).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($pat:pat in $strategy:expr) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategy = $strategy;
                let mut runner = $crate::TestRunner::new($config);
                runner.run(&strategy, |$pat| {
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn vec_strategy_respects_size_bounds() {
        let strategy = crate::collection::vec(0usize..10, 2..=5);
        let mut runner = TestRunner::new(ProptestConfig::with_cases(200));
        runner.run(&strategy, |v| {
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
            Ok(())
        });
    }

    #[test]
    fn generation_is_deterministic_across_runners() {
        let strategy = crate::collection::vec((0usize..100, crate::bool::ANY), 1..=8);
        let collect = || {
            let mut out = Vec::new();
            TestRunner::new(ProptestConfig::with_cases(16)).run(&strategy, |v| {
                out.push(v);
                Ok(())
            });
            out
        };
        assert_eq!(collect(), collect());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro form compiles, runs, and supports early `return Ok(())`.
        #[test]
        fn macro_form_works((n, flag) in (1usize..50, crate::bool::ANY)) {
            if flag {
                return Ok(());
            }
            prop_assert!((1..50).contains(&n));
            prop_assert_eq!(n, n);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_case_info() {
        TestRunner::new(ProptestConfig::with_cases(8)).run(&(0usize..4), |n| {
            prop_assert!(n < 2, "value too large: {n}");
            Ok(())
        });
    }
}
