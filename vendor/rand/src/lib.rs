//! Offline vendored stub of the tiny `rand` API subset this workspace uses.
//!
//! The build environment has no network access to crates.io, so instead of
//! the real `rand` crate the workspace vendors this deterministic,
//! dependency-free re-implementation. It provides exactly the surface the
//! sources rely on: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — the same
//! bit-reproducible generator family the `nbl-noise` crate implements — not
//! the ChaCha-based generator of the real crate. All call sites in this
//! workspace seed explicitly via `seed_from_u64`, so determinism (rather than
//! bit-compatibility with upstream `rand`) is the contract.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of uniformly distributed random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator, mirroring the role
/// of `rand::distributions::Standard`.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift bounded sampling; bias is negligible for the
                // small spans used in this workspace.
                let v = (rng.next_u64() as u128 * span) >> 64;
                self.start + v as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let v = (rng.next_u64() as u128 * span) >> 64;
                start + v as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]` (matching the real `rand` crate, so
    /// swapping the stub for upstream later cannot change behavior here).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: probability {p} is not in [0, 1]"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=4);
            assert!(w <= 4);
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
