//! Offline vendored stub of the `criterion` API subset this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace's eight
//! bench targets link against this minimal harness instead of real Criterion.
//! It keeps the same source-level API — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], [`criterion_group!`] and
//! [`criterion_main!`] — but performs a warmup phase followed by a short
//! timing loop and prints one mean-time line per benchmark, with none of
//! Criterion's statistics, plotting, or CLI. Passing `--test` (as
//! `cargo test` does for `harness = false` bench targets) runs each benchmark
//! body exactly once as a smoke test, skipping the warmup.
//!
//! Two environment variables tune the loops without recompiling, so perf
//! comparisons can trade runtime for stability:
//!
//! * `CRITERION_SAMPLE_SIZE` — timed iterations per benchmark (default 10,
//!   clamped to 1..=100 000; overrides both the built-in default and any
//!   `sample_size` set in the bench source),
//! * `CRITERION_WARMUP_ITERS` — untimed warmup iterations run first (default
//!   `max(1, timed/5)`, clamped to 0..=100 000). The warmup populates caches
//!   and branch predictors so the timed loop does not pay cold-start costs.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

const MAX_ITERS: usize = 100_000;

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
    /// `Some` when `CRITERION_SAMPLE_SIZE` is set: overrides per-group
    /// `sample_size` calls too, so the env var always wins.
    sample_size_override: Option<usize>,
    warmup_override: Option<usize>,
}

impl Default for Criterion {
    fn default() -> Self {
        let sample_size_override =
            env_usize("CRITERION_SAMPLE_SIZE").map(|n| n.clamp(1, MAX_ITERS));
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
            sample_size: sample_size_override.unwrap_or(10),
            sample_size_override,
            warmup_override: env_usize("CRITERION_WARMUP_ITERS").map(|n| n.min(MAX_ITERS)),
        }
    }
}

impl Criterion {
    /// Applies command-line configuration. The stub only honors `--test`
    /// (already detected in [`Criterion::default`]), so this is a no-op kept
    /// for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Begins a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample_size = self.sample_size;
        self.run_one(&id.full_name(), sample_size, f);
        self
    }

    fn run_one<F>(&self, label: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if self.test_mode {
            // Smoke test: run the body exactly once, no warmup, no timing.
            let mut bencher = Bencher {
                iterations: 1,
                elapsed_nanos: 0.0,
            };
            f(&mut bencher);
            println!("test {label} ... ok");
            return;
        }
        let sample_size = self.sample_size_override.unwrap_or(sample_size);
        let warmup = self
            .warmup_override
            .unwrap_or_else(|| (sample_size / 5).max(1));
        if warmup > 0 {
            let mut warmup_bencher = Bencher {
                iterations: warmup as u64,
                elapsed_nanos: 0.0,
            };
            f(&mut warmup_bencher);
        }
        let mut bencher = Bencher {
            iterations: sample_size as u64,
            elapsed_nanos: 0.0,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed_nanos / bencher.iterations.max(1) as f64;
        println!(
            "bench {label}: {per_iter:.1} ns/iter ({} iters, {warmup} warmup)",
            bencher.iterations
        );
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timing iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.min(20));
        self
    }

    /// Benchmarks `f` under the given id within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.full_name());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&label, sample_size, f);
        self
    }

    /// Benchmarks `f`, passing it a borrowed input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group. The stub keeps no cross-group state, so this only
    /// exists for API compatibility.
    pub fn finish(self) {}
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: Some(function_name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_name(&self) -> String {
        match (&self.function_name, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("benchmark"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function_name: Some(name.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function_name: Some(name),
            parameter: None,
        }
    }
}

/// Times a closure over a fixed number of iterations, mirroring
/// `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed_nanos: f64,
}

impl Bencher {
    /// Runs `f` repeatedly, recording total elapsed wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed_nanos = start.elapsed().as_secs_f64() * 1e9;
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs one or more groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain(sample_size: usize) -> Criterion {
        Criterion {
            test_mode: false,
            sample_size,
            sample_size_override: None,
            warmup_override: None,
        }
    }

    #[test]
    fn group_benches_run_and_count_iterations() {
        let mut c = plain(4);
        let mut calls = 0u64;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(4);
            group.bench_function(BenchmarkId::new("f", 1), |b| {
                b.iter(|| calls += 1);
            });
            group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
                b.iter(|| black_box(x * 2));
            });
            group.finish();
        }
        // 4 timed iterations plus the default warmup of max(1, 4/5) = 1.
        assert_eq!(calls, 5);
    }

    #[test]
    fn test_mode_runs_each_bench_once() {
        let mut c = Criterion {
            test_mode: true,
            ..plain(10)
        };
        let mut calls = 0u64;
        c.bench_function("once", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn warmup_phase_runs_before_the_timed_loop() {
        let mut c = Criterion {
            warmup_override: Some(3),
            ..plain(10)
        };
        let mut calls = 0u64;
        c.bench_function("warm", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 3 + 10);
        // Warmup can be disabled entirely.
        let mut c = Criterion {
            warmup_override: Some(0),
            ..plain(6)
        };
        let mut calls = 0u64;
        c.bench_function("cold", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 6);
    }

    #[test]
    fn sample_size_override_beats_group_settings() {
        let mut c = Criterion {
            sample_size_override: Some(7),
            warmup_override: Some(0),
            ..plain(10)
        };
        let mut calls = 0u64;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3); // env override must win
            group.bench_function("f", |b| b.iter(|| calls += 1));
            group.finish();
        }
        assert_eq!(calls, 7);
    }

    #[test]
    fn env_variables_configure_the_loops() {
        std::env::set_var("CRITERION_SAMPLE_SIZE", "12");
        std::env::set_var("CRITERION_WARMUP_ITERS", "2");
        let c = Criterion::default();
        assert_eq!(c.sample_size_override, Some(12));
        assert_eq!(c.sample_size, 12);
        assert_eq!(c.warmup_override, Some(2));
        std::env::set_var("CRITERION_SAMPLE_SIZE", "0");
        assert_eq!(Criterion::default().sample_size_override, Some(1));
        std::env::set_var("CRITERION_SAMPLE_SIZE", "not a number");
        assert_eq!(Criterion::default().sample_size_override, None);
        std::env::remove_var("CRITERION_SAMPLE_SIZE");
        std::env::remove_var("CRITERION_WARMUP_ITERS");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).full_name(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").full_name(), "p");
        assert_eq!(BenchmarkId::from("plain").full_name(), "plain");
    }
}
