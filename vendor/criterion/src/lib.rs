//! Offline vendored stub of the `criterion` API subset this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace's eight
//! bench targets link against this minimal harness instead of real Criterion.
//! It keeps the same source-level API — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], [`criterion_group!`] and
//! [`criterion_main!`] — but performs a warmup phase followed by a short
//! timing loop and prints one mean-time line per benchmark, with none of
//! Criterion's statistics, plotting, or CLI. Passing `--test` (as
//! `cargo test` does for `harness = false` bench targets) runs each benchmark
//! body exactly once as a smoke test, skipping the warmup.
//!
//! Three environment variables tune the loops and the reporting without
//! recompiling, so perf comparisons can trade runtime for stability:
//!
//! * `CRITERION_SAMPLE_SIZE` — timed iterations per benchmark (default 10,
//!   clamped to 1..=100 000; overrides both the built-in default and any
//!   `sample_size` set in the bench source),
//! * `CRITERION_WARMUP_ITERS` — untimed warmup iterations run first (default
//!   `max(1, timed/5)`, clamped to 0..=100 000). The warmup populates caches
//!   and branch predictors so the timed loop does not pay cold-start costs.
//! * `CRITERION_SUMMARY_JSON` — path of a machine-readable summary file.
//!   When set, every finished benchmark appends one record (group, bench id,
//!   mean/min/max ns per iteration, timed iteration count, warmup count) to
//!   a JSON array at that path. The file is kept a *valid JSON array* across
//!   appends and across processes — each bench target re-reads the array and
//!   splices its record in — so CI can run several bench binaries in
//!   sequence and upload one `BENCH_summary.json` artifact.
//!
//! Per-iteration timing feeds the min/max spread: each call of the
//! [`Bencher::iter`] closure is timed individually (two `Instant` reads per
//! iteration — negligible against the µs-to-ms solver workloads benched
//! here), so the summary reports mean, best and worst iteration rather than
//! a bare average.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

const MAX_ITERS: usize = 100_000;

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
    /// `Some` when `CRITERION_SAMPLE_SIZE` is set: overrides per-group
    /// `sample_size` calls too, so the env var always wins.
    sample_size_override: Option<usize>,
    warmup_override: Option<usize>,
}

impl Default for Criterion {
    fn default() -> Self {
        let sample_size_override =
            env_usize("CRITERION_SAMPLE_SIZE").map(|n| n.clamp(1, MAX_ITERS));
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
            sample_size: sample_size_override.unwrap_or(10),
            sample_size_override,
            warmup_override: env_usize("CRITERION_WARMUP_ITERS").map(|n| n.min(MAX_ITERS)),
        }
    }
}

impl Criterion {
    /// Applies command-line configuration. The stub only honors `--test`
    /// (already detected in [`Criterion::default`]), so this is a no-op kept
    /// for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Begins a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample_size = self.sample_size;
        self.run_one(None, &id.full_name(), sample_size, f);
        self
    }

    fn run_one<F>(&self, group: Option<&str>, bench: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = match group {
            Some(group) => format!("{group}/{bench}"),
            None => bench.to_string(),
        };
        if self.test_mode {
            // Smoke test: run the body exactly once, no warmup, no timing.
            let mut bencher = Bencher::with_iterations(1);
            f(&mut bencher);
            println!("test {label} ... ok");
            return;
        }
        let sample_size = self.sample_size_override.unwrap_or(sample_size);
        let warmup = self
            .warmup_override
            .unwrap_or_else(|| (sample_size / 5).max(1));
        if warmup > 0 {
            let mut warmup_bencher = Bencher::with_iterations(warmup as u64);
            f(&mut warmup_bencher);
        }
        let mut bencher = Bencher::with_iterations(sample_size as u64);
        f(&mut bencher);
        let per_iter = bencher.elapsed_nanos / bencher.iterations.max(1) as f64;
        println!(
            "bench {label}: {per_iter:.1} ns/iter (min {:.1}, max {:.1}, {} iters, {warmup} warmup)",
            bencher.min_nanos, bencher.max_nanos, bencher.iterations
        );
        if let Ok(path) = std::env::var("CRITERION_SUMMARY_JSON") {
            if !path.is_empty() {
                let target = summary::bench_target();
                let record = summary::record(target.as_deref(), group, bench, &bencher, warmup);
                if let Err(e) = summary::append_record(std::path::Path::new(&path), &record) {
                    eprintln!("criterion stub: cannot write {path}: {e}");
                }
            }
        }
    }
}

/// The machine-readable `CRITERION_SUMMARY_JSON` report: hand-rolled JSON
/// (the workspace is offline — no serde), kept a valid array across appends
/// from any number of bench processes.
mod summary {
    use super::Bencher;
    use std::io::Write as _;
    use std::path::Path;

    /// Minimal JSON string escaping for the group/bench labels this stub
    /// produces (quotes, backslashes, control characters).
    fn escape(text: &str) -> String {
        let mut out = String::with_capacity(text.len());
        for c in text.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// The bench *target* name this process is running: the executable's
    /// file stem with cargo's trailing `-<16-hex>` disambiguator stripped
    /// (e.g. `sat_check-1a2b...` → `sat_check`).
    pub(super) fn bench_target() -> Option<String> {
        let exe = std::env::current_exe().ok()?;
        let stem = exe.file_stem()?.to_str()?.to_string();
        Some(strip_cargo_hash(&stem).to_string())
    }

    fn strip_cargo_hash(stem: &str) -> &str {
        match stem.rsplit_once('-') {
            Some((name, suffix))
                if suffix.len() == 16 && suffix.bytes().all(|b| b.is_ascii_hexdigit()) =>
            {
                name
            }
            _ => stem,
        }
    }

    /// Renders one benchmark's summary record as a JSON object.
    pub(super) fn record(
        target: Option<&str>,
        group: Option<&str>,
        bench: &str,
        bencher: &Bencher,
        warmup: usize,
    ) -> String {
        let iters = bencher.iterations.max(1);
        let mean = bencher.elapsed_nanos / iters as f64;
        let target = match target {
            Some(target) => format!("\"{}\"", escape(target)),
            None => "null".to_string(),
        };
        let group = match group {
            Some(group) => format!("\"{}\"", escape(group)),
            None => "null".to_string(),
        };
        format!(
            "{{\"target\":{target},\"group\":{group},\"bench\":\"{}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"iters\":{},\"warmup\":{warmup}}}",
            escape(bench),
            mean,
            bencher.min_nanos,
            bencher.max_nanos,
            bencher.iterations,
        )
    }

    /// Appends `record` to the JSON array at `path`, creating the file when
    /// missing and splicing into the existing array otherwise, so the file
    /// stays `[ {..}, {..} ]` no matter how many bench processes append.
    ///
    /// The read-splice-rewrite runs under an exclusive advisory lock on the
    /// summary file itself: concurrent appenders (bench targets run in
    /// parallel, and `bench_function` may be called from several threads)
    /// serialize on the lock instead of racing the read-modify-write and
    /// silently dropping each other's records.
    pub(super) fn append_record(path: &Path, record: &str) -> std::io::Result<()> {
        use std::io::{Read as _, Seek as _, SeekFrom};
        let mut file = std::fs::File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        file.lock()?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        // Non-UTF-8 garbage is treated like any other unrecognisable
        // content below: replaced by a fresh array.
        let existing = String::from_utf8(bytes).unwrap_or_default();
        let trimmed = existing.trim_end();
        let content = match trimmed.strip_suffix(']') {
            Some(head) if trimmed.starts_with('[') => {
                let head = head.trim_end();
                if head == "[" {
                    format!("[\n{record}\n]\n")
                } else {
                    format!("{head},\n{record}\n]\n")
                }
            }
            // Missing, empty or unrecognisable: start a fresh array.
            _ => format!("[\n{record}\n]\n"),
        };
        file.seek(SeekFrom::Start(0))?;
        file.set_len(0)?;
        file.write_all(content.as_bytes())
        // Dropping `file` closes it, releasing the advisory lock.
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Bencher;

        fn bencher(iters: u64, total: f64, min: f64, max: f64) -> Bencher {
            Bencher {
                iterations: iters,
                elapsed_nanos: total,
                min_nanos: min,
                max_nanos: max,
            }
        }

        #[test]
        fn record_renders_flat_json() {
            let b = bencher(3, 300.0, 80.0, 130.0);
            let record = record(Some("sat_check"), Some("sat_check"), "symbolic/6", &b, 1);
            assert_eq!(
                record,
                "{\"target\":\"sat_check\",\"group\":\"sat_check\",\"bench\":\"symbolic/6\",\
                 \"mean_ns\":100.0,\"min_ns\":80.0,\"max_ns\":130.0,\"iters\":3,\"warmup\":1}"
            );
            let ungrouped = record_for_none();
            assert!(ungrouped.starts_with("{\"target\":null,\"group\":null,"));
        }

        fn record_for_none() -> String {
            record(None, None, "plain \"x\"", &bencher(1, 5.0, 5.0, 5.0), 0)
        }

        #[test]
        fn cargo_hash_suffix_is_stripped_from_target_names() {
            assert_eq!(strip_cargo_hash("sat_check-0123456789abcdef"), "sat_check");
            assert_eq!(
                strip_cargo_hash("baseline_comparison-ABCDEF0123456789"),
                "baseline_comparison"
            );
            // Non-hash suffixes survive.
            assert_eq!(strip_cargo_hash("sat-check"), "sat-check");
            assert_eq!(strip_cargo_hash("plain"), "plain");
        }

        #[test]
        fn append_maintains_a_valid_array_across_calls() {
            let path = std::env::temp_dir().join(format!(
                "criterion_stub_summary_{}_{:?}.json",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_file(&path);
            append_record(&path, "{\"a\":1}").unwrap();
            append_record(&path, "{\"b\":2}").unwrap();
            append_record(&path, "{\"c\":3}").unwrap();
            let content = std::fs::read_to_string(&path).unwrap();
            assert_eq!(content, "[\n{\"a\":1},\n{\"b\":2},\n{\"c\":3}\n]\n");
            // Garbage is replaced by a fresh array rather than corrupted
            // further.
            std::fs::write(&path, "not json").unwrap();
            append_record(&path, "{\"d\":4}").unwrap();
            assert_eq!(std::fs::read_to_string(&path).unwrap(), "[\n{\"d\":4}\n]\n");
            let _ = std::fs::remove_file(&path);
        }

        #[test]
        fn concurrent_appends_do_not_lose_records() {
            // Hammer the same summary file from many threads: the advisory
            // lock must serialize the read-splice-rewrite so every record
            // survives and the file stays one valid array.
            let path = std::env::temp_dir().join(format!(
                "criterion_stub_summary_race_{}.json",
                std::process::id()
            ));
            let _ = std::fs::remove_file(&path);
            const THREADS: usize = 8;
            const APPENDS: usize = 25;
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    let path = &path;
                    scope.spawn(move || {
                        for i in 0..APPENDS {
                            append_record(path, &format!("{{\"t{t}\":{i}}}")).unwrap();
                        }
                    });
                }
            });
            let content = std::fs::read_to_string(&path).unwrap();
            assert!(content.starts_with("[\n"), "not an array: {content:.40}");
            assert!(content.ends_with("\n]\n"), "unterminated array");
            assert_eq!(content.matches('{').count(), THREADS * APPENDS);
            for t in 0..THREADS {
                for i in 0..APPENDS {
                    let record = format!("{{\"t{t}\":{i}}}");
                    assert_eq!(content.matches(&record).count(), 1, "lost {record}");
                }
            }
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timing iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.min(20));
        self
    }

    /// Benchmarks `f` under the given id within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion
            .run_one(Some(&self.name), &id.full_name(), sample_size, f);
        self
    }

    /// Benchmarks `f`, passing it a borrowed input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group. The stub keeps no cross-group state, so this only
    /// exists for API compatibility.
    pub fn finish(self) {}
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: Some(function_name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_name(&self) -> String {
        match (&self.function_name, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("benchmark"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function_name: Some(name.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function_name: Some(name),
            parameter: None,
        }
    }
}

/// Times a closure over a fixed number of iterations, mirroring
/// `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed_nanos: f64,
    min_nanos: f64,
    max_nanos: f64,
}

impl Bencher {
    fn with_iterations(iterations: u64) -> Self {
        Bencher {
            iterations,
            elapsed_nanos: 0.0,
            min_nanos: 0.0,
            max_nanos: 0.0,
        }
    }

    /// Runs `f` repeatedly, timing every iteration individually so the
    /// summary can report the mean, best and worst iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut total = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(f());
            let elapsed = start.elapsed().as_secs_f64() * 1e9;
            total += elapsed;
            min = min.min(elapsed);
            max = max.max(elapsed);
        }
        self.elapsed_nanos = total;
        self.min_nanos = if self.iterations == 0 { 0.0 } else { min };
        self.max_nanos = max;
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs one or more groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain(sample_size: usize) -> Criterion {
        Criterion {
            test_mode: false,
            sample_size,
            sample_size_override: None,
            warmup_override: None,
        }
    }

    #[test]
    fn group_benches_run_and_count_iterations() {
        let mut c = plain(4);
        let mut calls = 0u64;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(4);
            group.bench_function(BenchmarkId::new("f", 1), |b| {
                b.iter(|| calls += 1);
            });
            group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
                b.iter(|| black_box(x * 2));
            });
            group.finish();
        }
        // 4 timed iterations plus the default warmup of max(1, 4/5) = 1.
        assert_eq!(calls, 5);
    }

    #[test]
    fn test_mode_runs_each_bench_once() {
        let mut c = Criterion {
            test_mode: true,
            ..plain(10)
        };
        let mut calls = 0u64;
        c.bench_function("once", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn warmup_phase_runs_before_the_timed_loop() {
        let mut c = Criterion {
            warmup_override: Some(3),
            ..plain(10)
        };
        let mut calls = 0u64;
        c.bench_function("warm", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 3 + 10);
        // Warmup can be disabled entirely.
        let mut c = Criterion {
            warmup_override: Some(0),
            ..plain(6)
        };
        let mut calls = 0u64;
        c.bench_function("cold", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 6);
    }

    #[test]
    fn sample_size_override_beats_group_settings() {
        let mut c = Criterion {
            sample_size_override: Some(7),
            warmup_override: Some(0),
            ..plain(10)
        };
        let mut calls = 0u64;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3); // env override must win
            group.bench_function("f", |b| b.iter(|| calls += 1));
            group.finish();
        }
        assert_eq!(calls, 7);
    }

    #[test]
    fn env_variables_configure_the_loops() {
        std::env::set_var("CRITERION_SAMPLE_SIZE", "12");
        std::env::set_var("CRITERION_WARMUP_ITERS", "2");
        let c = Criterion::default();
        assert_eq!(c.sample_size_override, Some(12));
        assert_eq!(c.sample_size, 12);
        assert_eq!(c.warmup_override, Some(2));
        std::env::set_var("CRITERION_SAMPLE_SIZE", "0");
        assert_eq!(Criterion::default().sample_size_override, Some(1));
        std::env::set_var("CRITERION_SAMPLE_SIZE", "not a number");
        assert_eq!(Criterion::default().sample_size_override, None);
        std::env::remove_var("CRITERION_SAMPLE_SIZE");
        std::env::remove_var("CRITERION_WARMUP_ITERS");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).full_name(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").full_name(), "p");
        assert_eq!(BenchmarkId::from("plain").full_name(), "plain");
    }
}
