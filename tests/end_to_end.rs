//! End-to-end integration tests across the workspace crates: DIMACS input →
//! NBL transform → single-operation check → assignment extraction → classical
//! cross-validation.

use nbl_sat_repro::prelude::*;

const DIMACS_SAT: &str = "c paper section IV satisfiable instance\n\
p cnf 2 4\n1 2 0\n1 2 0\n1 -2 0\n-1 2 0\n";

const DIMACS_UNSAT: &str = "c paper section IV unsatisfiable instance\n\
p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n";

#[test]
fn dimacs_to_nbl_verdicts_match_the_paper() {
    let sat = cnf::dimacs::parse_str(DIMACS_SAT).unwrap();
    let unsat = cnf::dimacs::parse_str(DIMACS_UNSAT).unwrap();
    let mut checker = SatChecker::new(SymbolicEngine::new());
    assert_eq!(
        checker.check(&NblSatInstance::new(&sat).unwrap()).unwrap(),
        Verdict::Satisfiable
    );
    assert_eq!(
        checker
            .check(&NblSatInstance::new(&unsat).unwrap())
            .unwrap(),
        Verdict::Unsatisfiable
    );
}

#[test]
fn full_pipeline_dimacs_check_extract_verify() {
    let formula = cnf::dimacs::parse_str(DIMACS_SAT).unwrap();
    let instance = NblSatInstance::new(&formula).unwrap();

    // Algorithm 1 then Algorithm 2.
    let mut checker = SatChecker::new(SymbolicEngine::new());
    assert!(checker.check(&instance).unwrap().is_sat());
    let mut extractor = AssignmentExtractor::new(SymbolicEngine::new());
    let outcome = extractor.extract(&instance).unwrap();
    let model = outcome.assignment.unwrap();
    assert!(formula.evaluate(&model));
    assert_eq!(outcome.checks_used, formula.num_vars() as u64);

    // Cross-validate with every classical baseline.
    assert!(BruteForceSolver::new().solve(&formula).is_sat());
    assert!(DpllSolver::new().solve(&formula).is_sat());
    assert!(CdclSolver::new().solve(&formula).is_sat());
    let walksat_model = WalkSat::new().solve(&formula);
    assert!(formula.evaluate(walksat_model.model().unwrap()));

    // Round-trip the formula through DIMACS and re-check.
    let text = cnf::dimacs::to_string(&formula);
    let reparsed = cnf::dimacs::parse_str(&text).unwrap();
    assert_eq!(reparsed, formula);
}

#[test]
fn sampled_engine_end_to_end_on_paper_examples() {
    let formula = cnf::generators::example6_sat();
    let instance = NblSatInstance::new(&formula).unwrap();
    let config = EngineConfig::new()
        .with_seed(99)
        .with_max_samples(120_000)
        .with_check_interval(30_000);
    let mut extractor = AssignmentExtractor::new(SampledEngine::new(config));
    let outcome = extractor.extract(&instance).unwrap();
    assert!(formula.evaluate(&outcome.assignment.unwrap()));
}

#[test]
fn workload_generators_feed_every_solver_and_the_nbl_checker() {
    let registry = BackendRegistry::default();
    let workloads: Vec<(cnf::CnfFormula, bool)> = vec![
        (cnf::generators::pigeonhole(3, 3), true),
        (cnf::generators::pigeonhole(4, 3), false),
        (cnf::generators::parity_chain(4, false), true),
        (
            cnf::generators::graph_coloring(&cnf::generators::cycle_graph(5), 2),
            false,
        ),
        (cnf::generators::buggy_adder_miter(1, 0), true),
        (cnf::generators::adder_equivalence_miter(1), false),
    ];
    for (formula, expected_sat) in workloads {
        let request = SolveRequest::new(&formula).artifacts(Artifacts::Model);
        for backend in ["cdcl", "dpll"] {
            let outcome = registry.solve(backend, &request).unwrap();
            assert_eq!(
                outcome.verdict.is_sat(),
                expected_sat,
                "{backend} {formula}"
            );
            if let Some(model) = &outcome.model {
                assert!(formula.evaluate(model), "{backend} {formula}");
            }
        }
        if formula.num_vars() <= 14 {
            let outcome = registry.solve("nbl-symbolic", &request).unwrap();
            assert_eq!(
                outcome.verdict.is_sat(),
                expected_sat,
                "NBL disagreed on {formula}"
            );
        }
    }
}

#[test]
fn hybrid_backend_agrees_with_cdcl_across_workloads() {
    let registry = BackendRegistry::default();
    for seed in 0..10 {
        let formula = cnf::generators::random_ksat(
            &cnf::generators::RandomKSatConfig::new(8, 33, 3).with_seed(seed),
        )
        .unwrap();
        let request = SolveRequest::new(&formula).artifacts(Artifacts::Model);
        let hybrid = registry.solve("hybrid-symbolic", &request).unwrap();
        let cdcl = registry.solve("cdcl", &request).unwrap();
        assert_eq!(hybrid.verdict, cdcl.verdict, "seed {seed}");
        assert!(hybrid.verdict.is_definitive(), "seed {seed}");
        if let Some(m) = &hybrid.model {
            assert!(formula.evaluate(m));
        }
        assert!(hybrid.stats.coprocessor_checks > 0);
    }
}

#[test]
fn snr_model_matches_symbolic_engine_scale() {
    // The symbolic engine's single-minterm weight must equal the SNR model's
    // predicted mean for K = 1 across a range of instance shapes.
    let model = SnrModel::new();
    for (n, m) in [(1usize, 2usize), (2, 2), (2, 4), (3, 3)] {
        let formula = cnf::generators::random_ksat(
            &cnf::generators::RandomKSatConfig::new(n, m, 1.min(n)).with_seed(5),
        )
        .unwrap();
        let instance = NblSatInstance::new(&formula).unwrap();
        let engine = SymbolicEngine::new();
        assert!(
            (engine.minterm_weight(&instance) - model.predicted_mean(n, m, 1)).abs() < 1e-24,
            "n={n} m={m}"
        );
    }
}
