//! Cross-engine consistency: the three NBL engines (symbolic counting,
//! algebraic term expansion, Monte-Carlo sampling) and the classical solvers
//! must all tell the same story.

use nbl_sat_repro::prelude::*;

fn small_instances() -> Vec<cnf::CnfFormula> {
    vec![
        cnf::generators::example6_sat(),
        cnf::generators::example7_unsat(),
        cnf::generators::running_example(),
        cnf::generators::section4_sat_instance(),
        cnf::generators::section4_unsat_instance(),
        cnf::cnf_formula![[1], [-1, 2], [-2, 3]],
        cnf::cnf_formula![[1, 2, 3], [-1, -2, -3], [1, -2], [-1, 3]],
    ]
}

#[test]
fn symbolic_and_algebraic_engines_agree_exactly() {
    for formula in small_instances() {
        let instance = NblSatInstance::new(&formula).unwrap();
        let bindings = instance.empty_bindings();
        let s = SymbolicEngine::new()
            .estimate(&instance, &bindings)
            .unwrap()
            .mean;
        let a = AlgebraicEngine::new()
            .estimate(&instance, &bindings)
            .unwrap()
            .mean;
        assert!(
            (s - a).abs() <= 1e-15 * (1.0 + s.abs()),
            "{formula}: symbolic {s} vs algebraic {a}"
        );
    }
}

#[test]
fn sampled_engine_means_are_statistically_consistent_with_symbolic() {
    for (i, formula) in small_instances().into_iter().enumerate() {
        // Keep the Monte-Carlo budget sane: only instances with nm <= 8.
        if formula.num_vars() * formula.num_clauses() > 8 {
            continue;
        }
        let instance = NblSatInstance::new(&formula).unwrap();
        let bindings = instance.empty_bindings();
        let exact = SymbolicEngine::new()
            .estimate(&instance, &bindings)
            .unwrap()
            .mean;
        let config = EngineConfig::new()
            .with_seed(1000 + i as u64)
            .with_max_samples(300_000)
            .with_check_interval(300_000);
        let est = SampledEngine::new(config)
            .estimate(&instance, &bindings)
            .unwrap();
        assert!(
            (est.mean - exact).abs() < 6.0 * est.std_error.max(1e-12),
            "{formula}: sampled {} vs exact {exact}",
            est
        );
    }
}

#[test]
fn nbl_verdicts_match_every_classical_solver_on_random_instances() {
    for seed in 0..25 {
        let formula = cnf::generators::random_ksat(
            &cnf::generators::RandomKSatConfig::new(7, 29, 3).with_seed(seed),
        )
        .unwrap();
        let instance = NblSatInstance::new(&formula).unwrap();
        let nbl = SatChecker::new(SymbolicEngine::new())
            .check(&instance)
            .unwrap()
            .is_sat();
        assert_eq!(
            nbl,
            BruteForceSolver::new().solve(&formula).is_sat(),
            "seed {seed}"
        );
        assert_eq!(
            nbl,
            DpllSolver::new().solve(&formula).is_sat(),
            "seed {seed}"
        );
        assert_eq!(
            nbl,
            CdclSolver::new().solve(&formula).is_sat(),
            "seed {seed}"
        );
    }
}

#[test]
fn extraction_is_consistent_across_engines() {
    let formula = cnf::generators::section4_sat_instance();
    let instance = NblSatInstance::new(&formula).unwrap();

    let symbolic_model = AssignmentExtractor::new(SymbolicEngine::new())
        .extract(&instance)
        .unwrap()
        .assignment
        .unwrap();
    assert!(formula.evaluate(&symbolic_model));

    let algebraic_model = AssignmentExtractor::new(AlgebraicEngine::new())
        .extract(&instance)
        .unwrap()
        .assignment
        .unwrap();
    assert!(formula.evaluate(&algebraic_model));

    // Both exact engines walk the identical decision sequence, so the models agree.
    assert_eq!(symbolic_model, algebraic_model);
}

#[test]
fn binding_monotonicity_of_the_exact_mean() {
    // Binding a variable can only keep or reduce the number of satisfying
    // minterms in the τ subspace, so the exact mean never increases.
    for formula in small_instances() {
        let instance = NblSatInstance::new(&formula).unwrap();
        let mut engine = SymbolicEngine::new();
        let free_mean = engine
            .estimate(&instance, &instance.empty_bindings())
            .unwrap()
            .mean;
        for value in [false, true] {
            let mut bindings = instance.empty_bindings();
            bindings.assign(Variable::new(0), value);
            let bound_mean = engine.estimate(&instance, &bindings).unwrap().mean;
            assert!(
                bound_mean <= free_mean + 1e-18,
                "{formula}: bound {bound_mean} > free {free_mean}"
            );
        }
    }
}

#[test]
fn mean_is_proportional_to_the_number_of_satisfying_minterms() {
    // Experiment E5 in miniature: single-clause formulas over n variables where
    // the clause has exactly one literal have K = 2^(n-1) models, each
    // satisfying exactly one literal, so the exact mean is K · (1/12)^n.
    for n in 1..=4usize {
        let mut formula = cnf::CnfFormula::new(n);
        formula.add_clause([Literal::positive(Variable::new(0))]);
        let instance = NblSatInstance::new(&formula).unwrap();
        let mean = SymbolicEngine::new()
            .estimate(&instance, &instance.empty_bindings())
            .unwrap()
            .mean;
        let expected = (1u64 << (n - 1)) as f64 * (1.0f64 / 12.0).powi(n as i32);
        assert!(
            (mean - expected).abs() < 1e-15,
            "n={n}: {mean} vs {expected}"
        );
    }
}
