//! Workspace-level acceptance suite for the cooperative clause-sharing
//! portfolio: a default (shared) [`BackendRegistry`] against a
//! `racing_only` one, across every registered backend.
//!
//! Clause sharing only changes the `parallel-portfolio` backend, and there
//! only *how* members search — every imported clause is implied by the input
//! formula, so verdicts must be identical between the two registries and
//! must match the brute-force oracle (the PR 3 determinism contract:
//! verdicts seed-deterministic, attribution race-dependent). The stress test
//! at the bottom hammers the cooperative path repeatedly and is part of the
//! CI concurrency re-run (`RUST_TEST_THREADS=1`), where it proves the
//! sharing machinery also behaves when member threads are serialised onto
//! one core.

use cnf::EvalMode;
use nbl_sat_repro::prelude::*;
use nbl_sat_repro::solvers::SharingConfig;

fn registries() -> (BackendRegistry, BackendRegistry) {
    (
        // Default = cooperative sharing on.
        BackendRegistry::default(),
        BackendRegistry::with_modes(EvalMode::default(), SharingConfig::racing_only()),
    )
}

/// Corpus for polynomially-priced backends: the paper's worked examples,
/// seeded random 3-SAT around the phase transition, random 2-SAT, and two
/// pigeonhole rungs (UNSAT, the clause-learning regime where sharing
/// actually carries traffic).
fn full_corpus() -> Vec<CnfFormula> {
    let mut corpus = vec![
        cnf::generators::example6_sat(),
        cnf::generators::example7_unsat(),
        cnf::generators::section4_sat_instance(),
        cnf::generators::section4_unsat_instance(),
        cnf::generators::pigeonhole(3, 2),
        cnf::generators::pigeonhole(4, 3),
    ];
    for seed in 0..6 {
        corpus.push(
            cnf::generators::random_ksat(
                &cnf::generators::RandomKSatConfig::new(8, 34, 3).with_seed(seed),
            )
            .unwrap(),
        );
    }
    for seed in 0..3 {
        corpus.push(
            cnf::generators::random_ksat(
                &cnf::generators::RandomKSatConfig::new(6, 12, 2).with_seed(50 + seed),
            )
            .unwrap(),
        );
    }
    corpus
}

/// Reduced corpus for the engines whose cost scales with `2^{n·m}` (term
/// expansion, Monte-Carlo sampling): the paper's own worked examples.
fn paper_corpus() -> Vec<CnfFormula> {
    vec![
        cnf::generators::example6_sat(),
        cnf::generators::example7_unsat(),
    ]
}

fn exponential_in_nm(name: &str) -> bool {
    name.contains("sampled") || name.contains("algebraic")
}

fn oracle(formula: &CnfFormula) -> bool {
    BruteForceSolver::new().solve(formula).is_sat()
}

/// Every backend, shared registry vs racing registry vs the brute-force
/// oracle: definitive verdicts must agree three ways, and any model must
/// satisfy the formula.
#[test]
fn shared_and_racing_registries_agree_on_every_backend() {
    let (shared, racing) = registries();
    assert_eq!(shared.names(), racing.names());
    let full = full_corpus();
    let paper = paper_corpus();
    for name in shared.names() {
        let corpus = if exponential_in_nm(name) {
            &paper
        } else {
            &full
        };
        for (i, formula) in corpus.iter().enumerate() {
            let expected = oracle(formula);
            let request = SolveRequest::new(formula)
                .artifacts(Artifacts::Model)
                .seed(2012);
            let a = shared.solve(name, &request).unwrap();
            let b = racing.solve(name, &request).unwrap();
            assert_eq!(
                a.verdict, b.verdict,
                "{name} verdict diverged between shared and racing on instance {i}"
            );
            for (mode, outcome) in [("shared", &a), ("racing", &b)] {
                match outcome.verdict {
                    SolveVerdict::Satisfiable => {
                        assert!(expected, "{name}/{mode} claimed SAT on UNSAT instance {i}");
                        let model = outcome.model.as_ref().unwrap();
                        assert!(
                            formula.evaluate(model),
                            "{name}/{mode} model invalid on {i}"
                        );
                    }
                    SolveVerdict::Unsatisfiable => {
                        assert!(!expected, "{name}/{mode} claimed UNSAT on SAT instance {i}");
                    }
                    SolveVerdict::Unknown(_) => {}
                }
            }
        }
    }
}

/// The sharing counters surface through the facade: a cooperative
/// parallel-portfolio solve on a clause-learning workload reports exports in
/// its merged [`SolveStats`]; the racing registry reports none.
#[test]
fn sharing_counters_surface_in_solve_stats() {
    let (shared, racing) = registries();
    let formula = cnf::generators::pigeonhole(5, 4);
    let request = SolveRequest::new(&formula).seed(7);

    let cooperative = shared.solve("parallel-portfolio", &request).unwrap();
    assert_eq!(cooperative.verdict, SolveVerdict::Unsatisfiable);
    assert!(
        cooperative.stats.clauses_exported > 0,
        "cooperative solve exported no clauses: {:?}",
        cooperative.stats
    );

    let raced = racing.solve("parallel-portfolio", &request).unwrap();
    assert_eq!(raced.verdict, SolveVerdict::Unsatisfiable);
    assert_eq!(raced.stats.clauses_exported, 0);
    assert_eq!(raced.stats.clauses_imported, 0);
}

/// Sharing composes with both evaluation cores: the packed and scalar
/// cooperative registries return the same verdicts on the shared corpus.
#[test]
fn cooperative_portfolio_is_mode_invariant() {
    let scalar = BackendRegistry::with_modes(EvalMode::Scalar, SharingConfig::default());
    let packed = BackendRegistry::with_modes(EvalMode::Packed, SharingConfig::default());
    for (i, formula) in full_corpus().iter().enumerate() {
        let request = SolveRequest::new(formula)
            .artifacts(Artifacts::Model)
            .seed(3);
        let a = scalar.solve("parallel-portfolio", &request).unwrap();
        let b = packed.solve("parallel-portfolio", &request).unwrap();
        assert_eq!(a.verdict, b.verdict, "verdict diverged on instance {i}");
        for outcome in [&a, &b] {
            if let Some(model) = &outcome.model {
                assert!(formula.evaluate(model), "invalid model on instance {i}");
            }
        }
    }
}

/// Stress/acceptance for the CI concurrency re-run: repeated cooperative
/// solves across seeds — SAT and UNSAT, fresh pool every time — always match
/// the oracle, and UNSAT clause-learning runs keep carrying pool traffic.
#[test]
fn cooperative_portfolio_stress() {
    let registry = BackendRegistry::default();
    let mut exported_total = 0u64;
    for round in 0..8u64 {
        let formula = if round % 2 == 0 {
            cnf::generators::pigeonhole(4, 3)
        } else {
            cnf::generators::random_ksat(
                &cnf::generators::RandomKSatConfig::new(10, 42, 3).with_seed(round),
            )
            .unwrap()
        };
        let expected = oracle(&formula);
        let request = SolveRequest::new(&formula)
            .artifacts(Artifacts::Model)
            .seed(round);
        let outcome = registry.solve("parallel-portfolio", &request).unwrap();
        assert_eq!(
            outcome.verdict,
            if expected {
                SolveVerdict::Satisfiable
            } else {
                SolveVerdict::Unsatisfiable
            },
            "round {round} verdict wrong"
        );
        if let Some(model) = &outcome.model {
            assert!(formula.evaluate(model), "round {round} model invalid");
        }
        exported_total += outcome.stats.clauses_exported;
    }
    assert!(
        exported_total > 0,
        "eight cooperative rounds never exported a clause"
    );
}
