//! Workspace-level differential suite: a scalar-mode [`BackendRegistry`]
//! against a packed-mode one, across every registered backend.
//!
//! For deterministic backends the *entire observable outcome* — verdict,
//! model, cube, merged statistics (wall time excepted), trace and exhaustion
//! — must be bit-identical between the two evaluation cores. The parallel
//! portfolio races members on OS threads, so its winner is
//! timing-nondeterministic; there the suite checks the verdict and that any
//! model actually satisfies the formula.

use cnf::generators::{self, RandomKSatConfig};
use cnf::{CnfFormula, EvalMode};
use nbl_sat_core::solve::{Artifacts, BackendRegistry, SolveOutcome, SolveRequest};

fn registries() -> (BackendRegistry, BackendRegistry) {
    (
        BackendRegistry::with_eval_mode(EvalMode::Scalar),
        BackendRegistry::with_eval_mode(EvalMode::Packed),
    )
}

/// The paper's worked instances: small enough for every backend, including
/// the Monte-Carlo ones whose sample cost grows as `2^{n·m}`.
fn paper_instances() -> Vec<CnfFormula> {
    vec![
        generators::example6_sat(),
        generators::example7_unsat(),
        generators::section4_sat_instance(),
        generators::section4_unsat_instance(),
    ]
}

/// Random 3-SAT instances for the classical backends.
fn random_instances() -> Vec<CnfFormula> {
    (0..3u64)
        .map(|seed| {
            generators::random_ksat(&RandomKSatConfig::new(14, 50, 3).with_seed(seed)).unwrap()
        })
        .collect()
}

/// Solves `formula` on both registries and returns the two outcomes with
/// wall time scrubbed (the only field allowed to differ).
fn solve_both(backend: &str, formula: &CnfFormula, seed: u64) -> (SolveOutcome, SolveOutcome) {
    let (scalar, packed) = registries();
    let request = SolveRequest::new(formula)
        .seed(seed)
        .artifacts(Artifacts::Model);
    let mut a = scalar.solve(backend, &request).unwrap();
    let mut b = packed.solve(backend, &request).unwrap();
    a.stats.wall_time = std::time::Duration::ZERO;
    b.stats.wall_time = std::time::Duration::ZERO;
    (a, b)
}

fn assert_backend_modes_agree(backend: &str, instances: &[CnfFormula]) {
    for (i, formula) in instances.iter().enumerate() {
        for seed in [0u64, 17] {
            let (scalar, packed) = solve_both(backend, formula, seed);
            assert_eq!(
                scalar, packed,
                "{backend} diverged on instance {i} seed {seed}"
            );
        }
    }
}

#[test]
fn classical_backends_are_mode_invariant() {
    let mut instances = paper_instances();
    instances.extend(random_instances());
    for backend in [
        "brute-force",
        "dpll",
        "cdcl",
        "two-sat",
        "walksat",
        "gsat",
        "schoening",
        "portfolio",
    ] {
        assert_backend_modes_agree(backend, &instances);
    }
}

#[test]
fn exact_nbl_backends_are_mode_invariant() {
    for backend in ["nbl-symbolic", "nbl-algebraic", "hybrid-symbolic"] {
        assert_backend_modes_agree(backend, &paper_instances());
    }
}

#[test]
fn sampled_nbl_backends_are_mode_invariant() {
    // The packed convergence loop preserves the scalar loop's exact f64
    // stream, so even the statistical backends must agree bit for bit —
    // estimates, sample counts and verdicts alike.
    for backend in ["nbl-sampled", "hybrid-sampled"] {
        assert_backend_modes_agree(backend, &paper_instances());
    }
}

#[test]
fn parallel_portfolio_verdicts_are_mode_invariant() {
    // The race winner depends on thread scheduling, so stats and models may
    // legitimately differ between runs; the verdict may not, and any model
    // must satisfy the formula.
    let mut instances = paper_instances();
    instances.extend(random_instances());
    for formula in &instances {
        let (scalar, packed) = solve_both("parallel-portfolio", formula, 5);
        assert_eq!(scalar.verdict, packed.verdict, "verdict diverged");
        for outcome in [&scalar, &packed] {
            if let Some(model) = &outcome.model {
                assert!(formula.evaluate(model), "invalid model");
            }
        }
    }
}
