//! Cross-crate integration and property tests for the extended solver suite:
//! GSAT, Schöning, the polynomial 2-SAT solver, the portfolio and the MUS
//! extractor, all cross-validated against the exact oracles and the NBL-SAT
//! symbolic engine.

use nbl_sat_repro::nbl_sat::{NblSatInstance, SatChecker, SymbolicEngine};
use nbl_sat_repro::prelude::*;
use nbl_sat_repro::solvers::{MusOutcome, SchoeningConfig};
use proptest::prelude::*;

/// Strategy: a random CNF formula over `1..=max_vars` variables with clauses
/// of exactly `width` literals.
fn arb_fixed_width_formula(
    max_vars: usize,
    max_clauses: usize,
    width: usize,
) -> impl Strategy<Value = cnf::CnfFormula> {
    (2..=max_vars).prop_flat_map(move |n| {
        let clause = proptest::collection::vec((0..n, proptest::bool::ANY), width);
        proptest::collection::vec(clause, 1..=max_clauses).prop_map(move |clauses| {
            let mut formula = cnf::CnfFormula::new(n);
            for lits in clauses {
                formula.add_clause(
                    lits.into_iter()
                        .map(|(v, phase)| Literal::with_phase(Variable::new(v), phase)),
                );
            }
            formula
        })
    })
}

#[test]
fn all_solvers_agree_with_nbl_on_the_worked_examples() {
    let instances = [
        (cnf::generators::example6_sat(), true),
        (cnf::generators::example7_unsat(), false),
        (cnf::generators::section4_sat_instance(), true),
        (cnf::generators::section4_unsat_instance(), false),
    ];
    for (formula, expected_sat) in instances {
        let nbl = SatChecker::new(SymbolicEngine::new())
            .check(&NblSatInstance::new(&formula).unwrap())
            .unwrap();
        assert_eq!(nbl.is_sat(), expected_sat);
        assert_eq!(TwoSatSolver::new().solve(&formula).is_sat(), expected_sat);
        assert_eq!(Portfolio::new().solve(&formula).is_sat(), expected_sat);
        assert_eq!(CdclSolver::new().solve(&formula).is_sat(), expected_sat);
        // Incomplete solvers must find models of the satisfiable instances
        // and must never claim UNSAT.
        for result in [
            Gsat::new().solve(&formula),
            Schoening::new().solve(&formula),
            WalkSat::new().solve(&formula),
        ] {
            if expected_sat {
                assert!(result.is_sat());
            } else {
                assert!(!result.is_sat());
                assert!(!result.is_unsat());
            }
        }
    }
}

#[test]
fn unified_api_covers_the_worked_examples_across_backend_families() {
    // The same four paper instances as above, but dispatched through the
    // unified request/outcome API: one classical, one NBL and one hybrid
    // backend must tell the same story, including artifacts.
    let registry = BackendRegistry::default();
    let instances = [
        (cnf::generators::example6_sat(), true),
        (cnf::generators::example7_unsat(), false),
        (cnf::generators::section4_sat_instance(), true),
        (cnf::generators::section4_unsat_instance(), false),
    ];
    for (formula, expected_sat) in instances {
        let request = SolveRequest::new(&formula).artifacts(Artifacts::PrimeCube);
        for backend in ["cdcl", "nbl-symbolic", "hybrid-symbolic"] {
            let outcome = registry.solve(backend, &request).unwrap();
            assert_eq!(outcome.verdict.is_sat(), expected_sat, "{backend}");
            assert!(outcome.verdict.is_definitive(), "{backend}");
            if expected_sat {
                assert!(
                    formula.evaluate(outcome.model.as_ref().unwrap()),
                    "{backend}"
                );
                assert!(outcome.cube.unwrap().is_implicant_of(&formula), "{backend}");
            } else {
                assert!(outcome.model.is_none(), "{backend}");
            }
        }
    }
}

#[test]
fn mus_extraction_on_the_pigeonhole_family() {
    let formula = cnf::generators::pigeonhole(4, 3);
    let mut extractor = MusExtractor::new();
    let MusOutcome::Core(core) = extractor.extract(&formula) else {
        panic!("pigeonhole instances are unsatisfiable");
    };
    assert!(!core.is_empty());
    assert!(core.len() <= formula.num_clauses());
    // The core itself must be unsatisfiable.
    let core_formula = cnf::CnfFormula::from_clauses(
        formula.num_vars(),
        core.iter().map(|&i| formula.clauses()[i].clone()),
    );
    assert!(CdclSolver::new().solve(&core_formula).is_unsat());
    // ... and the NBL-SAT engine agrees it has no models.
    let verdict = SatChecker::new(SymbolicEngine::new())
        .check(&NblSatInstance::new(&core_formula).unwrap())
        .unwrap();
    assert!(!verdict.is_sat());
}

#[test]
fn schoening_walk_length_is_linear_in_n() {
    let formula = cnf::generators::pigeonhole(3, 2); // UNSAT, 6 variables
    let mut solver = Schoening::with_config(SchoeningConfig {
        max_restarts: 5,
        walk_length_factor: 3,
        seed: 0,
        ..SchoeningConfig::default()
    });
    assert!(!solver.solve(&formula).is_sat());
    assert_eq!(solver.stats().flips, 5 * 3 * formula.num_vars() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The polynomial 2-SAT solver agrees with DPLL on random 2-CNF, and its
    /// models verify.
    #[test]
    fn two_sat_agrees_with_dpll(formula in arb_fixed_width_formula(8, 14, 2)) {
        let fast = TwoSatSolver::new().solve(&formula);
        let exact = DpllSolver::new().solve(&formula);
        prop_assert_eq!(fast.is_sat(), exact.is_sat());
        if let SolveResult::Satisfiable(model) = fast {
            prop_assert!(formula.evaluate(&model));
        }
    }

    /// The portfolio is complete and agrees with brute force on small 3-CNF.
    #[test]
    fn portfolio_agrees_with_brute_force(formula in arb_fixed_width_formula(7, 12, 3)) {
        let portfolio = Portfolio::new().solve(&formula);
        let oracle = BruteForceSolver::new().solve(&formula);
        prop_assert_eq!(portfolio.is_sat(), oracle.is_sat());
        prop_assert_ne!(portfolio, SolveResult::Unknown);
    }

    /// Local-search models always verify, and local search never claims UNSAT.
    #[test]
    fn local_search_models_verify(formula in arb_fixed_width_formula(8, 16, 3)) {
        for result in [Gsat::new().solve(&formula), Schoening::new().solve(&formula)] {
            prop_assert!(!result.is_unsat());
            if let SolveResult::Satisfiable(model) = result {
                prop_assert!(formula.evaluate(&model));
            }
        }
    }

    /// Every MUS is unsatisfiable and minimal (removing any clause makes it SAT),
    /// and extraction returns `Satisfiable` exactly on satisfiable formulas.
    #[test]
    fn mus_cores_are_minimal_and_unsat(formula in arb_fixed_width_formula(5, 9, 2)) {
        let satisfiable = BruteForceSolver::new().solve(&formula).is_sat();
        let mut extractor = MusExtractor::new();
        match extractor.extract(&formula) {
            MusOutcome::Satisfiable => prop_assert!(satisfiable),
            MusOutcome::Core(core) => {
                prop_assert!(!satisfiable);
                let subset = |indices: &[usize]| {
                    cnf::CnfFormula::from_clauses(
                        formula.num_vars(),
                        indices.iter().map(|&i| formula.clauses()[i].clone()),
                    )
                };
                prop_assert!(CdclSolver::new().solve(&subset(&core)).is_unsat());
                for skip in 0..core.len() {
                    let reduced: Vec<usize> = core
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != skip)
                        .map(|(_, &c)| c)
                        .collect();
                    prop_assert!(CdclSolver::new().solve(&subset(&reduced)).is_sat());
                }
            }
        }
    }
}
