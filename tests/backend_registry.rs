//! Acceptance suite for the unified solving API: every backend in the
//! default registry must (a) agree with the brute-force oracle on a seeded
//! battery of small SAT/UNSAT instances under a default budget, and (b)
//! return `Unknown(BudgetExhausted)` — not hang — under a tight budget on a
//! hard instance.

use nbl_sat_repro::prelude::*;
use std::time::Duration;

/// Shared battery for backends whose cost scales polynomially (or is
/// exponential only in `n`): paper instances plus seeded random 3-SAT around
/// the phase transition and random 2-SAT (so `two-sat` gets in-scope work).
fn full_battery() -> Vec<CnfFormula> {
    let mut battery = vec![
        cnf::generators::example6_sat(),
        cnf::generators::example7_unsat(),
        cnf::generators::section4_sat_instance(),
        cnf::generators::section4_unsat_instance(),
        cnf::generators::pigeonhole(3, 2),
    ];
    for seed in 0..10 {
        battery.push(
            cnf::generators::random_ksat(
                &cnf::generators::RandomKSatConfig::new(6, 26, 3).with_seed(seed),
            )
            .unwrap(),
        );
    }
    for seed in 0..5 {
        battery.push(
            cnf::generators::random_ksat(
                &cnf::generators::RandomKSatConfig::new(6, 12, 2).with_seed(100 + seed),
            )
            .unwrap(),
        );
    }
    battery
}

/// Reduced battery for the engines whose cost scales with `2^{n·m}` (the
/// algebraic term expansion and the sampled engines' §III.F sample count):
/// exactly the paper's worked examples, which is the regime the paper itself
/// validates them in.
fn paper_battery() -> Vec<CnfFormula> {
    vec![
        cnf::generators::example6_sat(),
        cnf::generators::example7_unsat(),
    ]
}

/// `true` for backends whose per-instance cost scales with `2^{n·m}`.
fn exponential_in_nm(name: &str) -> bool {
    name.contains("sampled") || name.contains("algebraic")
}

fn expected_verdict(formula: &CnfFormula) -> bool {
    BruteForceSolver::new().solve(formula).is_sat()
}

#[test]
fn default_registry_exposes_at_least_nine_backends() {
    let registry = BackendRegistry::default();
    assert!(
        registry.len() >= 9,
        "expected >= 9 backends, got {:?}",
        registry.names()
    );
}

#[test]
fn every_backend_agrees_with_brute_force_on_the_battery() {
    let registry = BackendRegistry::default();
    let full = full_battery();
    let paper = paper_battery();
    for name in registry.names() {
        let battery = if exponential_in_nm(name) {
            &paper
        } else {
            &full
        };
        let mut backend = registry.create(name).unwrap();
        for (i, formula) in battery.iter().enumerate() {
            let expected = expected_verdict(formula);
            let request = SolveRequest::new(formula)
                .artifacts(Artifacts::PrimeCube)
                .seed(2012);
            let outcome = backend
                .solve(&request)
                .unwrap_or_else(|e| panic!("{name} on instance {i}: {e}"));
            // Definitive answers must be correct, with verifying artifacts.
            match outcome.verdict {
                SolveVerdict::Satisfiable => {
                    assert!(expected, "{name} claimed SAT on UNSAT instance {i}");
                    let model = outcome
                        .model
                        .as_ref()
                        .unwrap_or_else(|| panic!("{name} returned no model on instance {i}"));
                    assert!(formula.evaluate(model), "{name} model invalid on {i}");
                    let cube = outcome.cube.as_ref().expect("cube requested");
                    assert!(
                        cube.is_implicant_of(formula),
                        "{name} cube not an implicant on {i}"
                    );
                }
                SolveVerdict::Unsatisfiable => {
                    assert!(!expected, "{name} claimed UNSAT on SAT instance {i}");
                }
                SolveVerdict::Unknown(cause) => {
                    assert!(
                        !backend.is_complete(),
                        "complete backend {name} answered Unknown ({cause}) on instance {i}"
                    );
                    // Default budgets are unlimited: Unknown must come from
                    // genuine incompleteness, never from the budget.
                    assert_eq!(outcome.verdict.exhausted_resource(), None, "{name} on {i}");
                }
            }
            // Complete backends must always be definitive under an unlimited
            // budget; 2-SAT must be definitive within its 2-CNF scope.
            if backend.is_complete() {
                assert!(outcome.verdict.is_definitive(), "{name} on instance {i}");
            }
            if name == "two-sat" && formula.iter().all(|c| c.len() <= 2) {
                assert!(
                    outcome.verdict.is_definitive(),
                    "two-sat must decide 2-CNF instance {i}"
                );
            }
        }
    }
}

/// Per-family tight budget that must interrupt the given hard instance.
fn tight_case(name: &str) -> (CnfFormula, Budget) {
    match name {
        // Exact NBL checks: a zero check allowance trips before any work.
        "nbl-symbolic" | "nbl-algebraic" => (
            cnf::generators::pigeonhole(4, 3),
            Budget::unlimited().with_max_checks(0),
        ),
        // Monte-Carlo check: a 200-sample allowance is far below the §IV
        // convergence needs, so the engine reports sample exhaustion.
        "nbl-sampled" => (
            cnf::generators::section4_unsat_instance(),
            Budget::unlimited().with_max_samples(200),
        ),
        // Hybrid flows: the coprocessor allowance interrupts the search.
        "hybrid-symbolic" => (
            cnf::generators::pigeonhole(4, 3),
            Budget::unlimited().with_max_checks(4),
        ),
        "hybrid-sampled" => (
            cnf::generators::pigeonhole(3, 2),
            Budget::unlimited().with_max_samples(100),
        ),
        // Brute force guards against > 24 variables, so its hard instance is
        // the largest pigeonhole that fits (20 variables, 2^20 assignments).
        "brute-force" => (
            cnf::generators::pigeonhole(5, 4),
            Budget::unlimited().with_wall_time(Duration::ZERO),
        ),
        // Classical searches: an already-expired wall-clock deadline is
        // detected inside the search loop on the first iteration.
        _ => (
            cnf::generators::pigeonhole(6, 5),
            Budget::unlimited().with_wall_time(Duration::ZERO),
        ),
    }
}

#[test]
fn every_backend_reports_budget_exhaustion_instead_of_blocking() {
    let registry = BackendRegistry::default();
    for name in registry.names() {
        let (formula, budget) = tight_case(name);
        let request = SolveRequest::new(&formula).seed(7).budget(budget);
        let outcome = registry
            .solve(name, &request)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let resource = outcome.verdict.exhausted_resource().unwrap_or_else(|| {
            panic!(
                "{name} under budget {budget:?} answered {} instead of Unknown(BudgetExhausted)",
                outcome.verdict
            )
        });
        assert_eq!(outcome.exhausted, Some(resource), "{name}");
    }
}

#[test]
fn stochastic_backends_are_deterministic_per_seed() {
    let registry = BackendRegistry::default();
    let formula = cnf::generators::random_ksat(
        &cnf::generators::RandomKSatConfig::new(12, 40, 3).with_seed(3),
    )
    .unwrap();
    for name in ["walksat", "gsat", "schoening"] {
        let request = SolveRequest::new(&formula)
            .artifacts(Artifacts::Model)
            .seed(9);
        let a = registry.solve(name, &request).unwrap();
        let b = registry.solve(name, &request).unwrap();
        assert_eq!(a.verdict, b.verdict, "{name}");
        assert_eq!(a.model, b.model, "{name}");
        assert_eq!(a.stats.flips, b.stats.flips, "{name}");
        let other = registry
            .solve(
                name,
                &SolveRequest::new(&formula)
                    .artifacts(Artifacts::Model)
                    .seed(10),
            )
            .unwrap();
        // A different seed is allowed to find a different model; it must
        // still verify when present.
        if let Some(model) = &other.model {
            assert!(formula.evaluate(model), "{name}");
        }
    }
}

#[test]
fn portfolio_winner_surfaces_through_unified_stats() {
    let registry = BackendRegistry::default();
    let two_cnf = cnf::generators::example6_sat();
    let outcome = registry
        .solve("portfolio", &SolveRequest::new(&two_cnf))
        .unwrap();
    assert_eq!(outcome.stats.winner, Some("two-sat"));
    let hard = cnf::generators::pigeonhole(4, 3);
    let outcome = registry
        .solve("portfolio", &SolveRequest::new(&hard))
        .unwrap();
    assert_eq!(outcome.stats.winner, Some("cdcl"));
    assert!(outcome.verdict.is_unsat());
}

#[test]
fn model_and_cube_artifacts_cost_extra_checks_only_when_requested() {
    let registry = BackendRegistry::default();
    let formula = cnf::generators::section4_sat_instance();
    let verdict_only = registry
        .solve("nbl-symbolic", &SolveRequest::new(&formula))
        .unwrap();
    assert_eq!(verdict_only.stats.coprocessor_checks, 1);
    assert!(verdict_only.model.is_none());
    let with_model = registry
        .solve(
            "nbl-symbolic",
            &SolveRequest::new(&formula).artifacts(Artifacts::Model),
        )
        .unwrap();
    // Algorithm 1 (1 check) + Algorithm 2 (n checks).
    assert_eq!(
        with_model.stats.coprocessor_checks,
        1 + formula.num_vars() as u64
    );
    assert!(with_model.model.is_some());
}
