//! Acceptance suite for the concurrency layer: the thread-racing
//! `parallel-portfolio` backend, the `SolveBatch` shared-budget fan-out, the
//! `SearchLimits` cancellation token, and the edge-case bugfixes that ride
//! along (empty-clause verdicts, overflow-saturating deadlines, per-request
//! portfolio reseeding).

use nbl_sat_repro::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The oracle battery of `tests/backend_registry.rs`: paper instances plus
/// seeded random 3-SAT around the phase transition and random 2-SAT.
fn oracle_battery() -> Vec<CnfFormula> {
    let mut battery = vec![
        cnf::generators::example6_sat(),
        cnf::generators::example7_unsat(),
        cnf::generators::section4_sat_instance(),
        cnf::generators::section4_unsat_instance(),
        cnf::generators::pigeonhole(3, 2),
    ];
    for seed in 0..10 {
        battery.push(
            cnf::generators::random_ksat(
                &cnf::generators::RandomKSatConfig::new(6, 26, 3).with_seed(seed),
            )
            .unwrap(),
        );
    }
    for seed in 0..5 {
        battery.push(
            cnf::generators::random_ksat(
                &cnf::generators::RandomKSatConfig::new(6, 12, 2).with_seed(100 + seed),
            )
            .unwrap(),
        );
    }
    battery
}

#[test]
fn parallel_portfolio_agrees_with_sequential_portfolio_on_the_battery() {
    let registry = BackendRegistry::default();
    for (i, formula) in oracle_battery().iter().enumerate() {
        let request = SolveRequest::new(formula)
            .artifacts(Artifacts::Model)
            .seed(2012);
        let parallel = registry.solve("parallel-portfolio", &request).unwrap();
        let sequential = registry.solve("portfolio", &request).unwrap();
        assert_eq!(
            parallel.verdict, sequential.verdict,
            "verdict mismatch on battery instance {i}"
        );
        assert!(parallel.verdict.is_definitive(), "instance {i}");
        if let Some(model) = &parallel.model {
            assert!(formula.evaluate(model), "instance {i}");
        }
        assert!(parallel.stats.winner.is_some(), "instance {i}");
    }
}

#[test]
fn parallel_portfolio_verdict_is_deterministic_for_a_fixed_seed() {
    let registry = BackendRegistry::default();
    let formula = cnf::generators::random_ksat(
        &cnf::generators::RandomKSatConfig::new(12, 50, 3).with_seed(21),
    )
    .unwrap();
    let request = SolveRequest::new(&formula).seed(9);
    let first = registry.solve("parallel-portfolio", &request).unwrap();
    for _ in 0..3 {
        let again = registry.solve("parallel-portfolio", &request).unwrap();
        // The race decides who answers (and hence which model), but sound
        // members can never disagree on the verdict.
        assert_eq!(first.verdict, again.verdict);
    }
}

#[test]
fn sequential_portfolio_is_bit_deterministic_per_request_seed() {
    // Regression for the fixed-config portfolio: per-request seeds now reach
    // the stochastic members, so the same request twice gives the identical
    // outcome *and* stats.
    let registry = BackendRegistry::default();
    let formula = cnf::generators::random_ksat(
        &cnf::generators::RandomKSatConfig::new(14, 58, 3).with_seed(4),
    )
    .unwrap();
    let request = SolveRequest::new(&formula)
        .artifacts(Artifacts::Model)
        .seed(77);
    let a = registry.solve("portfolio", &request).unwrap();
    let b = registry.solve("portfolio", &request).unwrap();
    assert_eq!(a.verdict, b.verdict);
    assert_eq!(a.model, b.model);
    assert_eq!(a.stats.flips, b.stats.flips);
    assert_eq!(a.stats.decisions, b.stats.decisions);
    assert_eq!(a.stats.winner, b.stats.winner);
}

#[test]
fn cancellation_token_stops_every_solver_family() {
    // A pre-raised token must stop each solver within its first poll — no
    // solver may run to its internal caps on this hard instance.
    let hard = cnf::generators::pigeonhole(6, 5);
    let flag = Arc::new(AtomicBool::new(true));
    let limits = SearchLimits::unlimited().with_cancel(Arc::clone(&flag));
    let solvers: Vec<Box<dyn Solver>> = vec![
        Box::new(DpllSolver::new()),
        Box::new(CdclSolver::new()),
        Box::new(WalkSat::new()),
        Box::new(Gsat::new()),
        Box::new(Schoening::new()),
        // Pigeonhole 6→5 has 30 variables; raise the oracle's guard so the
        // cancellation check (one poll per enumerated assignment) is what
        // stops it, not the variable cap.
        Box::new(BruteForceSolver::new().with_max_vars(30)),
        Box::new(Portfolio::new()),
        Box::new(ParallelPortfolio::new()),
    ];
    for mut solver in solvers {
        let started = Instant::now();
        let result = solver.solve_limited(&hard, &limits);
        assert_eq!(
            result,
            SolveResult::Unknown,
            "{} ignored the cancellation token",
            solver.name()
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "{} took too long to observe cancellation",
            solver.name()
        );
    }
}

#[test]
fn cancellation_mid_search_interrupts_a_running_solver() {
    // Raise the flag from a sibling thread while CDCL grinds on a hard
    // refutation; the solver must come back Unknown shortly after.
    let hard = cnf::generators::pigeonhole(8, 7);
    let flag = Arc::new(AtomicBool::new(false));
    let limits = SearchLimits::unlimited().with_cancel(Arc::clone(&flag));
    let result = std::thread::scope(|scope| {
        let handle = scope.spawn(|| CdclSolver::new().solve_limited(&hard, &limits));
        std::thread::sleep(Duration::from_millis(20));
        flag.store(true, Ordering::Relaxed);
        handle.join().expect("solver thread")
    });
    // Either the solver finished the refutation before the flag went up
    // (fast machine) or it was interrupted; it must never hang or misreport.
    assert!(
        matches!(result, SolveResult::Unknown | SolveResult::Unsatisfiable),
        "unexpected result {result}"
    );
}

#[test]
fn batch_under_contention_starves_but_never_hangs() {
    let registry = BackendRegistry::default();
    let hard = cnf::generators::pigeonhole(6, 5);
    let easy = cnf::generators::example6_sat();
    // 8 hard jobs + 1 easy job race 4 workers against a 50 ms shared wall
    // budget: some jobs may finish, the rest must starve with
    // Unknown(BudgetExhausted) — and the whole batch must return promptly.
    let started = Instant::now();
    let mut batch = SolveBatch::new(&registry)
        .workers(4)
        .shared_budget(Budget::unlimited().with_wall_time(Duration::from_millis(50)));
    for _ in 0..8 {
        batch = batch.job("cdcl", SolveRequest::new(&hard));
    }
    batch = batch.job("two-sat", SolveRequest::new(&easy));
    let outcomes = batch.run();
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "batch took {:?}",
        started.elapsed()
    );
    assert_eq!(outcomes.len(), 9);
    for outcome in outcomes {
        let outcome = outcome.unwrap();
        match outcome.verdict {
            SolveVerdict::Satisfiable | SolveVerdict::Unsatisfiable => {}
            SolveVerdict::Unknown(UnknownCause::BudgetExhausted(_)) => {
                assert!(outcome.exhausted.is_some());
            }
            SolveVerdict::Unknown(UnknownCause::Incomplete) => {
                panic!("complete backends must not answer Incomplete here")
            }
            SolveVerdict::Unknown(UnknownCause::Cancelled) => {
                panic!("nothing cancels jobs in this test")
            }
        }
    }
}

#[test]
fn batch_shared_sample_pool_is_shared_across_requests() {
    let registry = BackendRegistry::default();
    // Irreducible under the pipeline's preprocessing (no units, no pure
    // literals), so every request reaches the sampled backend and draws real
    // samples from the pool.
    let f = cnf::generators::section4_unsat_instance();
    // A pool of 300 samples cannot fund many sampled checks (each needs more
    // than that to converge); at least one request must be starved and none
    // may exceed the pool by more than the per-request slice semantics allow.
    let outcomes = SolveBatch::new(&registry)
        .workers(2)
        .shared_budget(Budget::unlimited().with_max_samples(300))
        .job("nbl-sampled", SolveRequest::new(&f).seed(1))
        .job("nbl-sampled", SolveRequest::new(&f).seed(2))
        .job("nbl-sampled", SolveRequest::new(&f).seed(3))
        .run();
    let starved = outcomes
        .iter()
        .filter(|o| {
            o.as_ref()
                .is_ok_and(|o| o.verdict.exhausted_resource() == Some(ExhaustedResource::Samples))
        })
        .count();
    assert!(starved >= 1, "a 300-sample pool must starve someone");
}

#[test]
fn batch_outcomes_in_input_order_match_sequential_backends() {
    let registry = BackendRegistry::default();
    let battery = oracle_battery();
    let mut batch = SolveBatch::new(&registry).workers(4);
    for formula in &battery {
        batch = batch.job("cdcl", SolveRequest::new(formula).seed(5));
    }
    let outcomes = batch.run();
    assert_eq!(outcomes.len(), battery.len());
    for (formula, outcome) in battery.iter().zip(outcomes) {
        let sequential = registry
            .solve("cdcl", &SolveRequest::new(formula).seed(5))
            .unwrap();
        assert_eq!(outcome.unwrap().verdict, sequential.verdict);
    }
}

#[test]
fn empty_clause_formula_is_unsat_for_every_backend() {
    // cnf_formula![[]] contains an empty clause: trivially UNSAT. Every
    // backend — complete, incomplete, NBL, hybrid, portfolios — must say so.
    let formula = cnf::cnf_formula![[]];
    assert!(formula.has_empty_clause());
    let registry = BackendRegistry::default();
    for name in registry.names() {
        let outcome = registry
            .solve(name, &SolveRequest::new(&formula))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            outcome.verdict,
            SolveVerdict::Unsatisfiable,
            "{name} must answer UNSAT on an empty clause"
        );
    }
}

#[test]
fn empty_clause_with_other_clauses_is_unsat_for_every_solver() {
    // A satisfiable-looking formula plus one empty clause stays UNSAT.
    let mut formula = cnf::cnf_formula![[1, 2], [-1, -2]];
    formula.push_clause(Clause::new());
    let solvers: Vec<Box<dyn Solver>> = vec![
        Box::new(DpllSolver::new()),
        Box::new(CdclSolver::new()),
        Box::new(TwoSatSolver::new()),
        Box::new(WalkSat::new()),
        Box::new(Gsat::new()),
        Box::new(Schoening::new()),
        Box::new(BruteForceSolver::new()),
        Box::new(Portfolio::new()),
        Box::new(ParallelPortfolio::new()),
    ];
    for mut solver in solvers {
        assert!(
            solver.solve(&formula).is_unsat(),
            "{} must answer UNSAT with an empty clause present",
            solver.name()
        );
    }
}

#[test]
fn duration_max_wall_budget_stays_a_limit_end_to_end() {
    // Regression: a Duration::MAX wall budget used to overflow into *no*
    // deadline. It must behave as a (far-future) limit and still let easy
    // instances solve normally.
    let registry = BackendRegistry::default();
    let formula = cnf::generators::example6_sat();
    let request =
        SolveRequest::new(&formula).budget(Budget::unlimited().with_wall_time(Duration::MAX));
    for name in ["cdcl", "portfolio", "parallel-portfolio"] {
        let outcome = registry.solve(name, &request).unwrap();
        assert!(outcome.verdict.is_sat(), "{name}");
    }
    let limits = SearchLimits::deadline_in(Duration::MAX);
    assert!(limits.deadline().is_some(), "deadline must not vanish");
    assert!(!limits.expired());
}

#[test]
fn parallel_portfolio_respects_wall_budget_without_hanging() {
    let registry = BackendRegistry::default();
    let hard = cnf::generators::pigeonhole(7, 6);
    let request =
        SolveRequest::new(&hard).budget(Budget::unlimited().with_wall_time(Duration::ZERO));
    let outcome = registry.solve("parallel-portfolio", &request).unwrap();
    assert_eq!(
        outcome.verdict.exhausted_resource(),
        Some(ExhaustedResource::WallClock)
    );
}
