//! Acceptance suite for the `SolveService` job-queue front end: streaming
//! submits that never block, ordering independence, cancellation latency,
//! budget refills, drain-vs-abort shutdown, priority scheduling without lost
//! jobs, panic isolation, and the differential guarantees of the
//! `SolveBatch` wrapper (single-worker outcomes bit-equal to sequential
//! solves, worker count clamped to job count).

use nbl_sat_repro::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The oracle battery of `tests/backend_registry.rs`: paper instances plus
/// seeded random 3-SAT around the phase transition and random 2-SAT.
fn oracle_battery() -> Vec<CnfFormula> {
    let mut battery = vec![
        cnf::generators::example6_sat(),
        cnf::generators::example7_unsat(),
        cnf::generators::section4_sat_instance(),
        cnf::generators::section4_unsat_instance(),
        cnf::generators::pigeonhole(3, 2),
    ];
    for seed in 0..10 {
        battery.push(
            cnf::generators::random_ksat(
                &cnf::generators::RandomKSatConfig::new(6, 26, 3).with_seed(seed),
            )
            .unwrap(),
        );
    }
    battery
}

/// A backend that spins on a gate before answering — used to freeze a worker
/// while a test arranges the queue behind it.
#[derive(Debug)]
struct GatedBackend {
    gate: Arc<AtomicBool>,
}

impl SatBackend for GatedBackend {
    fn name(&self) -> &'static str {
        "gated"
    }
    fn is_complete(&self) -> bool {
        true
    }
    fn solve(&mut self, request: &SolveRequest<'_>) -> Result<SolveOutcome, NblSatError> {
        while !self.gate.load(Ordering::Relaxed) {
            // A real backend would poll its limits; the gate honours
            // cancellation too so aborts never hang the suite.
            if request.cancelled() {
                return Ok(SolveOutcome::of_verdict(SolveVerdict::Unknown(
                    UnknownCause::Cancelled,
                )));
            }
            std::thread::yield_now();
        }
        Ok(SolveOutcome::of_verdict(SolveVerdict::Satisfiable))
    }
}

/// The default registry plus the `"gated"` test backend.
fn registry_with_gate(gate: &Arc<AtomicBool>) -> BackendRegistry {
    let mut registry = BackendRegistry::default();
    let gate = Arc::clone(gate);
    registry.register("gated", move || {
        Box::new(GatedBackend {
            gate: Arc::clone(&gate),
        })
    });
    registry
}

#[test]
fn streaming_submits_return_handles_without_blocking() {
    let registry = BackendRegistry::default();
    let service = SolveService::builder(&registry).workers(2).start();
    let hard = cnf::generators::pigeonhole(8, 7);
    let started = Instant::now();
    let handles: Vec<JobHandle> = (0..16)
        .map(|_| service.submit("cdcl", &SolveRequest::new(&hard)))
        .collect();
    // 16 hard jobs on 2 workers: submission must not wait for any of them.
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "submit blocked for {:?}",
        started.elapsed()
    );
    assert_eq!(handles.len(), 16);
    for handle in &handles {
        assert!(matches!(
            handle.status(),
            JobStatus::Queued | JobStatus::Running
        ));
        assert!(handle.poll().is_none() || handle.poll().is_some());
    }
    service.abort();
    for handle in handles {
        let outcome = handle.wait().unwrap();
        assert!(
            outcome.verdict.is_cancelled() || outcome.verdict.is_definitive(),
            "unexpected {:?}",
            outcome.verdict
        );
    }
}

#[test]
fn outcomes_are_ordering_independent() {
    // Each handle answers *its* job no matter in which order the pool
    // finishes them; verdicts match the sequential front door.
    let registry = BackendRegistry::default();
    let service = SolveService::builder(&registry).workers(4).start();
    let battery = oracle_battery();
    let backends = ["cdcl", "dpll", "portfolio", "nbl-symbolic", "two-sat"];
    let handles: Vec<(usize, &str, JobHandle)> = battery
        .iter()
        .enumerate()
        .map(|(i, formula)| {
            let backend = backends[i % backends.len()];
            let request = SolveRequest::new(formula).seed(2012);
            (i, backend, service.submit(backend, &request))
        })
        .collect();
    for (i, backend, handle) in handles {
        let sequential = registry
            .solve(backend, &SolveRequest::new(&battery[i]).seed(2012))
            .unwrap();
        assert_eq!(
            handle.wait().unwrap().verdict,
            sequential.verdict,
            "job {i} on {backend}"
        );
    }
    service.shutdown();
}

#[test]
fn cancelling_a_running_job_stops_every_classical_family_promptly() {
    // The PR 3 cancellation-latency harness, lifted to the service level: a
    // long-running job must come back within one poll interval of cancel()
    // for every solver family. Complete solvers grinding on pigeonhole
    // refutations would otherwise run for minutes to hours; the local
    // searches may exhaust their internal caps first, which is also a prompt
    // return. Either way the latency bound holds and the verdict is never
    // *invented* — it is Cancelled, a budget Unknown, Incomplete, or the
    // instance's true answer.
    let hard = cnf::generators::pigeonhole(8, 7);
    let small_symbolic = cnf::generators::pigeonhole(5, 4); // 20 vars: in scope for NBL engines
    let jobs: Vec<(&str, &CnfFormula)> = vec![
        ("dpll", &hard),
        ("cdcl", &hard),
        ("walksat", &hard),
        ("gsat", &hard),
        ("schoening", &hard),
        ("portfolio", &hard),
        ("parallel-portfolio", &hard),
        ("nbl-symbolic", &small_symbolic),
        ("hybrid-symbolic", &small_symbolic),
    ];
    let registry = BackendRegistry::default();
    for (backend, formula) in jobs {
        let service = SolveService::builder(&registry).workers(1).start();
        let handle = service.submit(backend, &SolveRequest::new(formula));
        // Let the job actually start (and possibly finish, on fast solvers).
        std::thread::sleep(Duration::from_millis(25));
        let cancelled_at = Instant::now();
        handle.cancel();
        let outcome = handle.wait().unwrap();
        assert!(
            cancelled_at.elapsed() < Duration::from_secs(5),
            "{backend} took {:?} to observe cancellation",
            cancelled_at.elapsed()
        );
        if !outcome.verdict.is_definitive() {
            assert!(
                matches!(
                    outcome.verdict,
                    SolveVerdict::Unknown(
                        UnknownCause::Cancelled
                            | UnknownCause::Incomplete
                            | UnknownCause::BudgetExhausted(_)
                    )
                ),
                "{backend}: unexpected {:?}",
                outcome.verdict
            );
        }
        service.shutdown();
    }
    // DPLL on pigeonhole(8, 7) cannot finish in 25 ms; its return must be the
    // cancellation itself.
    let service = SolveService::builder(&registry).workers(1).start();
    let handle = service.submit("dpll", &SolveRequest::new(&hard));
    std::thread::sleep(Duration::from_millis(25));
    handle.cancel();
    assert!(handle.wait().unwrap().verdict.is_cancelled());
    service.shutdown();
}

#[test]
fn cancelling_queued_jobs_answers_all_backends_without_running() {
    // With the single worker frozen on a gated job, one queued job per
    // registered backend is cancelled: every one must answer
    // Unknown(Cancelled) immediately, deterministically, without a backend
    // ever being created.
    let gate = Arc::new(AtomicBool::new(false));
    let registry = registry_with_gate(&gate);
    let service = SolveService::builder(&registry).workers(1).start();
    let f = cnf::generators::example6_sat();
    let blocker = service.submit("gated", &SolveRequest::new(&f));
    while blocker.status() != JobStatus::Running {
        std::thread::yield_now();
    }
    let doomed: Vec<JobHandle> = BackendRegistry::default()
        .names()
        .iter()
        .map(|name| service.submit(name, &SolveRequest::new(&f)))
        .collect();
    for handle in &doomed {
        handle.cancel();
    }
    for handle in doomed {
        assert_eq!(handle.status(), JobStatus::Finished);
        assert!(handle.wait().unwrap().verdict.is_cancelled());
    }
    gate.store(true, Ordering::Relaxed);
    assert!(blocker.wait().unwrap().verdict.is_sat());
    service.shutdown();
}

#[test]
fn refilled_budget_revives_a_starved_service() {
    // Each nbl-symbolic verdict costs exactly 1 check; a pool of 2 admits two
    // jobs, starves the third, and a refill admits the fourth. The instance
    // is irreducible under the pipeline's preprocessing (no units, no pure
    // literals), so every job actually reaches the backend.
    let registry = BackendRegistry::default();
    let service = SolveService::builder(&registry)
        .workers(1)
        .shared_budget(Budget::unlimited().with_max_checks(2))
        .start();
    let f = cnf::generators::section4_unsat_instance();
    for _ in 0..2 {
        let outcome = service
            .submit("nbl-symbolic", &SolveRequest::new(&f))
            .wait()
            .unwrap();
        assert_eq!(outcome.verdict, SolveVerdict::Unsatisfiable);
    }
    let starved = service
        .submit("nbl-symbolic", &SolveRequest::new(&f))
        .wait()
        .unwrap();
    assert_eq!(
        starved.verdict.exhausted_resource(),
        Some(ExhaustedResource::CoprocessorChecks)
    );
    assert_eq!(
        starved.exhausted,
        Some(ExhaustedResource::CoprocessorChecks)
    );
    // Top the pool back up: the next job runs and charges the pool again.
    service.refill_checks(1);
    let revived = service
        .submit("nbl-symbolic", &SolveRequest::new(&f))
        .wait()
        .unwrap();
    assert_eq!(revived.verdict, SolveVerdict::Unsatisfiable);
    assert_eq!(service.shared_budget().remaining_checks(), Some(0));
    service.shutdown();
}

#[test]
fn shutdown_drains_while_abort_cancels() {
    // Drain: every accepted job still gets its real outcome.
    let registry = BackendRegistry::default();
    let service = SolveService::builder(&registry).workers(2).start();
    let battery = oracle_battery();
    let handles: Vec<JobHandle> = battery
        .iter()
        .map(|formula| service.submit("cdcl", &SolveRequest::new(formula)))
        .collect();
    service.shutdown();
    for (formula, handle) in battery.iter().zip(handles) {
        let outcome = handle.wait().unwrap();
        assert!(outcome.verdict.is_definitive());
        let oracle = registry.solve("cdcl", &SolveRequest::new(formula)).unwrap();
        assert_eq!(outcome.verdict, oracle.verdict);
    }

    // Abort: queued jobs are cancelled without running, promptly.
    let service = SolveService::builder(&registry).workers(1).start();
    let hard = cnf::generators::pigeonhole(8, 7);
    let handles: Vec<JobHandle> = (0..6)
        .map(|_| service.submit("cdcl", &SolveRequest::new(&hard)))
        .collect();
    let started = Instant::now();
    service.abort();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "abort took {:?}",
        started.elapsed()
    );
    let cancelled = handles
        .into_iter()
        .filter(|handle| {
            handle
                .poll()
                .expect("abort finishes every job")
                .unwrap()
                .verdict
                .is_cancelled()
        })
        .count();
    // At most the one running job could have finished definitively before
    // observing the abort token; the queued five must all be cancelled.
    assert!(cancelled >= 5, "only {cancelled} jobs were cancelled");
}

#[test]
fn priorities_and_drain_lose_no_jobs() {
    // A stream of mixed-priority traffic: high-priority jobs jump the queue,
    // and a graceful drain completes every accepted job — nothing starves
    // into oblivion.
    let gate = Arc::new(AtomicBool::new(false));
    let registry = registry_with_gate(&gate);
    let service = SolveService::builder(&registry).workers(1).start();
    let f = cnf::generators::example6_sat();
    let blocker = service.submit("gated", &SolveRequest::new(&f));
    while blocker.status() != JobStatus::Running {
        std::thread::yield_now();
    }
    let mut handles = Vec::new();
    for round in 0..5u64 {
        handles.push(service.submit_with_priority(
            "cdcl",
            &SolveRequest::new(&f).seed(round),
            JobPriority::Low,
        ));
        handles.push(service.submit_with_priority(
            "dpll",
            &SolveRequest::new(&f).seed(round),
            JobPriority::High,
        ));
    }
    assert_eq!(service.pending_jobs(), 10);
    gate.store(true, Ordering::Relaxed);
    assert!(blocker.wait().unwrap().verdict.is_sat());
    service.shutdown();
    for handle in handles {
        assert!(handle.wait().unwrap().verdict.is_sat());
    }
}

#[test]
fn panicking_backend_is_isolated_at_the_service_level() {
    #[derive(Debug)]
    struct Panicker;
    impl SatBackend for Panicker {
        fn name(&self) -> &'static str {
            "panicker"
        }
        fn is_complete(&self) -> bool {
            true
        }
        fn solve(&mut self, _request: &SolveRequest<'_>) -> Result<SolveOutcome, NblSatError> {
            panic!("deliberate mock panic");
        }
    }
    let mut registry = BackendRegistry::default();
    registry.register("panicker", || Box::new(Panicker));
    let service = SolveService::builder(&registry).workers(2).start();
    let f = cnf::generators::example6_sat();
    let bad = service.submit("panicker", &SolveRequest::new(&f));
    let good = service.submit("cdcl", &SolveRequest::new(&f));
    assert!(matches!(
        bad.wait().unwrap_err(),
        NblSatError::BackendPanicked { backend, .. } if backend == "panicker"
    ));
    // The worker that caught the panic survives and keeps serving.
    assert!(good.wait().unwrap().verdict.is_sat());
    let again = service.submit("cdcl", &SolveRequest::new(&f));
    assert!(again.wait().unwrap().verdict.is_sat());
    service.shutdown();
}

/// Satellite 3 (differential): with a single worker and no contention, every
/// batch outcome must be bit-equal to what the sequential
/// `BackendRegistry::solve` produces — verdict, model, cube and stats (wall
/// time excepted: it is measured, not computed).
#[test]
fn single_worker_batch_is_bit_equal_to_sequential_solves() {
    let registry = BackendRegistry::default();
    let battery = oracle_battery();
    for backend in ["cdcl", "dpll", "walksat", "nbl-symbolic", "portfolio"] {
        let mut batch = SolveBatch::new(&registry).workers(1);
        for formula in &battery {
            batch = batch.job(
                backend,
                SolveRequest::new(formula)
                    .artifacts(Artifacts::Model)
                    .seed(7),
            );
        }
        let outcomes = batch.run();
        for (i, (formula, outcome)) in battery.iter().zip(outcomes).enumerate() {
            let mut batched = outcome.unwrap();
            let mut sequential = registry
                .solve(
                    backend,
                    &SolveRequest::new(formula)
                        .artifacts(Artifacts::Model)
                        .seed(7),
                )
                .unwrap();
            batched.stats.wall_time = Duration::ZERO;
            sequential.stats.wall_time = Duration::ZERO;
            assert_eq!(batched.verdict, sequential.verdict, "{backend} #{i}");
            assert_eq!(batched.model, sequential.model, "{backend} #{i}");
            assert_eq!(batched.cube, sequential.cube, "{backend} #{i}");
            assert_eq!(batched.stats, sequential.stats, "{backend} #{i}");
        }
    }
}

/// Satellite 3 (worker clamp): the batch never spawns more workers than jobs,
/// and the service reports the worker count it was started with.
#[test]
fn batch_worker_count_is_clamped_to_job_count() {
    let registry = BackendRegistry::default();
    let f = cnf::generators::example6_sat();
    let batch = SolveBatch::new(&registry)
        .workers(128)
        .job("cdcl", SolveRequest::new(&f))
        .job("dpll", SolveRequest::new(&f))
        .job("two-sat", SolveRequest::new(&f));
    assert_eq!(batch.effective_workers(), 3);
    assert_eq!(batch.len(), 3);
    let outcomes = batch.run();
    assert!(outcomes
        .iter()
        .all(|o| o.as_ref().unwrap().verdict.is_sat()));

    let service = SolveService::builder(&registry).workers(3).start();
    assert_eq!(service.worker_count(), 3);
    service.shutdown();
}

#[test]
fn jobs_submitted_after_exhaustion_answer_budget_exhausted() {
    let registry = BackendRegistry::default();
    let service = SolveService::builder(&registry)
        .workers(2)
        .shared_budget(Budget::unlimited().with_wall_time(Duration::ZERO))
        .start();
    let f = cnf::generators::example6_sat();
    for _ in 0..4 {
        let outcome = service
            .submit("cdcl", &SolveRequest::new(&f))
            .wait()
            .unwrap();
        assert_eq!(
            outcome.verdict.exhausted_resource(),
            Some(ExhaustedResource::WallClock)
        );
    }
    service.shutdown();
}
