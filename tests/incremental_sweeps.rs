//! Differential acceptance suite for the incremental circuit workloads:
//! ATPG fault sweeps and miter equivalence batches driven through
//! IPASIR-style sessions must return verdicts **identical** to the
//! from-scratch per-instance oracle.
//!
//! Two session layers are exercised: [`BackendRegistry::open_session`]
//! (an in-process [`SolveSession`]) and [`SolveService::open_session`]
//! (a [`SessionHandle`] pinning the solver to a dedicated service thread).

use nbl_sat_repro::prelude::*;

use nbl_sat_repro::circuit::{
    atpg_check, atpg_sweep, equivalence_check, fault_list, fault_simulate, library, miter_sweep,
    Simulator,
};

/// From-scratch oracle: is this fault testable, per its own CNF instance?
fn oracle_testable(circuit: &nbl_sat_repro::circuit::Circuit, fault: StuckAtFault) -> bool {
    let check = atpg_check(circuit, fault).expect("build per-fault instance");
    let mut solver = CdclSolver::new();
    solver.solve(check.formula()).is_sat()
}

#[test]
fn atpg_sweep_through_a_registry_session_matches_the_oracle() {
    let circuit = library::majority3();
    let faults = fault_list(&circuit);
    assert!(faults.len() >= 4, "fault list unexpectedly small");
    let sweep = atpg_sweep(&circuit, &faults).expect("build sweep");

    let registry = BackendRegistry::default();
    let mut session = registry.open_session("cdcl").expect("cdcl is incremental");
    session.push(sweep.formula());

    for (index, &fault) in faults.iter().enumerate() {
        let call = SessionCall::new().assumptions([sweep.fault_literal(index)]);
        let outcome = session.solve(&call).expect("session solve");
        let expected = oracle_testable(&circuit, fault);
        assert_eq!(
            outcome.verdict.is_sat(),
            expected,
            "fault {fault}: session verdict diverged from the oracle"
        );
        if let Some(model) = &outcome.model {
            // The decoded pattern must actually detect exactly this fault's
            // output divergence when replayed through the fault simulator.
            let pattern = sweep.test_pattern(model);
            let report = fault_simulate(&circuit, &[fault], &[pattern]).expect("fault sim");
            assert_eq!(
                report.detected,
                vec![fault],
                "pattern fails to detect {fault}"
            );
        } else {
            // UNSAT under one assumption must name it in the failed core.
            let core = outcome
                .failed_assumptions
                .as_ref()
                .expect("assumption-aware UNSAT carries a core");
            assert!(core.iter().all(|&l| l == sweep.fault_literal(index)));
        }
    }
    assert_eq!(session.calls(), faults.len() as u64);
    // The frame pops off cleanly, leaving an empty session.
    assert!(session.pop());
    assert_eq!(session.depth(), 0);
}

#[test]
fn miter_sweep_through_a_service_session_matches_the_oracle() {
    let base = library::ripple_carry_adder(3);
    let alternatives = [
        library::ripple_carry_adder(3),
        library::buggy_ripple_carry_adder(3, 1),
        library::buggy_ripple_carry_adder(3, 2),
    ];
    let sweep = miter_sweep(&base, &alternatives).expect("build miter sweep");

    let registry = BackendRegistry::default();
    let service = SolveService::builder(&registry).workers(2).start();
    let session = service.open_session("cdcl").expect("open service session");
    session.push(sweep.formula()).expect("push sweep formula");

    for (index, alternative) in alternatives.iter().enumerate() {
        // Oracle: a fresh one-shot equivalence check for this pair alone.
        let check = equivalence_check(&base, alternative).expect("build pairwise miter");
        let mut oracle = CdclSolver::new();
        let differs = oracle.solve(check.formula()).is_sat();

        let call = SessionCall::new().assumptions([sweep.check_literal(index)]);
        let outcome = session.solve(&call).expect("session solve");
        assert_eq!(
            outcome.verdict.is_sat(),
            differs,
            "alternative {index}: session verdict diverged from the oracle"
        );
        if let Some(model) = &outcome.model {
            // The distinguishing pattern must actually split the two
            // circuits when simulated.
            let cex = sweep.counterexample(model);
            let pattern: Vec<bool> = base
                .input_names()
                .iter()
                .map(|name| {
                    cex.iter()
                        .find(|(n, _)| n == name)
                        .map(|&(_, v)| v)
                        .expect("counterexample covers every input")
                })
                .collect();
            let base_out = Simulator::new(&base).unwrap().run(&pattern).unwrap();
            let alt_out = Simulator::new(alternative).unwrap().run(&pattern).unwrap();
            assert_ne!(
                base_out, alt_out,
                "counterexample does not distinguish alternative {index}"
            );
        }
    }
    session.close();
    service.shutdown();
}
