//! Property-based tests (proptest) over the core invariants of the workspace.

use nbl_sat_repro::prelude::*;
use proptest::prelude::*;

/// Strategy: a random CNF formula with `1..=max_vars` variables and
/// `1..=max_clauses` clauses of 1–3 literals each.
fn arb_formula(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = cnf::CnfFormula> {
    (1..=max_vars).prop_flat_map(move |n| {
        let clause = proptest::collection::vec(
            (0..n, proptest::bool::ANY).prop_map(|(v, phase)| (v, phase)),
            1..=3,
        );
        proptest::collection::vec(clause, 1..=max_clauses).prop_map(move |clauses| {
            let mut formula = cnf::CnfFormula::new(n);
            for lits in clauses {
                formula.add_clause(
                    lits.into_iter()
                        .map(|(v, phase)| Literal::with_phase(Variable::new(v), phase)),
                );
            }
            formula
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 3.1 (and its converse): the exact NBL mean is positive iff the
    /// instance is satisfiable, as established by brute-force enumeration.
    #[test]
    fn nbl_symbolic_verdict_equals_brute_force(formula in arb_formula(6, 8)) {
        let instance = NblSatInstance::new(&formula).unwrap();
        let verdict = SatChecker::new(SymbolicEngine::new()).check(&instance).unwrap();
        let expected = BruteForceSolver::new().solve(&formula).is_sat();
        prop_assert_eq!(verdict.is_sat(), expected);
    }

    /// The exact mean equals Var^{nm} times the multiplicity-weighted model
    /// count, and is bounded below by K·Var^{nm}.
    #[test]
    fn exact_mean_scales_with_weighted_model_count(formula in arb_formula(5, 6)) {
        let instance = NblSatInstance::new(&formula).unwrap();
        let engine = SymbolicEngine::new();
        let (count, weighted) = engine
            .count_models(&instance, &instance.empty_bindings())
            .unwrap();
        let mean = SymbolicEngine::new()
            .estimate(&instance, &instance.empty_bindings())
            .unwrap()
            .mean;
        let unit = engine.minterm_weight(&instance);
        prop_assert!((mean - weighted * unit).abs() <= 1e-12 * (1.0 + mean.abs()));
        prop_assert!(weighted >= count as f64);
        prop_assert_eq!(count > 0, mean > 0.0);
    }

    /// Algorithm 2 always returns a genuine model when the instance is
    /// satisfiable, using exactly n check operations.
    #[test]
    fn extraction_returns_a_model_with_n_checks(formula in arb_formula(6, 8)) {
        let instance = NblSatInstance::new(&formula).unwrap();
        let satisfiable = formula.count_satisfying_assignments() > 0;
        let mut extractor = AssignmentExtractor::new(SymbolicEngine::new());
        match extractor.extract(&instance) {
            Ok(outcome) => {
                prop_assert!(satisfiable);
                prop_assert!(formula.evaluate(outcome.assignment.as_ref().unwrap()));
                prop_assert_eq!(outcome.checks_used, formula.num_vars() as u64);
            }
            Err(NblSatError::InstanceUnsatisfiable) => prop_assert!(!satisfiable),
            Err(other) => prop_assert!(false, "unexpected error {other}"),
        }
    }

    /// The cube variant returns an implicant: every assignment it covers
    /// satisfies the formula.
    #[test]
    fn extracted_cube_is_an_implicant(formula in arb_formula(5, 6)) {
        let instance = NblSatInstance::new(&formula).unwrap();
        if formula.count_satisfying_assignments() == 0 {
            return Ok(());
        }
        let outcome = AssignmentExtractor::new(SymbolicEngine::new())
            .extract_cube(&instance)
            .unwrap();
        for a in outcome.cube.expand(formula.num_vars()) {
            prop_assert!(formula.evaluate(&a));
        }
    }

    /// DPLL, CDCL and brute force always agree, and their models verify.
    #[test]
    fn complete_solvers_agree(formula in arb_formula(7, 12)) {
        let expected = BruteForceSolver::new().solve(&formula).is_sat();
        let mut dpll = DpllSolver::new();
        let mut cdcl = CdclSolver::new();
        let d = dpll.solve(&formula);
        let c = cdcl.solve(&formula);
        prop_assert_eq!(d.is_sat(), expected);
        prop_assert_eq!(c.is_sat(), expected);
        if let Some(m) = d.model() { prop_assert!(formula.evaluate(m)); }
        if let Some(m) = c.model() { prop_assert!(formula.evaluate(m)); }
    }

    /// WalkSAT never claims a non-model.
    #[test]
    fn walksat_models_verify(formula in arb_formula(6, 10)) {
        let mut walksat = WalkSat::new();
        if let SolveResult::Satisfiable(model) = walksat.solve(&formula) {
            prop_assert!(formula.evaluate(&model));
        }
    }

    /// DIMACS serialization round-trips formulas exactly.
    #[test]
    fn dimacs_roundtrip(formula in arb_formula(8, 10)) {
        let text = cnf::dimacs::to_string(&formula);
        let reparsed = cnf::dimacs::parse_str(&text).unwrap();
        prop_assert_eq!(reparsed, formula);
    }

    /// Unit propagation never changes satisfiability.
    #[test]
    fn simplification_preserves_satisfiability(formula in arb_formula(6, 8)) {
        let original = formula.count_satisfying_assignments() > 0;
        let (reduced, report) = cnf::simplify(&formula);
        if report.proved_sat {
            prop_assert!(original);
        } else if report.proved_unsat {
            prop_assert!(!original);
        } else {
            prop_assert_eq!(reduced.count_satisfying_assignments() > 0, original);
        }
    }

    /// The hybrid solver with an ideal coprocessor is sound and complete, and
    /// never backtracks on satisfiable instances.
    #[test]
    fn hybrid_solver_is_sound_and_backtrack_free_on_sat(formula in arb_formula(5, 7)) {
        let expected = formula.count_satisfying_assignments() > 0;
        let mut solver = HybridSolver::with_ideal_coprocessor();
        let result = solver.solve(&formula).unwrap();
        prop_assert_eq!(result.is_some(), expected);
        if let Some(model) = result {
            prop_assert!(formula.evaluate(&model));
            prop_assert_eq!(solver.stats().conflicts, 0);
        }
    }

    /// Binding variables in τ_N never increases the exact mean, and binding to
    /// the two polarities partitions it: mean(free) = mean(x=0) + mean(x=1).
    #[test]
    fn tau_binding_partitions_the_mean(formula in arb_formula(5, 6)) {
        let instance = NblSatInstance::new(&formula).unwrap();
        let mut engine = SymbolicEngine::new();
        let free = engine.estimate(&instance, &instance.empty_bindings()).unwrap().mean;
        let mut b1 = instance.empty_bindings();
        b1.assign(Variable::new(0), true);
        let m1 = engine.estimate(&instance, &b1).unwrap().mean;
        let mut b0 = instance.empty_bindings();
        b0.assign(Variable::new(0), false);
        let m0 = engine.estimate(&instance, &b0).unwrap().mean;
        prop_assert!((free - (m0 + m1)).abs() <= 1e-12 * (1.0 + free.abs()));
        prop_assert!(m0 <= free + 1e-18 && m1 <= free + 1e-18);
    }
}
