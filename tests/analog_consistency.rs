//! The block-level analog simulation and the mathematical sampled engine must
//! agree: an NBL-SAT readout assembled purely from `nbl-analog` components
//! produces the same qualitative answer (and a compatible mean) as
//! `nbl-sat-core`'s engines on the same tiny instance.

use nbl_sat_repro::analog::{CorrelatorBlock, Multiplier, Netlist, NoiseSourceBlock, Summer};
use nbl_sat_repro::prelude::*;

/// Builds the block-level readout for the n = 1, m = 2 instance family:
/// Σ_N = N¹_{lit1} · N²_{lit2}; τ_N = N¹_{x}N²_{x} + N¹_{x̄}N²_{x̄}.
fn block_level_mean(first_positive: bool, second_positive: bool, steps: u64) -> f64 {
    let mut net = Netlist::new();
    let p1 = net.add_block(Box::new(NoiseSourceBlock::new(CarrierKind::Uniform, 1)));
    let m1 = net.add_block(Box::new(NoiseSourceBlock::new(CarrierKind::Uniform, 2)));
    let p2 = net.add_block(Box::new(NoiseSourceBlock::new(CarrierKind::Uniform, 3)));
    let m2 = net.add_block(Box::new(NoiseSourceBlock::new(CarrierKind::Uniform, 4)));

    let tau_pos = net.add_block(Box::new(Multiplier::new()));
    let tau_neg = net.add_block(Box::new(Multiplier::new()));
    let tau = net.add_block(Box::new(Summer::new(2)));
    net.connect(p1, tau_pos, 0).unwrap();
    net.connect(p2, tau_pos, 1).unwrap();
    net.connect(m1, tau_neg, 0).unwrap();
    net.connect(m2, tau_neg, 1).unwrap();
    net.connect(tau_pos, tau, 0).unwrap();
    net.connect(tau_neg, tau, 1).unwrap();

    let sigma = net.add_block(Box::new(Multiplier::new()));
    net.connect(if first_positive { p1 } else { m1 }, sigma, 0)
        .unwrap();
    net.connect(if second_positive { p2 } else { m2 }, sigma, 1)
        .unwrap();

    let s_n = net.add_block(Box::new(Multiplier::new()));
    let readout = net.add_block(Box::new(CorrelatorBlock::new()));
    net.connect(tau, s_n, 0).unwrap();
    net.connect(sigma, s_n, 1).unwrap();
    net.connect(s_n, readout, 0).unwrap();
    net.run(steps, readout).unwrap()
}

#[test]
fn block_level_readout_discriminates_sat_from_unsat() {
    let sat_mean = block_level_mean(true, true, 300_000); // (x1)(x1)
    let unsat_mean = block_level_mean(true, false, 300_000); // (x1)(¬x1)
    let expected = (1.0f64 / 12.0).powi(2);
    assert!(
        (sat_mean - expected).abs() < 0.3 * expected,
        "sat mean {sat_mean} vs expected {expected}"
    );
    assert!(unsat_mean.abs() < 0.3 * expected, "unsat mean {unsat_mean}");
}

#[test]
fn block_level_readout_matches_the_sampled_engine() {
    // Same instances evaluated through the nbl-sat-core sampled engine.
    let sat_formula = cnf::cnf_formula![[1], [1]];
    let unsat_formula = cnf::cnf_formula![[1], [-1]];
    let config = EngineConfig::new()
        .with_seed(5)
        .with_max_samples(300_000)
        .with_check_interval(300_000);

    let sat_engine_mean = SampledEngine::new(config)
        .estimate(
            &NblSatInstance::new(&sat_formula).unwrap(),
            &PartialAssignment::new(1),
        )
        .unwrap()
        .mean;
    let unsat_engine_mean = SampledEngine::new(config)
        .estimate(
            &NblSatInstance::new(&unsat_formula).unwrap(),
            &PartialAssignment::new(1),
        )
        .unwrap()
        .mean;

    let sat_block_mean = block_level_mean(true, true, 300_000);
    let unsat_block_mean = block_level_mean(true, false, 300_000);

    let expected = (1.0f64 / 12.0).powi(2);
    // Both paths land near the analytic SAT mean and near zero for UNSAT.
    assert!((sat_engine_mean - expected).abs() < 0.3 * expected);
    assert!((sat_block_mean - expected).abs() < 0.3 * expected);
    assert!(unsat_engine_mean.abs() < 0.3 * expected);
    assert!(unsat_block_mean.abs() < 0.3 * expected);
}

#[test]
fn symbolic_engine_predicts_the_block_level_plateau() {
    let instance = NblSatInstance::new(&cnf::cnf_formula![[1], [1]]).unwrap();
    let exact = SymbolicEngine::new()
        .estimate(&instance, &instance.empty_bindings())
        .unwrap()
        .mean;
    assert!((exact - (1.0f64 / 12.0).powi(2)).abs() < 1e-18);
}
