//! Acceptance suite for the `nbl-satd` wire layer: a real [`NblSatServer`]
//! on a loopback ephemeral port, exercised through real sockets.
//!
//! Proves the ISSUE 5 acceptance criteria: concurrent clients with
//! interleaved jobs all receive correct, job-id-matched verdicts agreeing
//! with the in-process oracle; a `CANCEL` for a running job comes back
//! `UNKNOWN cancelled` within one solver poll interval; malformed frames get
//! an `ERR` response without killing the connection or the server; budgets
//! exhaust and refill over the wire; `SHUTDOWN` drains.

use nbl_sat_repro::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use nbl_sat_repro::net::{ServerConfig, WireArtifacts, WireCause, WireJobStatus};

/// Binds a default-config server on an ephemeral loopback port.
fn start_server(config: ServerConfig) -> NblSatServer {
    NblSatServer::bind("127.0.0.1:0", config).expect("bind ephemeral loopback port")
}

/// The mixed SAT/UNSAT workload the concurrency tests interleave.
fn workload() -> Vec<CnfFormula> {
    vec![
        cnf::generators::example6_sat(),
        cnf::generators::example7_unsat(),
        cnf::generators::section4_sat_instance(),
        cnf::generators::section4_unsat_instance(),
        cnf::generators::random_ksat(
            &cnf::generators::RandomKSatConfig::from_ratio(12, 3.0, 3).with_seed(7),
        )
        .unwrap(),
        cnf::generators::pigeonhole(4, 3),
    ]
}

#[test]
fn concurrent_clients_interleaved_jobs_match_the_oracle() {
    let server = start_server(ServerConfig::new().workers(4));
    let addr = server.local_addr();
    let formulas = workload();
    let backends = ["cdcl", "dpll", "nbl-symbolic", "portfolio"];

    // The in-process oracle for every (backend, formula) pair.
    let registry = BackendRegistry::default();
    let mut expected = Vec::new();
    for (slot, formula) in formulas.iter().enumerate() {
        let backend = backends[slot % backends.len()];
        let outcome = registry
            .solve(backend, &SolveRequest::new(formula).seed(slot as u64))
            .unwrap();
        expected.push(outcome.verdict);
    }

    // ≥4 concurrent clients, each submitting every job before collecting any
    // result, so jobs from all clients interleave inside the service queue.
    thread::scope(|scope| {
        for client_id in 0..4u64 {
            let formulas = &formulas;
            let expected = &expected;
            scope.spawn(move || {
                let client = NblSatClient::connect(addr).expect("connect");
                let jobs: Vec<_> = formulas
                    .iter()
                    .enumerate()
                    .map(|(slot, formula)| {
                        let mut frame = SolveFrame::new(
                            backends[slot % backends.len()],
                            &cnf::dimacs::to_string(formula),
                        );
                        frame.seed = slot as u64;
                        frame.artifacts = WireArtifacts::Model;
                        let job = client.submit(frame).expect("submit");
                        (slot, job)
                    })
                    .collect();
                for (slot, job) in jobs {
                    let outcome = job.wait().expect("job outcome");
                    // Verdicts are job-id matched: each ticket saw its own
                    // formula's verdict, which must agree with the oracle.
                    match expected[slot] {
                        SolveVerdict::Satisfiable => {
                            assert!(
                                outcome.verdict.is_sat(),
                                "client {client_id} slot {slot}: {:?}",
                                outcome.verdict
                            );
                            let model = outcome.model.expect("model was requested");
                            let assignment =
                                assignment_from_lits(&model, formulas[slot].num_vars());
                            assert!(
                                formulas[slot].evaluate(&assignment),
                                "client {client_id} slot {slot}: model does not satisfy"
                            );
                        }
                        SolveVerdict::Unsatisfiable => {
                            assert!(
                                outcome.verdict.is_unsat(),
                                "client {client_id} slot {slot}: {:?}",
                                outcome.verdict
                            );
                            assert!(outcome.model.is_none());
                        }
                        SolveVerdict::Unknown(_) => {
                            assert!(
                                !outcome.verdict.is_sat() && !outcome.verdict.is_unsat(),
                                "client {client_id} slot {slot}: {:?}",
                                outcome.verdict
                            );
                        }
                    }
                }
            });
        }
    });
    server.stop();
}

/// Reconstructs an [`Assignment`] from DIMACS-signed wire literals.
fn assignment_from_lits(lits: &[i64], num_vars: usize) -> Assignment {
    let mut assignment = Assignment::all_false(num_vars);
    for &lit in lits {
        let var = Variable::new(lit.unsigned_abs() as usize - 1);
        assignment.set(var, lit > 0);
    }
    assignment
}

/// A backend that blocks on a shared gate before answering SAT — lets a test
/// freeze one job while others overtake it.
#[derive(Debug)]
struct GatedBackend {
    gate: Arc<AtomicBool>,
}

impl SatBackend for GatedBackend {
    fn name(&self) -> &'static str {
        "gated"
    }
    fn is_complete(&self) -> bool {
        true
    }
    fn solve(&mut self, request: &SolveRequest<'_>) -> Result<SolveOutcome, NblSatError> {
        while !self.gate.load(Ordering::Relaxed) {
            if request.cancelled() {
                return Ok(SolveOutcome::of_verdict(SolveVerdict::Unknown(
                    UnknownCause::Cancelled,
                )));
            }
            thread::yield_now();
        }
        Ok(SolveOutcome::of_verdict(SolveVerdict::Satisfiable))
    }
}

fn registry_with_gate(gate: &Arc<AtomicBool>) -> BackendRegistry {
    let mut registry = BackendRegistry::default();
    let gate = Arc::clone(gate);
    registry.register("gated", move || {
        Box::new(GatedBackend {
            gate: Arc::clone(&gate),
        })
    });
    registry
}

#[test]
fn one_connection_multiplexes_out_of_order_completions() {
    let gate = Arc::new(AtomicBool::new(false));
    let registry = registry_with_gate(&gate);
    let server = start_server(ServerConfig::new().registry(&registry).workers(2));
    let client = NblSatClient::connect(server.local_addr()).expect("connect");

    let sat = cnf::generators::example6_sat();
    let dimacs = cnf::dimacs::to_string(&sat);
    let slow = client
        .submit(SolveFrame::new("gated", &dimacs))
        .expect("submit slow");
    // Make sure the slow job is actually running before racing it, so the
    // fast job cannot win by queue order alone.
    let deadline = Instant::now() + Duration::from_secs(30);
    while slow.status().expect("status") != WireJobStatus::Running {
        assert!(Instant::now() < deadline, "gated job never started");
        thread::yield_now();
    }
    let fast = client
        .submit(SolveFrame::new("cdcl", &dimacs))
        .expect("submit fast");

    // The job submitted second completes first: out-of-order completion on
    // one connection.
    let fast_outcome = fast.wait().expect("fast outcome");
    assert!(fast_outcome.verdict.is_sat());
    assert_eq!(fast_outcome.arrival, 0);
    assert_eq!(client.completions_seen(), 1);

    gate.store(true, Ordering::Relaxed);
    let slow_outcome = slow.wait().expect("slow outcome");
    assert!(slow_outcome.verdict.is_sat());
    assert_eq!(slow_outcome.arrival, 1);
    server.stop();
}

#[test]
fn client_disconnect_cancels_its_unfinished_jobs() {
    // The gate is never released: the job can only end via cancellation.
    let gate = Arc::new(AtomicBool::new(false));
    let registry = registry_with_gate(&gate);
    let server = start_server(ServerConfig::new().registry(&registry).workers(1));
    {
        let client = NblSatClient::connect(server.local_addr()).expect("connect");
        let job = client
            .submit(SolveFrame::new(
                "gated",
                &cnf::dimacs::to_string(&cnf::generators::example6_sat()),
            ))
            .expect("submit");
        let deadline = Instant::now() + Duration::from_secs(30);
        while job.status().expect("status") != WireJobStatus::Running {
            assert!(Instant::now() < deadline, "gated job never started");
            thread::yield_now();
        }
        // The client vanishes with its job still running.
    }
    // The server must have cancelled the orphaned job — otherwise the single
    // worker stays wedged on the gate forever and this solve can never run.
    let client = NblSatClient::connect(server.local_addr()).expect("reconnect");
    let outcome = client
        .submit(SolveFrame::new(
            "cdcl",
            &cnf::dimacs::to_string(&cnf::generators::example7_unsat()),
        ))
        .expect("submit after disconnect")
        .wait()
        .expect("the worker was freed");
    assert!(outcome.verdict.is_unsat());
    server.stop();
}

#[test]
fn cancel_of_a_running_job_answers_unknown_cancelled_over_the_wire() {
    let server = start_server(ServerConfig::new().workers(1));
    let client = NblSatClient::connect(server.local_addr()).expect("connect");

    // Hard enough that CDCL runs for minutes if nobody stops it.
    let hard = cnf::generators::pigeonhole(10, 9);
    let job = client
        .submit(SolveFrame::new("cdcl", &cnf::dimacs::to_string(&hard)))
        .expect("submit");
    let deadline = Instant::now() + Duration::from_secs(30);
    while job.status().expect("status") != WireJobStatus::Running {
        assert!(Instant::now() < deadline, "job never started running");
        thread::yield_now();
    }

    let cancelled_at = Instant::now();
    job.cancel().expect("cancel");
    let outcome = job.wait().expect("outcome");
    let latency = cancelled_at.elapsed();
    assert_eq!(
        outcome.verdict,
        nbl_sat_repro::net::WireVerdict::Unknown(WireCause::Cancelled),
        "expected UNKNOWN cancelled, got {:?}",
        outcome.verdict
    );
    // One solver poll interval is microseconds; seconds of slack keep the
    // assertion meaningful yet robust on loaded CI machines.
    assert!(
        latency < Duration::from_secs(10),
        "cancellation took {latency:?}"
    );
    server.stop();
}

#[test]
fn budget_exhaustion_and_refill_over_the_wire() {
    // A pool with exactly one coprocessor check: the first NBL solve spends
    // it, the second starves, a REFILL revives the service.
    let server = start_server(
        ServerConfig::new()
            .workers(1)
            .shared_budget(Budget::unlimited().with_max_checks(1)),
    );
    let client = NblSatClient::connect(server.local_addr()).expect("connect");
    let dimacs = cnf::dimacs::to_string(&cnf::generators::example6_sat());

    let mut first = SolveFrame::new("nbl-symbolic", &dimacs);
    first.artifacts = WireArtifacts::Verdict;
    let outcome = client.submit(first.clone()).unwrap().wait().unwrap();
    assert!(outcome.verdict.is_sat());

    let starved = client.submit(first.clone()).unwrap().wait().unwrap();
    assert_eq!(
        starved.verdict,
        nbl_sat_repro::net::WireVerdict::Unknown(WireCause::BudgetChecks),
        "expected budget exhaustion, got {:?}",
        starved.verdict
    );

    client.refill(None, Some(1), None).expect("refill ack");
    let revived = client.submit(first).unwrap().wait().unwrap();
    assert!(revived.verdict.is_sat());
    server.stop();
}

#[test]
fn per_request_budget_caps_apply_over_the_wire() {
    let server = start_server(ServerConfig::new().workers(1));
    let client = NblSatClient::connect(server.local_addr()).expect("connect");
    // Mirrors the in-process budget-exhaustion battery: 200 samples are far
    // below the §IV convergence needs on this instance.
    let mut frame = SolveFrame::new(
        "nbl-sampled",
        &cnf::dimacs::to_string(&cnf::generators::section4_unsat_instance()),
    );
    frame.artifacts = WireArtifacts::Verdict;
    frame.seed = 7;
    frame.max_samples = Some(200);
    let outcome = client.submit(frame).unwrap().wait().unwrap();
    assert_eq!(
        outcome.verdict,
        nbl_sat_repro::net::WireVerdict::Unknown(WireCause::BudgetSamples),
        "expected sample exhaustion, got {:?}",
        outcome.verdict
    );
    server.stop();
}

/// Reads one `\n`-terminated line off a raw socket.
fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read line");
    line.trim_end().to_string()
}

#[test]
fn malformed_frames_get_err_without_killing_connection_or_server() {
    let server = start_server(ServerConfig::new().workers(1));
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connect raw");
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // 1. Unknown verb.
    stream.write_all(b"FROB 1\n").unwrap();
    assert!(read_line(&mut reader).starts_with("ERR - "), "unknown verb");
    // 2. Non-UTF8 bytes on a complete line.
    stream.write_all(&[0xff, 0xfe, 0x80, b'\n']).unwrap();
    assert!(read_line(&mut reader).contains("UTF-8"), "non-UTF8");
    // 3. Bad job id.
    stream.write_all(b"CANCEL notanumber\n").unwrap();
    assert!(read_line(&mut reader).starts_with("ERR - "), "bad id");
    // 4. SOLVE with an unknown key.
    stream
        .write_all(b"SOLVE cdcl frobnicate=1 body-lines=0\n")
        .unwrap();
    assert!(read_line(&mut reader).starts_with("ERR - "), "bad key");
    // 5. SOLVE whose body is not DIMACS.
    stream
        .write_all(b"SOLVE cdcl body-lines=1\nthis is not dimacs\n")
        .unwrap();
    assert!(read_line(&mut reader).contains("dimacs"), "bad body");
    // 6. Truncated SOLVE header (missing body-lines).
    stream.write_all(b"SOLVE cdcl seed=1\n").unwrap();
    assert!(
        read_line(&mut reader).contains("body-lines"),
        "no body-lines"
    );

    // The connection survived all of it: a PING and a real solve still work.
    stream.write_all(b"PING\n").unwrap();
    assert_eq!(read_line(&mut reader), "PONG");
    stream
        .write_all(b"SOLVE cdcl artifacts=verdict body-lines=3\np cnf 2 2\n1 2 0\n-1 -2 0\n")
        .unwrap();
    assert_eq!(read_line(&mut reader), "QUEUED 0");
    assert_eq!(read_line(&mut reader), "RESULT 0 s SATISFIABLE");

    // And the server survived too: a second, well-behaved client solves.
    let client = NblSatClient::connect(addr).expect("second client");
    let outcome = client
        .submit(SolveFrame::new(
            "cdcl",
            &cnf::dimacs::to_string(&cnf::generators::example7_unsat()),
        ))
        .unwrap()
        .wait()
        .unwrap();
    assert!(outcome.verdict.is_unsat());
    server.stop();
}

#[test]
fn status_reports_the_job_lifecycle_and_unknown_jobs_err() {
    let server = start_server(ServerConfig::new().workers(1));
    let client = NblSatClient::connect(server.local_addr()).expect("connect");
    let job = client
        .submit(SolveFrame::new(
            "cdcl",
            &cnf::dimacs::to_string(&cnf::generators::example6_sat()),
        ))
        .expect("submit");
    let outcome = job.wait().expect("outcome");
    assert!(outcome.verdict.is_sat());
    // After completion the server still answers STATUS for the job.
    assert_eq!(job.status().expect("status"), WireJobStatus::Finished);
    drop(client);

    // STATUS (and CANCEL) for a job this connection never submitted err
    // without disturbing the connection — raw socket, job ids are scoped per
    // connection.
    let mut stream = TcpStream::connect(server.local_addr()).expect("raw connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    stream.write_all(b"STATUS 999\n").unwrap();
    let err = read_line(&mut reader);
    assert!(
        err.starts_with("ERR 999") && err.contains("unknown job"),
        "got {err:?}"
    );
    stream.write_all(b"CANCEL 999\n").unwrap();
    let err = read_line(&mut reader);
    assert!(
        err.starts_with("ERR 999") && err.contains("unknown job"),
        "got {err:?}"
    );
    stream.write_all(b"PING\n").unwrap();
    assert_eq!(read_line(&mut reader), "PONG");
    server.stop();
}

#[test]
fn incremental_sessions_over_the_wire() {
    let server = start_server(ServerConfig::new().workers(1));
    let client = NblSatClient::connect(server.local_addr()).expect("connect");
    assert!(
        client.hello().expect("CAPS reply"),
        "server must advertise session support"
    );

    let session = client.open_session("cdcl").expect("open session");
    // Frame 1: (x1 ∨ x2) ∧ (¬x1 ∨ ¬x2) — SAT, an exclusive-or core.
    assert_eq!(session.add_clauses("1 2 0\n-1 -2 0\n").expect("push"), 1);

    let outcome = session.assume(&[1]).expect("queue").wait().expect("solve");
    assert!(outcome.verdict.is_sat());
    let model = outcome.model.expect("session solves stream their model");
    assert!(model.contains(&1), "assumption must hold in the model");
    assert!(model.contains(&-2), "the xor clause forces ¬x2");
    assert!(outcome.failed.is_none());

    // Frame 2 pins x2, contradicting x1 under the xor: UNSAT with a core
    // drawn from the assumptions.
    assert_eq!(session.add_clauses("2 0\n").expect("push"), 2);
    let outcome = session.assume(&[1]).expect("queue").wait().expect("solve");
    assert!(outcome.verdict.is_unsat());
    let failed = outcome.failed.expect("UNSAT under assumptions has a core");
    assert_eq!(failed, vec![1]);

    // Popping frame 2 restores satisfiability under the same assumption —
    // the state the wire protocol must round-trip is the *stack*, not one
    // formula.
    assert_eq!(session.pop().expect("pop"), 1);
    let outcome = session.assume(&[1]).expect("queue").wait().expect("solve");
    assert!(outcome.verdict.is_sat());

    session.close().expect("close ack");

    // Sessions coexist with one-shot traffic on the same connection.
    let outcome = client
        .submit(SolveFrame::new(
            "cdcl",
            &cnf::dimacs::to_string(&cnf::generators::example7_unsat()),
        ))
        .expect("submit")
        .wait()
        .expect("outcome");
    assert!(outcome.verdict.is_unsat());
    server.stop();
}

#[test]
fn session_errors_and_raw_framing_over_the_wire() {
    let server = start_server(ServerConfig::new().workers(1));
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect raw");
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    stream.write_all(b"HELLO\n").unwrap();
    assert_eq!(read_line(&mut reader), "CAPS sessions=true");

    // Ops on a session id never opened.
    stream.write_all(b"SESSION POP 7\n").unwrap();
    assert!(read_line(&mut reader).contains("unknown session"));
    // Unknown backends and backends without session support refuse to open.
    stream
        .write_all(b"SESSION OPEN backend=frobnicator\n")
        .unwrap();
    assert!(read_line(&mut reader).starts_with("ERR - "));
    stream.write_all(b"SESSION OPEN backend=dpll\n").unwrap();
    assert!(read_line(&mut reader).starts_with("ERR - "));

    // A real session: an empty pop errs without killing the session, and the
    // ASSUME completion group is QUEUED → f-line → RESULT with job ids from
    // the dedicated high range.
    stream.write_all(b"SESSION OPEN backend=cdcl\n").unwrap();
    assert_eq!(read_line(&mut reader), "SESSIONOK 1 depth=0");
    stream.write_all(b"SESSION POP 1\n").unwrap();
    assert!(read_line(&mut reader).contains("no frame to pop"));
    stream
        .write_all(b"SESSION ADDCLAUSES 1 body-lines=1\n1 0\n")
        .unwrap();
    assert_eq!(read_line(&mut reader), "SESSIONOK 1 depth=1");
    let job = 1u64 << 63;
    stream.write_all(b"SESSION ASSUME 1 lits=-1\n").unwrap();
    assert_eq!(read_line(&mut reader), format!("QUEUED {job}"));
    // Session completions always carry stats, then the failed core.
    let stats = read_line(&mut reader);
    assert!(
        stats.starts_with(&format!("STATS {job} ")),
        "expected a stats line, got {stats:?}"
    );
    assert_eq!(read_line(&mut reader), format!("f {job} -1 0"));
    assert_eq!(
        read_line(&mut reader),
        format!("RESULT {job} s UNSATISFIABLE")
    );

    // CLOSE acks once; the id is then gone.
    stream.write_all(b"SESSION CLOSE 1\n").unwrap();
    assert_eq!(read_line(&mut reader), "SESSIONOK 1 depth=0");
    stream.write_all(b"SESSION CLOSE 1\n").unwrap();
    assert!(read_line(&mut reader).contains("unknown session"));
    server.stop();
}

#[test]
fn shutdown_verb_drains_the_server() {
    let server = start_server(ServerConfig::new().workers(2));
    let addr = server.local_addr();
    let client = NblSatClient::connect(addr).expect("connect");
    let job = client
        .submit(SolveFrame::new(
            "cdcl",
            &cnf::dimacs::to_string(&cnf::generators::example6_sat()),
        ))
        .expect("submit");
    client.shutdown_server().expect("BYE");
    assert!(server.is_stopping());
    // Graceful drain: BYE is the connection's last frame, so the completion
    // of the already-accepted job was streamed before it.
    let outcome = job.wait().expect("drained result precedes BYE");
    assert!(outcome.verdict.is_sat());
    server.wait(); // returns because SHUTDOWN stopped the server
                   // The listener is gone: new connections are refused.
    assert!(TcpStream::connect(addr).is_err());
}

#[test]
fn cache_metrics_and_backlog_over_the_wire() {
    // Default server config: verdict/model cache ON. The second submission
    // is a variable-swapped isomorphic twin of the first, so it must answer
    // from the cache — hit counter up, zero extra backend dispatch — with a
    // model mapped into *its* variable space, not the first formula's.
    let server = start_server(ServerConfig::new());
    let client = NblSatClient::connect(server.local_addr()).expect("connect");

    let first = cnf::cnf_formula![[1, 2], [-1, -2], [1, -2]];
    let mut frame = SolveFrame::new("cdcl", &cnf::dimacs::to_string(&first));
    frame.artifacts = WireArtifacts::Model;
    frame.stats = true;
    let job = client.submit(frame).expect("submit");
    let (_status, backlog) = job.status_detailed().expect("status");
    assert!(backlog.is_some(), "STATUS must carry live queue gauges");
    let outcome = job.wait().expect("first outcome");
    assert!(outcome.verdict.is_sat());
    assert_eq!(
        outcome.stats.as_ref().expect("stats requested").cache_hits,
        0
    );

    let second = cnf::cnf_formula![[2, 1], [-2, -1], [2, -1]];
    let mut frame = SolveFrame::new("cdcl", &cnf::dimacs::to_string(&second));
    frame.artifacts = WireArtifacts::Model;
    frame.stats = true;
    let outcome = client
        .submit(frame)
        .expect("submit")
        .wait()
        .expect("second outcome");
    assert!(outcome.verdict.is_sat());
    assert_eq!(
        outcome.stats.as_ref().expect("stats requested").cache_hits,
        1,
        "isomorphic resubmission missed the server cache"
    );
    let model = assignment_from_lits(outcome.model.as_ref().expect("model"), second.num_vars());
    assert!(
        second.evaluate(&model),
        "cached model was not lifted into the resubmission's variable space"
    );

    let metrics = client.metrics().expect("METRICS round trip");
    assert_eq!(metrics.cache_hits, 1);
    assert_eq!(metrics.cache_misses, 1);
    assert_eq!(metrics.cache_entries, 1);
    assert_eq!(metrics.queue_depth, 0, "both jobs drained");
    let dispatched: u64 = metrics.backends.iter().map(|b| b.count).sum();
    assert_eq!(dispatched, 1, "the cache hit must not dispatch a backend");
    server.stop();
}
