//! Property-based equivalence suite for IPASIR-style assumption solving.
//!
//! The contract under test: for any formula F and assumption literals A,
//! `CdclSolver::solve_under_assumptions(A)` must agree with solving
//! `F ∧ (unit clauses for A)` from scratch — verified against the
//! brute-force oracle in **both** evaluation modes (scalar and 64-way
//! bit-packed). On UNSAT the failed-assumption core must be a subset of A
//! that is already unsatisfiable together with F; on SAT the model must
//! satisfy F and every assumption. Learned clauses carried across calls must
//! never flip a later verdict.

use nbl_sat_repro::prelude::*;
use proptest::prelude::*;

use cnf::EvalMode;

/// Strategy: a random CNF formula with `1..=max_vars` variables and
/// `1..=max_clauses` clauses of 1–3 literals, plus `0..=4` assumption
/// literals over the same variables (duplicates and contradictory pairs
/// included on purpose).
fn arb_instance(
    max_vars: usize,
    max_clauses: usize,
) -> impl Strategy<Value = (CnfFormula, Vec<Literal>)> {
    (1..=max_vars).prop_flat_map(move |n| {
        let clause = proptest::collection::vec((0..n, proptest::bool::ANY), 1..=3);
        let clauses = proptest::collection::vec(clause, 1..=max_clauses);
        let assumptions = proptest::collection::vec((0..n, proptest::bool::ANY), 0..=4);
        (clauses, assumptions).prop_map(move |(clauses, assumptions)| {
            let mut formula = CnfFormula::new(n);
            for lits in clauses {
                formula.add_clause(
                    lits.into_iter()
                        .map(|(v, phase)| Literal::with_phase(Variable::new(v), phase)),
                );
            }
            let assumptions = assumptions
                .into_iter()
                .map(|(v, phase)| Literal::with_phase(Variable::new(v), phase))
                .collect();
            (formula, assumptions)
        })
    })
}

/// The assumption list re-encoded the pedestrian way: one unit clause each.
fn with_units(formula: &CnfFormula, assumptions: &[Literal]) -> CnfFormula {
    let mut augmented = formula.clone();
    for &lit in assumptions {
        augmented.add_clause([lit]);
    }
    augmented
}

fn brute_is_sat(formula: &CnfFormula, mode: EvalMode) -> bool {
    BruteForceSolver::new()
        .with_eval_mode(mode)
        .solve(formula)
        .is_sat()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `solve_under_assumptions(A)` agrees with `F ∧ units(A)` in both
    /// evaluation modes; SAT models verify, UNSAT cores refute.
    #[test]
    fn assumption_solve_matches_unit_clause_oracle((formula, assumptions) in arb_instance(6, 8)) {
        let oracle = with_units(&formula, &assumptions);
        let scalar = brute_is_sat(&oracle, EvalMode::Scalar);
        let packed = brute_is_sat(&oracle, EvalMode::Packed);
        prop_assert_eq!(scalar, packed);

        let mut solver = CdclSolver::new();
        solver.push(&formula);
        match solver.solve_under_assumptions(&assumptions, &SearchLimits::unlimited()) {
            IncrementalResult::Satisfiable(model) => {
                prop_assert!(scalar, "SAT claimed on an UNSAT oracle");
                prop_assert!(formula.evaluate(&model));
                for &lit in &assumptions {
                    prop_assert!(model.satisfies(lit), "assumption {lit} violated");
                }
            }
            IncrementalResult::Unsatisfiable(core) => {
                prop_assert!(!scalar, "UNSAT claimed on a SAT oracle");
                // The failed core is a subset of the call's assumptions…
                for lit in &core {
                    prop_assert!(assumptions.contains(lit), "core literal {lit} never assumed");
                }
                // …already unsatisfiable with the formula, in both modes.
                let refuted = with_units(&formula, &core);
                prop_assert!(!brute_is_sat(&refuted, EvalMode::Scalar));
                prop_assert!(!brute_is_sat(&refuted, EvalMode::Packed));
            }
            IncrementalResult::Unknown => {
                prop_assert!(false, "unlimited search returned Unknown");
            }
        }
    }

    /// Verdicts are stable across repeated calls on one solver: the learned
    /// clauses and saved phases carried over must never flip an answer.
    #[test]
    fn repeated_assumption_solves_are_stable((formula, assumptions) in arb_instance(6, 8)) {
        let oracle = brute_is_sat(&with_units(&formula, &assumptions), EvalMode::Packed);
        let mut solver = CdclSolver::new();
        solver.push(&formula);
        let limits = SearchLimits::unlimited();
        let first = solver.solve_under_assumptions(&assumptions, &limits);
        // An unrelated call in between perturbs activities and the clause DB.
        let _ = solver.solve_under_assumptions(&[], &limits);
        let second = solver.solve_under_assumptions(&assumptions, &limits);
        prop_assert_eq!(first.is_sat(), oracle);
        prop_assert_eq!(second.is_sat(), oracle);
    }

    /// A cube dispatched as assumptions decides exactly "is there a model in
    /// the cube's subspace" — the contract the shard coordinator relies on.
    #[test]
    fn cube_assumptions_decide_the_subspace((formula, assumptions) in arb_instance(5, 7)) {
        let cube = Cube::from_literals(assumptions);
        let expected = Assignment::enumerate_all(formula.num_vars())
            .any(|a| cube.evaluate(&a) && formula.evaluate(&a));
        let mut solver = CdclSolver::new();
        solver.push(&formula);
        let result =
            solver.solve_under_assumptions(&cube.to_assumptions(), &SearchLimits::unlimited());
        prop_assert_eq!(result.is_sat(), expected);
    }
}
