//! Cross-crate integration tests for the circuit substrate: netlists →
//! Tseitin CNF → classical and NBL-SAT engines, miters, ATPG and `.bench`
//! round-trips all have to agree with functional simulation.

use nbl_sat_repro::circuit::{
    atpg_check, equivalence_check, exhaustive_counterexample, fault_list, fault_simulate, library,
    parse_bench, truth_table, write_bench, Circuit, CircuitBuilder, GateKind, NblCircuitEvaluator,
    Simulator, TseitinEncoder,
};
use nbl_sat_repro::nbl_sat::{NblSatInstance, SatChecker, SymbolicEngine};
use nbl_sat_repro::prelude::*;
use proptest::prelude::*;

/// Strategy: a random combinational circuit with `num_inputs` inputs and a
/// chain of up to `max_gates` random two-input gates over random fan-ins.
fn arb_circuit(num_inputs: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    let gate = (0u8..6, 0usize..64, 0usize..64);
    proptest::collection::vec(gate, 1..=max_gates).prop_map(move |gates| {
        let mut builder = CircuitBuilder::new("random");
        let mut signals: Vec<_> = (0..num_inputs)
            .map(|i| builder.input(format!("x{i}")).expect("fresh input name"))
            .collect();
        for (kind, a, b) in gates {
            let kind = match kind {
                0 => GateKind::And,
                1 => GateKind::Or,
                2 => GateKind::Xor,
                3 => GateKind::Nand,
                4 => GateKind::Nor,
                _ => GateKind::Xnor,
            };
            let a = signals[a % signals.len()];
            let b = signals[b % signals.len()];
            let out = builder.gate(kind, &[a, b]).expect("valid gate");
            signals.push(out);
        }
        let last = *signals.last().expect("at least one signal");
        builder.output("y", last).expect("fresh output name");
        builder.finish()
    })
}

#[test]
fn tseitin_cnf_agrees_with_simulation_on_the_library() {
    for (name, circuit) in library::standard_suite() {
        if circuit.num_inputs() > 10 {
            continue;
        }
        let sim = Simulator::new(&circuit).unwrap();
        let base = TseitinEncoder::new().encode(&circuit).unwrap();
        // Spot-check a handful of patterns per circuit against the CNF.
        for pattern in (0..1u64 << circuit.num_inputs()).step_by(7).take(8) {
            let inputs: Vec<bool> = (0..circuit.num_inputs())
                .map(|i| pattern >> i & 1 == 1)
                .collect();
            let outputs = sim.run(&inputs).unwrap();
            let mut enc = base.clone();
            for (i, &v) in inputs.iter().enumerate() {
                enc.assert_input(i, v);
            }
            for (o, &v) in outputs.iter().enumerate() {
                enc.assert_output(o, v);
            }
            let mut cdcl = CdclSolver::new();
            assert!(
                cdcl.solve(enc.formula()).is_sat(),
                "{name}: CNF must accept the simulated input/output pair"
            );
        }
    }
}

#[test]
fn nbl_sat_decides_circuit_equivalence_like_exhaustive_simulation() {
    // A deliberately wrong "majority": it computes the 3-input AND instead.
    // (Keep the interface — input names x0..x2, output name maj — identical.)
    let mut and3 = Circuit::new("and3_as_maj");
    let x0 = and3.add_input("x0").unwrap();
    let x1 = and3.add_input("x1").unwrap();
    let x2 = and3.add_input("x2").unwrap();
    let maj = and3.add_gate("maj", GateKind::And, &[x0, x1, x2]).unwrap();
    and3.mark_output(maj).unwrap();

    let cases = [
        (library::majority3(), library::majority3(), true),
        (
            library::equality_comparator(2),
            library::equality_comparator(2),
            true,
        ),
        (library::majority3(), and3, false),
    ];
    for (golden, revised, expect_equivalent) in cases {
        let exhaustive = exhaustive_counterexample(&golden, &revised).unwrap();
        assert_eq!(exhaustive.is_none(), expect_equivalent);
        let check = equivalence_check(&golden, &revised).unwrap();
        let instance = NblSatInstance::new(check.formula()).unwrap();
        let verdict = SatChecker::new(SymbolicEngine::new())
            .check(&instance)
            .unwrap();
        assert_eq!(
            verdict.is_sat(),
            !expect_equivalent,
            "NBL-SAT verdict must match exhaustive equivalence for {} vs {}",
            golden.name(),
            revised.name()
        );
    }
}

#[test]
fn atpg_instances_agree_between_cdcl_and_nbl() {
    let circuit = library::majority3();
    for fault in fault_list(&circuit).into_iter().take(6) {
        let check = atpg_check(&circuit, fault).unwrap();
        let mut cdcl = CdclSolver::new();
        let classical = cdcl.solve(check.formula()).is_sat();
        let instance = NblSatInstance::new(check.formula()).unwrap();
        let nbl = SatChecker::new(SymbolicEngine::new())
            .check(&instance)
            .unwrap()
            .is_sat();
        assert_eq!(
            classical,
            nbl,
            "disagreement on {}",
            fault.describe(&circuit)
        );
    }
}

#[test]
fn exhaustive_test_sets_cover_all_detectable_faults() {
    let circuit = library::greater_than_comparator(3);
    let faults = fault_list(&circuit);
    let n = circuit.num_inputs();
    let patterns: Vec<Vec<bool>> = (0..1u64 << n)
        .map(|p| (0..n).map(|i| p >> i & 1 == 1).collect())
        .collect();
    let report = fault_simulate(&circuit, &faults, &patterns).unwrap();
    // Every undetected fault must be provably untestable (its ATPG CNF UNSAT).
    for fault in &report.undetected {
        let check = atpg_check(&circuit, *fault).unwrap();
        let mut cdcl = CdclSolver::new();
        assert!(
            cdcl.solve(check.formula()).is_unsat(),
            "{} escaped exhaustive patterns but is testable",
            fault.describe(&circuit)
        );
    }
}

#[test]
fn bench_round_trip_preserves_function_through_the_facade() {
    let circuit = library::multiplexer(2);
    let text = write_bench(&circuit);
    let reparsed = parse_bench(&text).unwrap();
    assert_eq!(
        exhaustive_counterexample(&circuit, &reparsed).unwrap(),
        None
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The NBL hyperspace evaluation of a random circuit (all 2^n inputs
    /// applied at once) matches its truth table exactly.
    #[test]
    fn nbl_circuit_evaluation_matches_truth_table(circuit in arb_circuit(4, 10)) {
        let eval = NblCircuitEvaluator::new().evaluate(&circuit).unwrap();
        let onset = eval.output_onset("y").unwrap();
        for row in truth_table(&circuit).unwrap() {
            prop_assert_eq!(onset.contains(row.pattern), row.outputs[0]);
        }
    }

    /// Tseitin + CDCL find an input pattern driving the output to 1 exactly
    /// when the truth table says one exists, and the decoded pattern replays
    /// correctly in the simulator.
    #[test]
    fn tseitin_satisfiability_matches_truth_table(circuit in arb_circuit(4, 10)) {
        let mut enc = TseitinEncoder::new().encode(&circuit).unwrap();
        enc.assert_output(0, true);
        let mut cdcl = CdclSolver::new();
        let result = cdcl.solve(enc.formula());
        let table = truth_table(&circuit).unwrap();
        let reachable = table.iter().any(|row| row.outputs[0]);
        prop_assert_eq!(result.is_sat(), reachable);
        if let SolveResult::Satisfiable(model) = result {
            let inputs = enc.decode_inputs(&model);
            let sim = Simulator::new(&circuit).unwrap();
            prop_assert!(sim.run(&inputs).unwrap()[0]);
        }
    }
}
