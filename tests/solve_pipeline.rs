//! Acceptance suite for the shared solve pipeline (ISSUE 9): preprocessing
//! never changes any backend's verdict, isomorphic resubmissions answer
//! from the cache without dispatch, cached and preprocessed models always
//! verify against the *original* formula, and the fleet coordinator runs
//! the same preprocessing pass before splitting a single cube.

use nbl_sat_repro::prelude::*;

use cnf::generators::{self, RandomKSatConfig};

fn paper_instances() -> Vec<CnfFormula> {
    vec![
        generators::example6_sat(),
        generators::example7_unsat(),
        generators::section4_sat_instance(),
        generators::section4_unsat_instance(),
    ]
}

fn random_instances() -> Vec<CnfFormula> {
    (0..3u64)
        .map(|seed| {
            generators::random_ksat(&RandomKSatConfig::new(14, 50, 3).with_seed(seed)).unwrap()
        })
        .collect()
}

fn is_definitive(verdict: &SolveVerdict) -> bool {
    matches!(
        verdict,
        SolveVerdict::Satisfiable | SolveVerdict::Unsatisfiable
    )
}

/// Differential harness: `registry.solve` (which routes through the
/// preprocessing pipeline) against the raw backend with no pipeline at all.
/// Whenever both paths are definitive they must agree, and any model the
/// pipeline reports must satisfy the formula *as the caller wrote it* —
/// i.e. the reduction trace lifted it back correctly.
fn assert_pipeline_preserves_verdicts(backend: &str, instances: &[CnfFormula]) {
    let registry = BackendRegistry::default();
    for (i, formula) in instances.iter().enumerate() {
        for seed in [0u64, 17] {
            let request = SolveRequest::new(formula)
                .seed(seed)
                .artifacts(Artifacts::Model);
            let direct = registry
                .create(backend)
                .unwrap()
                .solve(&request)
                .unwrap_or_else(|e| panic!("{backend} direct solve failed: {e}"));
            let piped = registry
                .solve(backend, &request)
                .unwrap_or_else(|e| panic!("{backend} pipeline solve failed: {e}"));
            if is_definitive(&direct.verdict) && is_definitive(&piped.verdict) {
                assert_eq!(
                    direct.verdict, piped.verdict,
                    "{backend} verdict changed under the pipeline on instance {i} seed {seed}"
                );
            }
            if piped.verdict.is_sat() {
                let model = piped
                    .model
                    .as_ref()
                    .expect("pipeline SAT outcomes carry the requested model");
                assert!(
                    formula.evaluate(model),
                    "{backend} pipeline model fails the original formula \
                     on instance {i} seed {seed}"
                );
            }
        }
    }
}

#[test]
fn pipeline_preserves_classical_backend_verdicts() {
    let mut instances = paper_instances();
    instances.extend(random_instances());
    for backend in [
        "brute-force",
        "dpll",
        "cdcl",
        "two-sat",
        "walksat",
        "gsat",
        "schoening",
        "portfolio",
        "parallel-portfolio",
    ] {
        assert_pipeline_preserves_verdicts(backend, &instances);
    }
}

#[test]
fn pipeline_preserves_nbl_backend_verdicts() {
    // The NBL and hybrid backends pay `2^{n·m}`-ish costs, so they run the
    // paper's worked instances only — exactly like `backend_differential.rs`.
    for backend in [
        "nbl-symbolic",
        "nbl-algebraic",
        "nbl-sampled",
        "hybrid-symbolic",
        "hybrid-sampled",
    ] {
        assert_pipeline_preserves_verdicts(backend, &paper_instances());
    }
}

/// A SAT instance no preprocessing rule touches (no units, no pure
/// literals, no duplicates, no tautologies): it must reach the backend and
/// therefore the cache.
fn irreducible_sat() -> CnfFormula {
    cnf::cnf_formula![[1, 2], [-1, -2], [1, -2]]
}

/// [`irreducible_sat`] with the two variables swapped: isomorphic, so it
/// canonicalizes to the same cache key, but its unique model is the
/// *mirror* of the original's — a cache that replayed the stored model
/// verbatim would hand back a falsifying assignment.
fn irreducible_sat_renamed() -> CnfFormula {
    cnf::cnf_formula![[2, 1], [-2, -1], [2, -1]]
}

#[test]
fn isomorphic_resubmission_hits_the_cache_with_a_lifted_model() {
    let registry = BackendRegistry::default();
    let pipeline = SolvePipeline::new(PipelineConfig::new().with_cache(64));

    let first = irreducible_sat();
    let request = SolveRequest::new(&first).artifacts(Artifacts::Model);
    let outcome = pipeline.solve(&registry, "cdcl", &request).unwrap();
    assert!(outcome.verdict.is_sat());
    assert_eq!(outcome.stats.cache_hits, 0);
    assert!(first.evaluate(outcome.model.as_ref().unwrap()));

    let second = irreducible_sat_renamed();
    let request = SolveRequest::new(&second).artifacts(Artifacts::Model);
    let outcome = pipeline.solve(&registry, "cdcl", &request).unwrap();
    assert!(outcome.verdict.is_sat());
    assert_eq!(
        outcome.stats.cache_hits, 1,
        "isomorphic resubmission missed"
    );
    assert_eq!(outcome.stats.winner, Some("cache"));
    assert!(
        second.evaluate(outcome.model.as_ref().unwrap()),
        "cached model was not mapped into the resubmission's variable space"
    );

    let snapshot = pipeline.snapshot();
    assert_eq!(snapshot.cache_hits, 1);
    assert_eq!(snapshot.cache_misses, 1);
    assert_eq!(snapshot.cache_entries, 1);
    // Zero dispatch on the hit: only the first solve reached a backend.
    let dispatched: u64 = snapshot.backends.values().map(|b| b.count).sum();
    assert_eq!(dispatched, 1, "cache hit must not dispatch");
}

#[test]
fn fleet_coordinator_preprocesses_before_splitting() {
    // Unit-propagation refutes `example7_unsat` outright: the coordinator
    // must answer UNSAT without splitting a single cube.
    let coordinator = ShardCoordinator::connect(&[], ShardConfig::default()).unwrap();
    let outcome = coordinator.solve(&generators::example7_unsat());
    assert_eq!(outcome.verdict, SolveVerdict::Unsatisfiable);
    assert_eq!(outcome.fleet.cubes_split, 0, "fleet: {}", outcome.fleet);
    assert!(outcome.fleet.pre_vars_removed >= 1);
    assert!(outcome.stats.preprocessed_vars_removed >= 1);

    // A unit clause on top of an irreducible core: preprocessing strips the
    // unit, the fleet machinery solves the reduced core, and the winning
    // model must lift back to satisfy the caller's formula (variable 3
    // included).
    let reducible_sat = cnf::cnf_formula![[3], [1, 2], [-1, -2], [1, -2]];
    let outcome = coordinator.solve(&reducible_sat);
    assert_eq!(outcome.verdict, SolveVerdict::Satisfiable);
    assert!(reducible_sat.evaluate(outcome.model.as_ref().unwrap()));
    assert!(
        outcome.fleet.pre_vars_removed >= 1,
        "fleet: {}",
        outcome.fleet
    );
    assert!(outcome.stats.preprocessed_vars_removed >= 1);
}
