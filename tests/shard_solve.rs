//! Acceptance suite for the `nbl-shard` cube-and-conquer subsystem: a real
//! [`ShardCoordinator`] over real loopback `nbl-satd` servers.
//!
//! Proves the ISSUE 7 acceptance criteria end to end: the coordinator plus
//! two real servers agree with the in-process oracle on SAT (with the model
//! verified against the original formula) and on UNSAT (every cube refuted);
//! the first SAT result cancels the rest of the fleet over the wire; a shard
//! whose connection dies mid-solve gets its cubes re-solved elsewhere
//! without changing the verdict; and an empty fleet degrades to solving
//! locally.

use nbl_sat_repro::net::{Frame, ServerConfig};
use nbl_sat_repro::prelude::*;
use nbl_sat_repro::shard::split;
use std::io::BufReader;
use std::net::TcpListener;
use std::thread;
use std::time::{Duration, Instant};

use cnf::generators::{self, RandomKSatConfig};
use cnf::RestrictionOutcome;

/// Binds a default-registry server on an ephemeral loopback port.
fn start_server() -> NblSatServer {
    NblSatServer::bind("127.0.0.1:0", ServerConfig::new().workers(2))
        .expect("bind ephemeral loopback port")
}

/// Whether `formula` has a model inside `cube`.
fn sat_within(formula: &CnfFormula, cube: &Cube) -> bool {
    Assignment::enumerate_all(formula.num_vars()).any(|a| cube.evaluate(&a) && formula.evaluate(&a))
}

#[test]
fn sharded_sat_agrees_with_oracle_and_verifies_model() {
    let formula =
        generators::random_ksat(&RandomKSatConfig::from_ratio(12, 3.5, 3).with_seed(11)).unwrap();
    let oracle = BackendRegistry::default()
        .solve("cdcl", &SolveRequest::new(&formula))
        .unwrap();
    assert!(oracle.verdict.is_sat(), "test instance must be satisfiable");

    let servers = [start_server(), start_server()];
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let config = ShardConfig {
        target_cubes: Some(6),
        ..ShardConfig::default()
    };
    let coordinator = ShardCoordinator::connect(&addrs, config).expect("connect fleet");
    assert_eq!(coordinator.num_shards(), 2);

    let outcome = coordinator.solve(&formula);
    assert_eq!(outcome.verdict, SolveVerdict::Satisfiable);
    let model = outcome.model.as_ref().expect("SAT must carry a model");
    assert!(formula.evaluate(model), "model must satisfy the original");
    assert_eq!(outcome.fleet.shards, 2);
    for server in &servers {
        server.stop();
    }
}

#[test]
fn sharded_unsat_refutes_every_cube() {
    let formula = generators::pigeonhole(5, 4);
    let oracle = BackendRegistry::default()
        .solve("cdcl", &SolveRequest::new(&formula))
        .unwrap();
    assert_eq!(oracle.verdict, SolveVerdict::Unsatisfiable);

    let servers = [start_server(), start_server()];
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let config = ShardConfig {
        target_cubes: Some(8),
        ..ShardConfig::default()
    };
    let coordinator = ShardCoordinator::connect(&addrs, config).expect("connect fleet");

    let outcome = coordinator.solve(&formula);
    assert_eq!(outcome.verdict, SolveVerdict::Unsatisfiable);
    assert!(outcome.model.is_none());
    assert!(
        outcome.fleet.remote_unsat >= 1,
        "the fleet must have refuted at least one cube remotely: {}",
        outcome.fleet
    );
    // Both shards are current-generation servers, so every cube must have
    // shipped as a `SESSION ASSUME` assumption list, not a re-encoded SOLVE.
    assert!(
        outcome.fleet.assumption_dispatches >= 1,
        "session-capable shards must get assumption dispatch: {}",
        outcome.fleet
    );
    // UNSAT is only ever claimed once every cube of the partition is
    // accounted for; the merged stats prove the shards really searched.
    assert!(outcome.stats.decisions + outcome.stats.conflicts > 0);
    for server in &servers {
        server.stop();
    }
}

/// A backend that answers satisfiable cubes (after a short delay, so sibling
/// jobs are reliably in flight) and hangs on unsatisfiable ones until the
/// coordinator cancels it over the wire.
#[derive(Debug)]
struct Trickle;

impl SatBackend for Trickle {
    fn name(&self) -> &'static str {
        "trickle"
    }
    fn is_complete(&self) -> bool {
        false
    }
    fn solve(
        &mut self,
        request: &SolveRequest<'_>,
    ) -> nbl_sat_repro::nbl_sat::Result<SolveOutcome> {
        let formula = request.formula();
        let mut outcome = SolveOutcome::of_verdict(SolveVerdict::Unknown(UnknownCause::Incomplete));
        match Assignment::enumerate_all(formula.num_vars()).find(|a| formula.evaluate(a)) {
            Some(model) => {
                thread::sleep(Duration::from_millis(100));
                outcome.verdict = SolveVerdict::Satisfiable;
                outcome.model = Some(model);
            }
            None => {
                let start = Instant::now();
                while start.elapsed() < Duration::from_secs(30) {
                    if request.cancelled() {
                        outcome.verdict = SolveVerdict::Unknown(UnknownCause::Cancelled);
                        return Ok(outcome);
                    }
                    thread::sleep(Duration::from_millis(5));
                }
            }
        }
        Ok(outcome)
    }
}

#[test]
fn first_sat_cancels_the_rest_of_the_fleet_over_the_wire() {
    // Find a deterministic instance whose first two cubes (the two the two
    // pumps will claim) are one satisfiable and one unsatisfiable, both
    // non-trivial — so one remote job returns a model while the other is
    // still hanging and must be cancelled over the wire.
    let target = 6usize;
    let picked = (0..200u64).find_map(|seed| {
        let formula =
            generators::random_ksat(&RandomKSatConfig::from_ratio(10, 4.2, 3).with_seed(seed))
                .ok()?;
        let cubes = split(&formula, &SplitConfig::new(target));
        let (first, second) = match &cubes.open[..] {
            [first, second, ..] => (first, second),
            _ => return None,
        };
        let both_reduced = [first, second]
            .iter()
            .all(|cube| formula.restrict(cube).outcome == RestrictionOutcome::Reduced);
        (both_reduced && sat_within(&formula, first) && !sat_within(&formula, second))
            .then_some(formula)
    });
    let formula = picked.expect("a seed with a SAT first cube and an UNSAT second cube");

    let mut registry = BackendRegistry::default();
    registry.register("trickle", || Box::new(Trickle));
    let servers = [
        NblSatServer::bind(
            "127.0.0.1:0",
            ServerConfig::new().registry(&registry).workers(1),
        )
        .unwrap(),
        NblSatServer::bind(
            "127.0.0.1:0",
            ServerConfig::new().registry(&registry).workers(1),
        )
        .unwrap(),
    ];
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let mut config = ShardConfig::new("trickle");
    config.target_cubes = Some(target);
    config.steal_after = Duration::from_secs(120); // no stealing in this test
    config.local_fallback = false;
    let coordinator = ShardCoordinator::connect(&addrs, config).expect("connect fleet");

    let outcome = coordinator.solve(&formula);
    assert_eq!(outcome.verdict, SolveVerdict::Satisfiable);
    assert!(formula.evaluate(outcome.model.as_ref().unwrap()));
    assert!(outcome.fleet.remote_sat >= 1, "fleet: {}", outcome.fleet);
    assert!(
        outcome.fleet.cancellations_sent >= 1,
        "the hanging sibling job must have been cancelled over the wire: {}",
        outcome.fleet
    );
    for server in &servers {
        server.stop();
    }
}

/// A fake shard that accepts one connection, acks the first `SOLVE` with
/// `QUEUED`, then drops the socket — a server dying mid-solve.
fn dying_shard() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake shard");
    let addr = listener.local_addr().unwrap().to_string();
    thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept coordinator");
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        let mut stream = stream;
        while let Ok(Some(frame)) = Frame::read_from(&mut reader) {
            if matches!(frame, Frame::Solve(_)) {
                let _ = Frame::Queued { job: 0 }.write_to(&mut stream);
                break; // drop both handles: the connection dies mid-solve
            }
        }
    });
    addr
}

#[test]
fn killed_shard_requeues_its_cubes_without_changing_the_verdict() {
    let formula = generators::pigeonhole(5, 4);

    let server = start_server();
    let addrs = vec![dying_shard(), server.local_addr().to_string()];
    let config = ShardConfig {
        target_cubes: Some(8),
        ..ShardConfig::default()
    };
    let coordinator = ShardCoordinator::connect(&addrs, config).expect("connect fleet");
    assert_eq!(coordinator.num_shards(), 2);

    let outcome = coordinator.solve(&formula);
    assert_eq!(outcome.verdict, SolveVerdict::Unsatisfiable);
    assert!(
        outcome.fleet.shard_deaths >= 1,
        "the dying shard must be detected: {}",
        outcome.fleet
    );
    assert!(
        outcome.fleet.requeues >= 1,
        "its cube must be requeued for the survivor: {}",
        outcome.fleet
    );
    server.stop();
}

#[test]
fn empty_fleet_degrades_to_local_solving() {
    let sat = generators::section4_sat_instance();
    let coordinator = ShardCoordinator::connect(&[], ShardConfig::default()).expect("no fleet");
    assert_eq!(coordinator.num_shards(), 0);
    let outcome = coordinator.solve(&sat);
    assert_eq!(outcome.verdict, SolveVerdict::Satisfiable);
    assert!(sat.evaluate(outcome.model.as_ref().unwrap()));
    assert_eq!(outcome.fleet.shards, 0);
    assert!(outcome.fleet.local_solves >= 1, "fleet: {}", outcome.fleet);

    let unsat = generators::pigeonhole(5, 4);
    let coordinator = ShardCoordinator::connect(&[], ShardConfig::default()).expect("no fleet");
    assert_eq!(
        coordinator.solve(&unsat).verdict,
        SolveVerdict::Unsatisfiable
    );
}

#[test]
fn unreachable_fleet_is_an_error_but_partial_fleet_is_not() {
    // A port from the ephemeral range nobody is listening on: binding and
    // dropping a listener guarantees it was just free.
    let free = TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .to_string();
    let config = ShardConfig {
        connect_timeout: Duration::from_millis(200),
        ..ShardConfig::default()
    };
    let err = ShardCoordinator::connect(std::slice::from_ref(&free), config.clone());
    assert!(matches!(err, Err(ShardError::NoShards { .. })));

    // One live server among dead addresses is enough.
    let server = start_server();
    let addrs = vec![free, server.local_addr().to_string()];
    let coordinator = ShardCoordinator::connect(&addrs, config).expect("partial fleet");
    assert_eq!(coordinator.num_shards(), 1);
    let outcome = coordinator.solve(&generators::section4_sat_instance());
    assert_eq!(outcome.verdict, SolveVerdict::Satisfiable);
    server.stop();
}
